//! Quickstart: run the paper's FFW+BBR configuration at 400 mV on one
//! benchmark and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dvs::core::{EvalConfig, Evaluator, Scheme};
use dvs::sram::{MilliVolts, PfailModel};
use dvs::workloads::Benchmark;

fn main() {
    // 1. The problem: a conventional 32 KB SRAM array needs ~760 mV for
    //    99.9 % yield; at 400 mV more than a quarter of its words fail.
    let model = PfailModel::dsn45();
    let v = MilliVolts::new(400);
    println!(
        "Vccmin(32KB) = {}, P_fail(word @ {v}) = {:.1}%",
        model.vccmin(32 * 1024 * 8, 0.999),
        model.pfail_word(v) * 100.0
    );

    // 2. Run basicmath at 400 mV with the paper's proposal (FFW data
    //    cache + BBR instruction cache) over a few Monte-Carlo fault maps.
    let mut eval = Evaluator::new(EvalConfig {
        trace_instrs: 100_000,
        maps: 8,
        ..EvalConfig::standard()
    });
    let bench = Benchmark::Basicmath;

    let runtime = eval
        .normalized_runtime(bench, Scheme::FfwBbr, v)
        .expect("basicmath links at 400 mV");
    let epi = eval
        .normalized_epi(bench, Scheme::FfwBbr, v)
        .expect("basicmath links at 400 mV");
    let wdis_runtime = eval
        .normalized_runtime(bench, Scheme::SimpleWdis, v)
        .expect("simple-wdis never links, so it cannot fail to");

    println!();
    println!("{bench} @ {v} over {} fault maps:", runtime.n);
    println!(
        "  FFW+BBR     runtime = {:.3}x defect-free (±{:.3})",
        runtime.mean, runtime.ci95_half
    );
    println!(
        "  Simple-wdis runtime = {:.3}x defect-free (±{:.3})",
        wdis_runtime.mean, wdis_runtime.ci95_half
    );
    println!(
        "  FFW+BBR     EPI     = {:.3} of the 760 mV baseline ({:.0}% reduction)",
        epi.mean,
        (1.0 - epi.mean) * 100.0
    );
}
