//! DVFS transition walkthrough: what switching from 560 mV to 400 mV
//! actually costs each scheme (flush, fault-map reload, BBR image switch).
//!
//! ```sh
//! cargo run --release --example voltage_switch
//! ```

use dvs::core::transitions::{nested_fault_maps, transition_cost};
use dvs::core::{DvfsPoint, Scheme};
use dvs::sram::{CacheGeometry, MilliVolts};
use dvs::workloads::Benchmark;

fn main() {
    let src = DvfsPoint::at(MilliVolts::new(560));
    let dst = DvfsPoint::at(MilliVolts::new(400));
    let geom = CacheGeometry::dsn_l1();

    // The same die at two operating points: faults are nested.
    let (src_map, dst_map) = nested_fault_maps(&geom, src, dst, 42);
    println!(
        "the die at {}: {} defective words; at {}: {} — every 560 mV fault persists",
        src.vcc,
        src_map.faulty_words(),
        dst.vcc,
        dst_map.faulty_words()
    );

    println!();
    println!(
        "one-time cost of the {} -> {} switch (flush + rewarm, {} instructions observed):",
        src.vcc, dst.vcc, 50_000
    );
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>9}",
        "scheme", "cold cycles", "steady cycles", "penalty", "relink?"
    );
    for scheme in [
        Scheme::FfwBbr,
        Scheme::SimpleWdis,
        Scheme::FbaPlus,
        Scheme::EightT,
    ] {
        let c = transition_cost(Benchmark::Qsort, scheme, src.vcc, dst.vcc, 50_000, 42);
        println!(
            "{:<14} {:>14} {:>14} {:>8} cyc {:>9}",
            scheme.name(),
            c.cold_cycles,
            c.steady_cycles,
            c.penalty_cycles(),
            if c.relinked { "yes" } else { "no" }
        );
    }
    println!();
    println!(
        "BBR additionally switches to the text image linked for {} — placement is",
        dst.vcc
    );
    println!("per operating point (paper §IV-B), so images are prepared offline per point.");
}
