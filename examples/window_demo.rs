//! Fault-free windows up close: watch a single cache frame's stored
//! pattern slide as accesses move through a block (paper Figures 4–5),
//! and check the word-remap logic against the paper's worked example.
//!
//! ```sh
//! cargo run --release --example window_demo
//! ```

use dvs::cache::{Addr, L2Cache};
use dvs::schemes::ffw::{remap_word_offset, window_pattern};
use dvs::schemes::{L1Cache, SchemeKind, ServedFrom};
use dvs::sram::{CacheGeometry, FaultMap, FrameId};

fn show(pattern: u32) -> String {
    (0..8)
        .rev()
        .map(|w| if pattern & (1 << w) != 0 { '1' } else { '0' })
        .collect()
}

fn main() {
    // The paper's Figure 4 worked example: stored pattern 01111100 means
    // logical words 2..=6 are present; word offset 0x3 is the second word
    // of the window and maps to the second fault-free entry, 0x1.
    let stored = 0b0111_1100;
    let slot = remap_word_offset(stored, 0b0000_0000, 0x3).unwrap();
    println!(
        "Figure 4 example: pattern {} + offset 0x3 -> physical entry {slot:#x}",
        show(stored)
    );
    assert_eq!(slot, 0x1);

    // Figure 5: a frame with words 5..=7 defective holds a 5-word window.
    println!();
    println!("Figure 5 walk-through (frame with words 5,6,7 defective):");
    let free = 5;
    let mut pattern = window_pattern(free, 8, 0);
    println!("  block arrives (default window):    {}", show(pattern));
    for miss in [5u32, 7, 0] {
        pattern = window_pattern(free, 8, miss);
        println!("  miss on word {miss} -> window becomes: {}", show(pattern));
    }

    // The same dance through the real cache model: a one-way cache so the
    // frame is predictable.
    println!();
    println!("Live FFW cache (2 KB direct-mapped for clarity):");
    let geom = CacheGeometry::new(2048, 1, 32).unwrap();
    let mut fmap = FaultMap::fault_free(&geom);
    for w in [5, 6, 7] {
        fmap.set_faulty(FrameId::new(0, 0), w, true);
    }
    let mut l1 = L1Cache::new(SchemeKind::Ffw, fmap);
    let mut l2 = L2Cache::dsn();
    for (label, word) in [
        ("fill via word 0", 0u64),
        ("read word 4 (in window)", 4),
        ("read word 5 (slides)", 5),
        ("read word 5 again", 5),
        ("read word 0 (slid out)", 0),
    ] {
        let out = l1.read(Addr::new(word * 4), &mut l2);
        let from = match out.source {
            ServedFrom::L1 => "L1  hit",
            ServedFrom::L2 => "L2  miss",
            ServedFrom::Memory => "MEM miss",
        };
        println!("  {label:<28} -> {from}");
    }
    let s = l1.stats();
    println!(
        "  totals: {} reads, {} hits, {} block misses, {} word misses",
        s.reads, s.hits, s.block_misses, s.word_misses
    );
}
