//! Basic Block Relocation end-to-end: transform a program, sample a fault
//! map at 400 mV, link against it, and verify that no instruction ever
//! touches a defective cache word.
//!
//! ```sh
//! cargo run --release --example icache_relink
//! ```

use dvs::linker::{bbr_transform, chunk_sizes, BbrLinker};
use dvs::sram::{CacheGeometry, FaultMap, MilliVolts, PfailModel};
use dvs::workloads::{Benchmark, Layout};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let bench = Benchmark::Crc32;
    let wl = bench.build(7);
    let original = wl.program();
    println!(
        "{bench}: {} basic blocks, {} code words",
        original.num_blocks(),
        original.total_code_words()
    );

    // Compiler side: insert jumps, break big blocks, move literal pools.
    let transformed = bbr_transform(original, 6);
    println!(
        "after BBR transform: {} blocks, {} code words ({:+.1}% code growth)",
        transformed.num_blocks(),
        transformed.total_code_words(),
        (f64::from(transformed.total_footprint_words())
            / f64::from(original.total_footprint_words())
            - 1.0)
            * 100.0
    );

    // BIST side: a fault map at the deepest operating point.
    let geom = CacheGeometry::dsn_l1();
    let p_word = PfailModel::dsn45().pfail_word(MilliVolts::new(400));
    let fmap = FaultMap::sample(&geom, p_word, &mut StdRng::seed_from_u64(2));
    let chunks = chunk_sizes(&fmap);
    println!(
        "fault map @ 400 mV: {} of {} words defective; {} fault-free chunks (max {} words)",
        fmap.faulty_words(),
        geom.total_words(),
        chunks.len(),
        chunks.iter().max().unwrap()
    );

    // Linker side: Algorithm 1.
    let image = BbrLinker::new(geom)
        .link(&transformed, &fmap)
        .expect("placement exists at 400 mV for this kernel");
    let stats = image.stats();
    println!(
        "linked: image {} words ({} padding), {:.1}% of the cache used, {} words shared",
        stats.image_words,
        stats.padding_words,
        stats.utilization(&geom) * 100.0,
        stats.cache_words_shared
    );
    image
        .verify(&fmap)
        .expect("no placed word may be defective");
    println!("verified: every instruction and literal maps to a fault-free cache word");

    // Execute a trace under the relocated layout and count the surviving
    // (non-elided) jump overhead.
    let (linked_program, layout) = image.into_parts();
    let n = 200_000;
    let synthetic = wl
        .trace_program(&linked_program, &layout, 0)
        .take(n)
        .filter(|op| op.synthetic)
        .count();
    println!(
        "dynamic overhead: {:.2}% of executed instructions are BBR fall-through jumps",
        synthetic as f64 * 100.0 / n as f64
    );
    let _ = Layout::sequential(original); // (the layout a normal linker would emit)
}
