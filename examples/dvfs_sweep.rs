//! Voltage sweep: compare every scheme's runtime and energy across the
//! paper's DVFS operating points (a miniature Figures 10 + 12).
//!
//! ```sh
//! cargo run --release --example dvfs_sweep
//! ```

use dvs::core::{DvfsPoint, EvalConfig, Evaluator, Scheme};
use dvs::workloads::Benchmark;

fn main() {
    let mut eval = Evaluator::new(EvalConfig {
        trace_instrs: 60_000,
        maps: 6,
        ..EvalConfig::standard()
    });
    let bench = Benchmark::Qsort;
    let schemes = [
        Scheme::FfwBbr,
        Scheme::SimpleWdis,
        Scheme::FbaPlus,
        Scheme::EightT,
    ];

    println!("{bench}: normalized runtime (vs defect-free) / normalized EPI (vs 760 mV)");
    print!("{:<14}", "scheme");
    for p in DvfsPoint::low_voltage_points() {
        print!(" {:>16}", format!("{}", p.vcc));
    }
    println!();
    for scheme in schemes {
        print!("{:<14}", scheme.name());
        for p in DvfsPoint::low_voltage_points() {
            let (rt, epi) = match (
                eval.normalized_runtime(bench, scheme, p.vcc),
                eval.normalized_epi(bench, scheme, p.vcc),
            ) {
                (Ok(rt), Ok(epi)) => (rt, epi),
                _ => {
                    print!(" {:>16}", "n/a");
                    continue;
                }
            };
            print!(" {:>7.2}x/{:>6.3}", rt.mean, epi.mean);
        }
        println!();
    }

    println!();
    println!("reading: runtime(x defect-free)/EPI(vs 760 mV). The paper's claims to check:");
    println!("  - +1-cycle schemes (8T, FBA+) pay a steady runtime tax at every voltage;");
    println!("  - Simple-wdis collapses below 480 mV as defective words overwhelm it;");
    println!("  - FFW+BBR keeps both runtime and EPI lowest at 400 mV.");
}
