//! Deep voltage scaling for delay-sensitive L1 caches — umbrella crate.
//!
//! This crate re-exports the whole workspace behind one dependency, so a
//! downstream user can `cargo add dvs` and reach every subsystem of the
//! DSN 2016 reproduction:
//!
//! * [`analysis`] — static CFG verifier and lint framework for BBR images.
//! * [`sram`] — SRAM failure model, fault maps, BIST, Monte-Carlo, stats.
//! * [`cache`] — word-addressed cache and memory-hierarchy simulator.
//! * [`workloads`] — synthetic SPEC2006/MiBench-like trace generators.
//! * [`linker`] — basic-block IR, BBR code transformation and linking.
//! * [`schemes`] — FFW, BBR and every baseline fault-tolerance scheme.
//! * [`cpu`] — trace-driven 2-way superscalar timing model.
//! * [`power`] — area / latency / leakage / energy models.
//! * [`core`] — DVFS table, experiment orchestration, figure producers.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run of the paper's
//! FFW+BBR configuration at 400 mV.

#![forbid(unsafe_code)]

pub use dvs_analysis as analysis;
pub use dvs_cache as cache;
pub use dvs_core as core;
pub use dvs_cpu as cpu;
pub use dvs_linker as linker;
pub use dvs_power as power;
pub use dvs_schemes as schemes;
pub use dvs_sram as sram;
pub use dvs_workloads as workloads;
