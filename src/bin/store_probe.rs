//! Test probe for the cross-process result store.
//!
//! Runs a small fixed Monte-Carlo campaign against the store named by
//! `DVS_RESULT_STORE` and prints, per cell, a bit-exact digest of the
//! summaries plus the engine counters and the store's own accounting.
//! `tests/result_store.rs` launches this binary repeatedly to prove that
//! separate processes (a) reuse each other's results and (b) reproduce
//! bit-identical numbers either way — including under a size cap
//! (`--store-max-bytes`), where evicted cells recompute identically.
//!
//! `--spin-save` turns the probe into a crash-test dummy: it rewrites
//! store cells in a tight loop until killed, so the harness can SIGKILL
//! it mid-save and assert that no partial cell file ever becomes visible.

use dvs::core::{
    CellKey, EvalConfig, Evaluator, ExperimentPlan, ResultStore, Scheme, StoreKey, StoredCell,
};
use dvs::cpu::CoreConfig;
use dvs::sram::stats::Summary;
use dvs::sram::{CacheGeometry, MilliVolts};
use dvs::workloads::Benchmark;

fn digest(s: &Summary) -> String {
    // Bit patterns, not decimals: replay must be exact, not just close.
    format!(
        "n={};{:016x};{:016x};{:016x}",
        s.n,
        s.mean.to_bits(),
        s.stddev.to_bits(),
        s.ci95_half.to_bits()
    )
}

/// Rewrites cells under a rotating set of keys forever (until killed):
/// constant tmp-write + rename traffic for the SIGKILL durability test.
fn spin_save() -> ! {
    let store = ResultStore::open_default().expect("result store must open");
    let core = CoreConfig::dsn2016();
    let geometry = CacheGeometry::dsn_l1();
    let cell = CellKey::new(Benchmark::Crc32, Scheme::FfwBbr, MilliVolts::new(480));
    let mut i = 0u64;
    loop {
        // Seeds far outside any real campaign's range: the dummy images
        // (no trials) must never be loadable by an actual probe run.
        let cfg = EvalConfig {
            seed: 0xdead_0000 + (i % 64),
            ..EvalConfig::quick()
        };
        let key = StoreKey::for_cell(&cfg, &core, &geometry, &cell);
        let image = StoredCell {
            failed_links: i,
            trials: Vec::new(),
        };
        let _ = store.save(&key, &image);
        i += 1;
    }
}

fn main() {
    let mut cfg = EvalConfig::quick();
    let mut single_cell = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = || -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .expect("flag expects an integer value")
        };
        match arg.as_str() {
            "--instrs" => cfg.trace_instrs = take() as usize,
            "--seed" => cfg.seed = take(),
            "--store-max-bytes" => cfg.store_max_bytes = Some(take()),
            "--cell" => single_cell = true,
            "--spin-save" => spin_save(),
            other => panic!("unknown flag {other}"),
        }
    }

    let store = ResultStore::open_default().expect("result store must open");
    let mut eval = Evaluator::new(cfg).with_store(store.clone());
    // `--cell` narrows the campaign to one cell so many processes can
    // hammer the same store file at once.
    let plan = if single_cell {
        ExperimentPlan::for_grid(
            &[Benchmark::Crc32],
            &[Scheme::FfwBbr],
            &[MilliVolts::new(480)],
        )
    } else {
        ExperimentPlan::for_grid(
            &[Benchmark::Crc32, Benchmark::Qsort],
            &[Scheme::SimpleWdis, Scheme::FfwBbr],
            &[MilliVolts::new(480)],
        )
    };
    for (key, result) in eval.run_plan(&plan) {
        match result {
            Ok(run) => println!(
                "cell {key} cycles[{}] l2[{}]",
                digest(&run.cycles()),
                digest(&run.l2_per_kilo_instr())
            ),
            Err(e) => println!("cell {key} failed: {e}"),
        }
    }
    let s = eval.stats();
    println!(
        "engine computed={} from_store={} cells_from_store={}",
        s.trials_computed, s.trials_from_store, s.cells_from_store
    );
    let st = store.stats();
    println!(
        "store bytes={} cells={} evictions={} collisions={} tmp_swept={}",
        st.bytes, st.cells, st.evictions, st.collisions, st.tmp_swept
    );
}
