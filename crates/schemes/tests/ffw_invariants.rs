//! FFW window invariants checked with the shared `dvs-analysis` entry
//! point: on any sampled fault map, every frame's stored pattern must be
//! contiguous, sized to the frame's fault-free capacity, and remap
//! injectively onto fault-free entries.

use dvs_analysis::check_ffw_windows;
use dvs_sram::{CacheGeometry, FaultMap, MilliVolts, PfailModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn sampled_maps_have_consistent_windows_at_paper_voltages() {
    let geom = CacheGeometry::dsn_l1();
    let model = PfailModel::dsn45();
    for mv in [480, 440, 400, 360] {
        let p_word = model.pfail_word(MilliVolts::new(mv));
        for seed in 0..4 {
            let fmap = FaultMap::sample(
                &geom,
                p_word,
                &mut StdRng::seed_from_u64(u64::from(mv) * 100 + seed),
            );
            let diags = check_ffw_windows(&fmap);
            assert!(diags.is_empty(), "{mv} mV seed {seed}: {diags:?}");
        }
    }
}

#[test]
fn extreme_maps_have_consistent_windows() {
    let geom = CacheGeometry::new(4096, 4, 32).unwrap();
    // Fault-free and near-saturated maps are the boundary cases for the
    // centring and clamping logic.
    for p_word in [0.0, 0.45, 0.9] {
        let fmap = FaultMap::sample(&geom, p_word, &mut StdRng::seed_from_u64(7));
        let diags = check_ffw_windows(&fmap);
        assert!(diags.is_empty(), "p={p_word}: {diags:?}");
    }
}
