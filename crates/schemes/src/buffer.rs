//! Defect buffers: the FBA's fully associative word store and the IDC's
//! set-associative variant.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// A word-location-tagged buffer holding the contents of in-use defective
/// words (paper Section III-B: FBA, IDC).
///
/// Entries are keyed by global word address; each set is a true-LRU queue.
/// The FBA is the fully associative special case (one set).
///
/// # Example
///
/// ```rust
/// use dvs_schemes::DefectBuffer;
///
/// let mut fba = DefectBuffer::fully_associative(2);
/// assert!(!fba.access(100)); // miss, inserted
/// assert!(fba.access(100));  // hit
/// fba.access(101);
/// fba.access(102);           // evicts 100 (LRU)
/// assert!(!fba.access(100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefectBuffer {
    /// Per-set LRU queues of word addresses, most recent at the back.
    sets: Vec<VecDeque<u64>>,
    ways: u32,
    hits: u64,
    misses: u64,
}

impl DefectBuffer {
    /// A fully associative buffer of `entries` words (the FBA).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn fully_associative(entries: u32) -> Self {
        assert!(entries > 0, "buffer needs at least one entry");
        DefectBuffer {
            sets: vec![VecDeque::with_capacity(entries as usize)],
            ways: entries,
            hits: 0,
            misses: 0,
        }
    }

    /// A set-associative buffer (the IDC): `entries` total words in sets of
    /// `ways`.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or does not divide `entries`.
    pub fn set_associative(entries: u32, ways: u32) -> Self {
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "entries must split into whole sets"
        );
        let sets = (entries / ways) as usize;
        DefectBuffer {
            sets: vec![VecDeque::with_capacity(ways as usize); sets],
            ways,
            hits: 0,
            misses: 0,
        }
    }

    /// Total capacity in words.
    pub fn capacity(&self) -> u32 {
        self.sets.len() as u32 * self.ways
    }

    fn set_of(&self, word_addr: u64) -> usize {
        (word_addr % self.sets.len() as u64) as usize
    }

    /// Whether the buffer currently holds `word_addr` (no state change).
    pub fn probe(&self, word_addr: u64) -> bool {
        self.sets[self.set_of(word_addr)].contains(&word_addr)
    }

    /// Accesses `word_addr`: on a hit the entry is promoted and `true` is
    /// returned; on a miss the word is inserted (evicting the set's LRU
    /// entry if full) and `false` is returned.
    pub fn access(&mut self, word_addr: u64) -> bool {
        let ways = self.ways as usize;
        let set_idx = self.set_of(word_addr);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&w| w == word_addr) {
            set.remove(pos);
            set.push_back(word_addr);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        set.push_back(word_addr);
        if set.len() > ways {
            set.pop_front();
        }
        false
    }

    /// Buffer hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Buffer misses (each cost an L2 access) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Words currently buffered.
    pub fn occupancy(&self) -> u32 {
        self.sets.iter().map(|s| s.len() as u32).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lru_eviction_in_fully_associative() {
        let mut b = DefectBuffer::fully_associative(2);
        b.access(1);
        b.access(2);
        b.access(1); // promote 1; 2 is now LRU
        b.access(3); // evicts 2
        assert!(b.probe(1));
        assert!(!b.probe(2));
        assert!(b.probe(3));
    }

    #[test]
    fn set_associative_isolates_sets() {
        // 4 entries, 2 ways → 2 sets; even/odd word addresses separate.
        let mut b = DefectBuffer::set_associative(4, 2);
        b.access(0);
        b.access(2);
        b.access(4); // evicts 0 within set 0
        assert!(!b.probe(0));
        assert!(b.probe(2));
        b.access(1); // set 1 untouched by the above
        assert!(b.probe(1));
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut b = DefectBuffer::fully_associative(4);
        b.access(7);
        b.access(7);
        b.access(8);
        assert_eq!(b.hits(), 1);
        assert_eq!(b.misses(), 2);
    }

    #[test]
    fn capacity_reports() {
        assert_eq!(DefectBuffer::fully_associative(64).capacity(), 64);
        assert_eq!(DefectBuffer::set_associative(1024, 4).capacity(), 1024);
    }

    #[test]
    #[should_panic(expected = "whole sets")]
    fn rejects_ragged_sets() {
        let _ = DefectBuffer::set_associative(10, 4);
    }

    proptest! {
        #[test]
        fn occupancy_bounded(words in proptest::collection::vec(0u64..100, 0..300)) {
            let mut b = DefectBuffer::set_associative(16, 4);
            for w in words {
                b.access(w);
            }
            prop_assert!(b.occupancy() <= 16);
            for set in 0..4u64 {
                let _ = set;
            }
        }

        #[test]
        fn probe_after_access_hits(w in 0u64..1000) {
            let mut b = DefectBuffer::fully_associative(8);
            b.access(w);
            prop_assert!(b.probe(w));
            prop_assert!(b.access(w));
        }
    }
}
