//! L1 cache fault-tolerance schemes.
//!
//! The paper proposes two mechanisms and compares them against the
//! fine-grained state of the art (Section III, Section VI):
//!
//! | Scheme | Paper | Granularity | Extra L1 latency |
//! |---|---|---|---|
//! | [`SchemeKind::Ffw`] | this paper (D-cache) | word window | 0 cycles |
//! | [`SchemeKind::Bbr`] | this paper (I-cache) | word (by construction) | 0 cycles |
//! | [`SchemeKind::Conventional`] | 6T baseline | — | 0 |
//! | [`SchemeKind::EightT`] | Chang et al. | cell | 1 cycle |
//! | [`SchemeKind::SimpleWordDisable`] | Mahmood & Kim | word | 0 |
//! | [`SchemeKind::WilkersonPlus`] | Wilkerson et al. | word pair | 1 cycle |
//! | [`SchemeKind::Fba`] | Mahmood & Kim | word buffer | 1 cycle |
//! | [`SchemeKind::Idc`] | Sasan et al. | word buffer | 1 cycle |
//!
//! All schemes are driven through one [`L1Cache`] front end so the CPU
//! model treats them uniformly.
//!
//! # Example
//!
//! ```rust
//! use dvs_cache::{Addr, L2Cache};
//! use dvs_schemes::{L1Cache, SchemeKind, ServedFrom};
//! use dvs_sram::{CacheGeometry, FaultMap};
//!
//! let geom = CacheGeometry::dsn_l1();
//! let fmap = FaultMap::fault_free(&geom);
//! let mut l1 = L1Cache::new(SchemeKind::Ffw, fmap);
//! let mut l2 = L2Cache::dsn();
//! let miss = l1.read(Addr::new(0x100), &mut l2);
//! assert_eq!(miss.source, ServedFrom::Memory); // cold
//! let hit = l1.read(Addr::new(0x100), &mut l2);
//! assert_eq!(hit.source, ServedFrom::L1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
pub mod ffw;
mod kind;
mod l1;
pub mod wilkerson;
pub mod wordsub;

pub use buffer::DefectBuffer;
pub use kind::SchemeKind;
pub use l1::{L1Cache, L1Stats, ReadOutcome, ServedFrom, WriteOutcome};
