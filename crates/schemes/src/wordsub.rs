//! Word-substitution grouping (ZerehCache / Archipelago family, §III-B).
//!
//! These schemes sacrifice some cache lines so their fault-free words can
//! patch the defective words of the *data* lines grouped with them. A
//! group is valid when the data lines' defective word positions are
//! pairwise disjoint and the sacrificial line is fault-free at every one
//! of those positions. The paper notes the cost: extra muxing on the
//! critical path (+1 cycle here, like the other substitution schemes) —
//! which is exactly why it relegates them to L2 protection.
//!
//! We implement a greedy set-local grouper (the published schemes use
//! graph algorithms across sets; set-local grouping is the conservative
//! variant that needs no extra index remapping).

use serde::{Deserialize, Serialize};

use dvs_sram::{FaultMap, FrameId};

/// Role assigned to one physical way of a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WayRole {
    /// Holds a logical line; its defective words are patched by the
    /// group's sacrificial line (or it has none).
    Data,
    /// Donates fault-free words to the group; holds no logical line.
    Sacrificial,
    /// Could not be covered by any group; never allocated.
    Disabled,
}

/// Greedily assigns roles to the ways of `set`.
///
/// Fault-free ways become data lines outright. Among the faulty ways, the
/// worst (most defective) is sacrificed first, and the remaining ways are
/// added as data lines while their defective positions stay disjoint and
/// covered; leftovers trigger another sacrifice, and a final uncoverable
/// straggler is disabled.
pub fn group_set(fmap: &FaultMap, set: u32) -> Vec<WayRole> {
    let ways = fmap.geometry().ways();
    let patterns: Vec<u32> = (0..ways)
        .map(|w| fmap.frame_fault_pattern(FrameId::new(set, w)))
        .collect();
    let mut roles = vec![None; ways as usize];
    // Clean ways need no help.
    for (w, &p) in patterns.iter().enumerate() {
        if p == 0 {
            roles[w] = Some(WayRole::Data);
        }
    }
    loop {
        let mut remaining: Vec<usize> =
            (0..ways as usize).filter(|&w| roles[w].is_none()).collect();
        match remaining.len() {
            0 => break,
            1 => {
                roles[remaining[0]] = Some(WayRole::Disabled);
                break;
            }
            _ => {}
        }
        // Sacrifice the most-defective remaining way.
        remaining.sort_by_key(|&w| patterns[w].count_ones());
        let sacrificial = *remaining.last().expect("len >= 2");
        roles[sacrificial] = Some(WayRole::Sacrificial);
        let mut used = 0u32;
        let mut covered_any = false;
        for &d in &remaining[..remaining.len() - 1] {
            let p = patterns[d];
            // Disjoint from already-patched positions, and the sacrificial
            // line must be clean wherever `d` is defective.
            if p & used == 0 && p & patterns[sacrificial] == 0 {
                roles[d] = Some(WayRole::Data);
                used |= p;
                covered_any = true;
            }
        }
        if !covered_any {
            // The sacrifice bought nothing: nothing groups with it. Undo
            // it into a plain disabled line to avoid infinite loops.
            roles[sacrificial] = Some(WayRole::Disabled);
        }
    }
    roles
        .into_iter()
        .map(|r| r.expect("all ways assigned"))
        .collect()
}

/// Assigns roles across the whole cache; indexed `[set][way]`.
pub fn group_cache(fmap: &FaultMap) -> Vec<Vec<WayRole>> {
    (0..fmap.geometry().sets())
        .map(|set| group_set(fmap, set))
        .collect()
}

/// Fraction of lines still holding data after grouping — the capacity
/// these schemes trade for reliability.
pub fn capacity_retention(fmap: &FaultMap) -> f64 {
    let roles = group_cache(fmap);
    let data = roles
        .iter()
        .flatten()
        .filter(|&&r| r == WayRole::Data)
        .count();
    data as f64 / f64::from(fmap.geometry().total_lines())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_sram::{CacheGeometry, MilliVolts, PfailModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom() -> CacheGeometry {
        CacheGeometry::dsn_l1()
    }

    #[test]
    fn clean_set_is_all_data() {
        let fmap = FaultMap::fault_free(&geom());
        assert_eq!(group_set(&fmap, 0), vec![WayRole::Data; 4]);
        assert_eq!(capacity_retention(&fmap), 1.0);
    }

    #[test]
    fn disjoint_faults_share_one_sacrifice() {
        let mut fmap = FaultMap::fault_free(&geom());
        // Ways 0,1,2 faulty at words 0,1,2 respectively; way 3 at 0..=3
        // (worst, so it is sacrificed) — wait, way 3 overlaps them; make
        // way 3 faulty at words 5..=7 instead so it can cover 0,1,2.
        fmap.set_faulty(FrameId::new(9, 0), 0, true);
        fmap.set_faulty(FrameId::new(9, 1), 1, true);
        fmap.set_faulty(FrameId::new(9, 2), 2, true);
        for w in 5..8 {
            fmap.set_faulty(FrameId::new(9, 3), w, true);
        }
        let roles = group_set(&fmap, 9);
        assert_eq!(roles[3], WayRole::Sacrificial, "{roles:?}");
        assert_eq!(&roles[..3], &[WayRole::Data; 3], "{roles:?}");
    }

    #[test]
    fn colliding_faults_cost_more() {
        let mut fmap = FaultMap::fault_free(&geom());
        // All four ways faulty at the same word: no grouping possible.
        for way in 0..4 {
            fmap.set_faulty(FrameId::new(3, way), 4, true);
        }
        let roles = group_set(&fmap, 3);
        assert!(
            !roles.contains(&WayRole::Data),
            "a shared defective position cannot be patched: {roles:?}"
        );
    }

    #[test]
    fn sacrificial_covers_only_its_clean_positions() {
        let mut fmap = FaultMap::fault_free(&geom());
        // Way 0 faulty at word 2; ways 1 and 2 faulty at words {0,1} and
        // {3,4}: way 0... make way 3 the sacrifice with fault at word 2 —
        // it cannot cover way 0 (overlap) but covers ways 1 and 2.
        fmap.set_faulty(FrameId::new(5, 0), 2, true);
        fmap.set_faulty(FrameId::new(5, 1), 0, true);
        fmap.set_faulty(FrameId::new(5, 1), 1, true);
        fmap.set_faulty(FrameId::new(5, 2), 3, true);
        fmap.set_faulty(FrameId::new(5, 2), 4, true);
        fmap.set_faulty(FrameId::new(5, 3), 2, true);
        fmap.set_faulty(FrameId::new(5, 3), 5, true);
        fmap.set_faulty(FrameId::new(5, 3), 6, true);
        let roles = group_set(&fmap, 5);
        // Way 3 (3 faults) sacrificed; ways 1,2 covered; way 0 collides
        // with the sacrifice at word 2 → second round pairs it or
        // disables it. With only way 0 left, it is disabled.
        assert_eq!(roles[3], WayRole::Sacrificial);
        assert_eq!(roles[1], WayRole::Data);
        assert_eq!(roles[2], WayRole::Data);
        assert_eq!(roles[0], WayRole::Disabled);
    }

    #[test]
    fn retention_degrades_with_voltage() {
        let model = PfailModel::dsn45();
        let mut last = 1.1;
        for mv in [560u32, 480, 400] {
            let p = model.pfail_word(MilliVolts::new(mv));
            let fmap = FaultMap::sample(&geom(), p, &mut StdRng::seed_from_u64(4));
            let r = capacity_retention(&fmap);
            assert!(r < last, "retention must shrink: {r} at {mv} mV");
            last = r;
        }
        // At 400 mV substitution keeps a meaningful fraction alive — far
        // better than line disable, at the price of the +1-cycle mux.
        assert!((0.15..0.85).contains(&last), "retention {last} at 400 mV");
    }

    #[test]
    fn retention_beats_plain_line_disable() {
        let model = PfailModel::dsn45();
        let p = model.pfail_word(MilliVolts::new(400));
        let fmap = FaultMap::sample(&geom(), p, &mut StdRng::seed_from_u64(7));
        let line_disable_retention = fmap
            .frames()
            .filter(|&f| fmap.frame_is_fault_free(f))
            .count() as f64
            / f64::from(geom().total_lines());
        assert!(
            capacity_retention(&fmap) > 3.0 * line_disable_retention,
            "substitution must rescue far more capacity"
        );
    }

    #[test]
    fn every_way_gets_exactly_one_role() {
        let model = PfailModel::dsn45();
        for seed in 0..10 {
            let p = model.pfail_word(MilliVolts::new(440));
            let fmap = FaultMap::sample(&geom(), p, &mut StdRng::seed_from_u64(seed));
            for roles in group_cache(&fmap) {
                assert_eq!(roles.len(), 4);
            }
        }
    }
}
