//! Fault-Free Window mechanics (paper Section IV-A, Figures 4 and 5).
//!
//! A physical frame with defective words can still hold a *window* — a
//! contiguous range of the logical block's words — scattered into its
//! fault-free word entries. The `StoredPattern` records which logical
//! words are present; the `FMAP` records which physical entries are
//! defective; the remap logic converts a logical word offset into the
//! physical column-mux select.

/// Computes the stored pattern for a window of `window_len` contiguous
/// logical words centred on `focus`, in a block of `words_per_block`
/// words (Figure 5: "we let the missing word stand in the middle of the
/// new fault-free window").
///
/// Returns 0 when `window_len` is 0 (a fully defective frame).
///
/// # Panics
///
/// Panics if `focus ≥ words_per_block` or `words_per_block > 32`.
pub fn window_pattern(window_len: u32, words_per_block: u32, focus: u32) -> u32 {
    assert!(words_per_block <= 32, "patterns are u32 masks");
    assert!(focus < words_per_block, "focus word out of range");
    let len = window_len.min(words_per_block);
    if len == 0 {
        return 0;
    }
    // Centre the window on the focus word, clamped to the block bounds.
    let half = (len - 1) / 2;
    let start = focus.saturating_sub(half).min(words_per_block - len);
    window_mask(len) << start
}

/// A contiguous mask of `len` low bits, valid over the whole `1..=32`
/// domain — `(1u32 << len) - 1` overflows at `len == 32`, the full-block
/// window of a 32-word geometry.
fn window_mask(len: u32) -> u32 {
    debug_assert!((1..=32).contains(&len));
    u32::MAX >> (32 - len)
}

/// Computes a stored pattern whose window *starts* at the focus word
/// rather than centring on it — the ablation alternative to the paper's
/// Figure 5 policy. Clamped so the window stays within the block.
///
/// # Panics
///
/// Panics as [`window_pattern`] does.
pub fn window_pattern_aligned(window_len: u32, words_per_block: u32, focus: u32) -> u32 {
    assert!(words_per_block <= 32, "patterns are u32 masks");
    assert!(focus < words_per_block, "focus word out of range");
    let len = window_len.min(words_per_block);
    if len == 0 {
        return 0;
    }
    let start = focus.min(words_per_block - len);
    window_mask(len) << start
}

/// Remaps a logical `word` offset to the physical fault-free entry that
/// stores it, given the frame's stored pattern and fault pattern
/// (Figure 4's word-remapping logic).
///
/// Returns `None` when the word is not in the window (a *word miss*).
///
/// # Example
///
/// The paper's worked example: stored pattern `0111_1100` (logical words
/// 2–6 present), no defective entries among the first slots. Offset 3 is
/// the second word of the window, so it maps to the second fault-free
/// entry, `0x1`:
///
/// ```rust
/// use dvs_schemes::ffw::remap_word_offset;
///
/// assert_eq!(remap_word_offset(0b0111_1100, 0b0000_0000, 0x3), Some(0x1));
/// ```
///
/// # Panics
///
/// Panics if the window holds more words than the frame has fault-free
/// entries (the FFW invariant is violated).
pub fn remap_word_offset(stored_pattern: u32, fault_pattern: u32, word: u32) -> Option<u32> {
    if stored_pattern & (1 << word) == 0 {
        return None;
    }
    // Rank of `word` within the window (how many lower logical words are
    // stored).
    let rank = (stored_pattern & ((1 << word) - 1)).count_ones();
    // The rank-th fault-free physical entry.
    let mut remaining = rank;
    for slot in 0..32 {
        if fault_pattern & (1 << slot) == 0 {
            if remaining == 0 {
                return Some(slot);
            }
            remaining -= 1;
        }
    }
    panic!("window larger than the frame's fault-free capacity");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_worked_example() {
        // Figure 4: pattern 01111100, offset 0x3 → physical entry 0x1.
        assert_eq!(remap_word_offset(0b0111_1100, 0, 3), Some(1));
    }

    #[test]
    fn remap_skips_faulty_entries() {
        // Window = words 2..7; physical entry 0 faulty → word 2 lands in
        // entry 1, word 3 in entry 2 …
        let stored = 0b0111_1100;
        let faults = 0b0000_0001;
        assert_eq!(remap_word_offset(stored, faults, 2), Some(1));
        assert_eq!(remap_word_offset(stored, faults, 3), Some(2));
        assert_eq!(remap_word_offset(stored, faults, 6), Some(5));
    }

    #[test]
    fn words_outside_window_miss() {
        assert_eq!(remap_word_offset(0b0111_1100, 0, 0), None);
        assert_eq!(remap_word_offset(0b0111_1100, 0, 7), None);
    }

    #[test]
    fn full_window_is_identity_when_fault_free() {
        for w in 0..8 {
            assert_eq!(remap_word_offset(0xFF, 0, w), Some(w));
        }
    }

    #[test]
    fn window_pattern_centres_on_focus() {
        // 5-word window around word 5 in an 8-word block: words 3..=7.
        assert_eq!(window_pattern(5, 8, 5), 0b1111_1000);
        // Clamped at the low end.
        assert_eq!(window_pattern(5, 8, 0), 0b0001_1111);
        // Clamped at the high end.
        assert_eq!(window_pattern(5, 8, 7), 0b1111_1000);
    }

    #[test]
    fn aligned_window_starts_at_focus() {
        assert_eq!(window_pattern_aligned(5, 8, 2), 0b0111_1100);
        assert_eq!(window_pattern_aligned(5, 8, 6), 0b1111_1000); // clamped
        assert_eq!(window_pattern_aligned(8, 8, 0), 0xFF);
        assert_eq!(window_pattern_aligned(0, 8, 0), 0);
    }

    #[test]
    fn window_pattern_full_and_empty() {
        assert_eq!(window_pattern(8, 8, 3), 0xFF);
        assert_eq!(window_pattern(0, 8, 3), 0);
        assert_eq!(window_pattern(12, 8, 3), 0xFF); // clamped to block
    }

    #[test]
    #[should_panic(expected = "focus word out of range")]
    fn window_pattern_rejects_bad_focus() {
        let _ = window_pattern(4, 8, 8);
    }

    /// Shrunk reproducer from the dvs-diff window-growth sweep: a
    /// full-block window over a 32-word geometry used to compute its mask
    /// as `(1u32 << 32) - 1`, which overflows. The clamp path the issue
    /// flagged (`window_len > words_per_block`, `focus` at the last word)
    /// hits the same mask.
    #[test]
    fn full_window_of_a_32_word_block_is_all_ones() {
        assert_eq!(window_pattern(32, 32, 31), u32::MAX);
        assert_eq!(window_pattern(33, 32, 31), u32::MAX); // clamped len
        assert_eq!(window_pattern_aligned(32, 32, 0), u32::MAX);
        assert_eq!(window_pattern_aligned(40, 32, 31), u32::MAX);
    }

    /// Exhaustive sweep of the whole supported domain: every geometry up
    /// to the 32-word mask limit, every focus, and lens past the clamp
    /// point. Both policies must produce a contiguous, in-range window of
    /// exactly `min(len, wpb)` words that contains the focus.
    #[test]
    fn exhaustive_domain_windows_are_contiguous_and_contain_focus() {
        for wpb in 1..=32u32 {
            let block = if wpb == 32 {
                u32::MAX
            } else {
                (1u32 << wpb) - 1
            };
            for focus in 0..wpb {
                for len in 0..=wpb + 2 {
                    for (name, p) in [
                        ("centred", window_pattern(len, wpb, focus)),
                        ("aligned", window_pattern_aligned(len, wpb, focus)),
                    ] {
                        let eff = len.min(wpb);
                        assert_eq!(
                            p.count_ones(),
                            eff,
                            "{name} wpb={wpb} focus={focus} len={len}: {p:#b}"
                        );
                        assert_eq!(p & !block, 0, "{name} window escapes the block: {p:#b}");
                        if eff > 0 {
                            assert_ne!(
                                p & (1 << focus),
                                0,
                                "{name} wpb={wpb} focus={focus} len={len} misses focus: {p:#b}"
                            );
                            let shifted = p >> p.trailing_zeros();
                            assert_eq!(
                                shifted & shifted.wrapping_add(1),
                                0,
                                "{name} not contiguous: {p:#b}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Growing the window never drops a word: `window(len) ⊆
    /// window(len + 1)` for every focus, both policies. The dvs-diff
    /// metamorphic sweep relies on this containment.
    #[test]
    fn exhaustive_domain_windows_grow_monotonically() {
        for wpb in [8u32, 16, 31, 32] {
            for focus in 0..wpb {
                for len in 0..wpb {
                    let (a, b) = (
                        window_pattern(len, wpb, focus),
                        window_pattern(len + 1, wpb, focus),
                    );
                    assert_eq!(
                        a & !b,
                        0,
                        "centred wpb={wpb} focus={focus}: {a:#b} ⊄ {b:#b}"
                    );
                    let (a, b) = (
                        window_pattern_aligned(len, wpb, focus),
                        window_pattern_aligned(len + 1, wpb, focus),
                    );
                    assert_eq!(
                        a & !b,
                        0,
                        "aligned wpb={wpb} focus={focus}: {a:#b} ⊄ {b:#b}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "fault-free capacity")]
    fn remap_detects_invariant_violation() {
        // 8-word window but every entry faulty.
        let _ = remap_word_offset(0xFF, 0xFFFF_FFFF, 0);
    }

    proptest! {
        #[test]
        fn window_always_contains_focus(len in 1u32..=8, focus in 0u32..8) {
            let p = window_pattern(len, 8, focus);
            prop_assert!(p & (1 << focus) != 0, "pattern {:08b} misses focus {}", p, focus);
            prop_assert_eq!(p.count_ones(), len.min(8));
        }

        #[test]
        fn window_is_contiguous(len in 0u32..=8, focus in 0u32..8) {
            let p = window_pattern(len, 8, focus);
            if p != 0 {
                let shifted = p >> p.trailing_zeros();
                prop_assert_eq!(shifted & (shifted + 1), 0, "pattern {:08b} not contiguous", p);
            }
        }

        #[test]
        fn remap_is_injective_into_fault_free_slots(
            fault_pattern in 0u32..256,
            focus in 0u32..8,
        ) {
            let free = 8 - (fault_pattern & 0xFF).count_ones();
            let stored = window_pattern(free, 8, focus);
            let mut seen = std::collections::HashSet::new();
            for w in 0..8 {
                if let Some(slot) = remap_word_offset(stored, fault_pattern, w) {
                    prop_assert!(slot < 8);
                    prop_assert!(fault_pattern & (1 << slot) == 0, "mapped to faulty slot");
                    prop_assert!(seen.insert(slot), "two words share slot {slot}");
                }
            }
            prop_assert_eq!(seen.len() as u32, stored.count_ones());
        }
    }
}
