//! Scheme identifiers and their static properties.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The fault-tolerance schemes evaluated in the paper (Section VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Conventional 6T cache assumed defect-free — either the 760 mV
    /// baseline or the paper's "unrealistic" defect-free low-voltage
    /// baseline.
    Conventional,
    /// Robust 8T-cell cache: defect-free at every evaluated voltage, but
    /// +28 % area, which the paper charges as one extra cycle.
    EightT,
    /// Simple word disable: accesses to defective words are redirected to
    /// the L2 every time (Mahmood & Kim).
    SimpleWordDisable,
    /// Wilkerson word-disable with the simple-word-disable supplement the
    /// paper grants it below 480 mV: consecutive line pairs combine into
    /// one effective line (half capacity, +1 cycle).
    WilkersonPlus,
    /// Fault Buffer Array: a fully associative word-location-tagged buffer
    /// holding in-use defective words (+1 cycle). `FBA⁺` = 1024 entries.
    Fba {
        /// Buffer capacity in words.
        entries: u32,
    },
    /// Inquisitive Defect Cache: like FBA but set-associative (+1 cycle).
    /// `IDC⁺` = 1024 entries.
    Idc {
        /// Buffer capacity in words.
        entries: u32,
        /// Buffer associativity.
        ways: u32,
    },
    /// Word substitution (ZerehCache/Archipelago family, §III-B):
    /// sacrificial lines patch the defective words of grouped data lines
    /// (+1 cycle for the substitution muxes; capacity shrinks by the
    /// sacrifices).
    WordSubstitution,
    /// Coarse-grained line disable (Lee et al., §III-B): any cache line
    /// containing a defective word is never allocated. Graceful at
    /// moderate rates; hopeless once "almost every cache line is expected
    /// to be faulty".
    LineDisable,
    /// Gated-Vdd way disable (Ozdemir et al., §III-B): a whole way with
    /// any defective cell is powered off.
    WayDisable,
    /// Fault-Free Window — this paper's data-cache mechanism (0 cycles).
    Ffw,
    /// Basic Block Relocation support mode — this paper's instruction-cache
    /// mechanism: direct-mapped operation over a cache whose defective
    /// words the linker guarantees are never fetched (0 cycles).
    Bbr,
    /// TS Cache (PAPERS.md) — timing speculation: every word is served
    /// from the L1 at the nominal low latency, a lightweight checker
    /// validates timing-marginal (defective) words one word behind, and
    /// a mismatch replays the access with relaxed timing. Zero added hit
    /// latency on clean words — FFW's direct competitor on that axis —
    /// at a fixed replay penalty per marginal-word access.
    ///
    /// New in this repo relative to the source paper; appended last so
    /// the serialized variant tags of the paper's schemes are unchanged.
    TsCache,
}

impl SchemeKind {
    /// The paper's 64-entry FBA configuration (Table III).
    pub const fn fba() -> Self {
        SchemeKind::Fba { entries: 64 }
    }

    /// The optimistic `FBA⁺` with 1024 entries (Figures 10–12).
    pub const fn fba_plus() -> Self {
        SchemeKind::Fba { entries: 1024 }
    }

    /// The paper's 64-entry IDC configuration (Table III).
    pub const fn idc() -> Self {
        SchemeKind::Idc {
            entries: 64,
            ways: 4,
        }
    }

    /// The optimistic `IDC⁺` with 1024 entries (Figures 10–12).
    pub const fn idc_plus() -> Self {
        SchemeKind::Idc {
            entries: 1024,
            ways: 4,
        }
    }

    /// Extra L1 hit cycles the scheme costs (Table III "Latency overhead").
    pub fn extra_hit_cycles(self) -> u32 {
        match self {
            SchemeKind::Conventional
            | SchemeKind::SimpleWordDisable
            | SchemeKind::LineDisable
            | SchemeKind::WayDisable
            | SchemeKind::Ffw
            | SchemeKind::Bbr
            | SchemeKind::TsCache => 0,
            SchemeKind::EightT
            | SchemeKind::WilkersonPlus
            | SchemeKind::WordSubstitution
            | SchemeKind::Fba { .. }
            | SchemeKind::Idc { .. } => 1,
        }
    }

    /// Whether the scheme's data array is immune to the fault map
    /// (defect-free cells).
    pub fn is_defect_free(self) -> bool {
        matches!(self, SchemeKind::Conventional | SchemeKind::EightT)
    }

    /// Cycles one replayed access costs on a timing-marginal word:
    /// checker mismatch detection plus the relaxed-timing reissue. Zero
    /// for every scheme but [`SchemeKind::TsCache`].
    pub fn replay_penalty_cycles(self) -> u32 {
        match self {
            SchemeKind::TsCache => 2,
            _ => 0,
        }
    }

    /// Whether the scheme halves the effective associativity/capacity
    /// (Wilkerson pairs consecutive lines).
    pub fn halves_capacity(self) -> bool {
        self == SchemeKind::WilkersonPlus
    }

    /// Whether the cache must run direct-mapped (BBR's low-voltage mode).
    pub fn requires_direct_mapped(self) -> bool {
        self == SchemeKind::Bbr
    }

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Conventional => "baseline",
            SchemeKind::EightT => "8T",
            SchemeKind::SimpleWordDisable => "Simple-wdis",
            SchemeKind::WilkersonPlus => "Wilkerson+",
            SchemeKind::Fba { entries } if entries >= 1024 => "FBA+",
            SchemeKind::Fba { .. } => "FBA",
            SchemeKind::Idc { entries, .. } if entries >= 1024 => "IDC+",
            SchemeKind::Idc { .. } => "IDC",
            SchemeKind::WordSubstitution => "Word-subst",
            SchemeKind::LineDisable => "Line-disable",
            SchemeKind::WayDisable => "Way-disable",
            SchemeKind::Ffw => "FFW",
            SchemeKind::Bbr => "BBR",
            SchemeKind::TsCache => "TS-Cache",
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_overheads_match_table3() {
        assert_eq!(SchemeKind::EightT.extra_hit_cycles(), 1);
        assert_eq!(SchemeKind::Ffw.extra_hit_cycles(), 0);
        assert_eq!(SchemeKind::Bbr.extra_hit_cycles(), 0);
        assert_eq!(SchemeKind::fba().extra_hit_cycles(), 1);
        assert_eq!(SchemeKind::WilkersonPlus.extra_hit_cycles(), 1);
        assert_eq!(SchemeKind::idc().extra_hit_cycles(), 1);
        assert_eq!(SchemeKind::SimpleWordDisable.extra_hit_cycles(), 0);
    }

    #[test]
    fn plus_variants_have_1024_entries() {
        assert_eq!(SchemeKind::fba_plus(), SchemeKind::Fba { entries: 1024 });
        assert!(matches!(
            SchemeKind::idc_plus(),
            SchemeKind::Idc { entries: 1024, .. }
        ));
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(SchemeKind::fba_plus().name(), "FBA+");
        assert_eq!(SchemeKind::fba().name(), "FBA");
        assert_eq!(SchemeKind::WilkersonPlus.to_string(), "Wilkerson+");
    }

    #[test]
    fn predicates() {
        assert!(SchemeKind::EightT.is_defect_free());
        assert!(!SchemeKind::Ffw.is_defect_free());
        assert!(SchemeKind::WilkersonPlus.halves_capacity());
        assert!(SchemeKind::Bbr.requires_direct_mapped());
        assert!(!SchemeKind::Ffw.requires_direct_mapped());
    }

    #[test]
    fn ts_cache_speculates_instead_of_adding_latency() {
        assert_eq!(SchemeKind::TsCache.extra_hit_cycles(), 0);
        assert_eq!(SchemeKind::TsCache.replay_penalty_cycles(), 2);
        assert!(!SchemeKind::TsCache.is_defect_free());
        assert!(!SchemeKind::TsCache.requires_direct_mapped());
        assert_eq!(SchemeKind::TsCache.name(), "TS-Cache");
        // Everything else never replays.
        assert_eq!(SchemeKind::Ffw.replay_penalty_cycles(), 0);
        assert_eq!(SchemeKind::Conventional.replay_penalty_cycles(), 0);
    }
}
