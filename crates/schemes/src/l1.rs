//! The scheme-agnostic L1 cache front end.

use serde::{Deserialize, Serialize};

use dvs_cache::{Addr, CacheCore, CacheMode, L2Cache};
use dvs_sram::{CacheGeometry, FaultMap, FrameId};

use crate::buffer::DefectBuffer;
use crate::ffw::{window_pattern, window_pattern_aligned};
use crate::kind::SchemeKind;
use crate::wilkerson::pair_collision_pattern;

/// Where a read was ultimately served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServedFrom {
    /// The L1 itself (including a defect-buffer hit).
    L1,
    /// The L2 cache.
    L2,
    /// Main memory (L2 missed).
    Memory,
}

/// Outcome of a read (load or instruction fetch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Where the requested word came from.
    pub source: ServedFrom,
    /// L2 read accesses this L1 access caused.
    pub l2_reads: u32,
    /// Extra cycles a timing-speculation checker charged this access
    /// (TS Cache replaying a marginal word); zero for every other scheme
    /// and for clean words.
    pub replay_cycles: u32,
}

/// Outcome of a store (the write-through path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Whether the L1 copy was updated (block present and word usable).
    pub l1_updated: bool,
}

/// Event counters of one L1 instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct L1Stats {
    /// Read accesses (loads or fetches).
    pub reads: u64,
    /// Reads served directly from the L1 data array.
    pub hits: u64,
    /// Reads that missed because the block was absent.
    pub block_misses: u64,
    /// Reads that hit the tag but missed the word (defective / outside the
    /// fault-free window).
    pub word_misses: u64,
    /// Word misses absorbed by a defect buffer (FBA/IDC only).
    pub buffer_hits: u64,
    /// Store accesses observed.
    pub writes: u64,
    /// Reads the timing-speculation checker replayed (TS Cache only):
    /// L1-served accesses to marginal words. Always counted as hits too.
    pub replays: u64,
}

#[derive(Debug, Clone)]
enum Policy {
    /// Conventional / 8T: the data array is defect-free.
    AlwaysPresent,
    /// Simple word disable and BBR: defective words always redirect.
    WordDisable,
    /// Fault-free windows: per-frame stored patterns. `centered` selects
    /// the paper's Figure 5 policy (missing word in the middle) over the
    /// ablation's start-aligned windows.
    Ffw {
        /// Per-frame stored patterns.
        patterns: Vec<u32>,
        /// Window placement policy.
        centered: bool,
    },
    /// FBA / IDC: defective words may live in the side buffer.
    Buffer(DefectBuffer),
    /// Wilkerson word-disable pairs with the word-disable supplement.
    WilkersonPlus,
    /// Word substitution: per-frame roles from the greedy grouper; only
    /// `Data` frames are allocated, and their faults are patched.
    WordSub {
        /// `usable[frame_index]` marks data frames.
        usable: Vec<bool>,
    },
    /// Lines containing any defective word are never allocated.
    LineDisable,
    /// Ways containing any defective cell are powered off; `usable[w]`
    /// marks the surviving ways.
    WayDisable {
        /// Per-way usability, precomputed from the fault map.
        usable: Vec<bool>,
    },
    /// TS Cache: every word is served from the L1 data array; accesses
    /// to timing-marginal (defective) words are validated by a checker
    /// and replayed at a fixed cycle penalty, never redirected.
    TimingSpec,
}

/// An L1 cache running one fault-tolerance scheme over a fault map.
///
/// The same type serves as instruction and data cache; the CPU model owns
/// one instance per side and a shared [`L2Cache`].
///
/// # Example
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct L1Cache {
    kind: SchemeKind,
    core: CacheCore,
    fmap: FaultMap,
    policy: Policy,
    stats: L1Stats,
    /// Per-core-frame fault masks (set-major, matching
    /// [`L1Cache::frame_index`]), precomputed once at construction so the
    /// per-access paths never re-query the fault map bit by bit. For the
    /// capacity-halving Wilkerson scheme the entry is the *pair collision*
    /// mask of the logical frame; for every other scheme it is the frame's
    /// fault pattern.
    frame_patterns: Vec<u32>,
    /// Hot-block hint: the block number and frame of the most recent
    /// read that found the block present, valid only while no other
    /// access has touched that frame's set. Consecutive reads to the
    /// same block (the common case on the instruction side) then skip
    /// the tag probe and the LRU touch entirely — the touch would be a
    /// no-op because the hinted frame is still most-recently-used, so
    /// the fast path is behaviourally identical to the full lookup.
    hot: Option<(u64, FrameId)>,
}

impl L1Cache {
    /// Builds an L1 for `kind` over `fmap` (whose geometry is the physical
    /// cache shape).
    ///
    /// # Panics
    ///
    /// Panics if Wilkerson pairing is requested with an odd way count, or
    /// the geometry's blocks exceed 32 words.
    pub fn new(kind: SchemeKind, fmap: FaultMap) -> Self {
        let phys = *fmap.geometry();
        let core_geom = if kind.halves_capacity() {
            assert!(
                phys.ways().is_multiple_of(2),
                "pairing requires an even way count"
            );
            CacheGeometry::new(
                phys.capacity_bytes() / 2,
                phys.ways() / 2,
                phys.block_bytes(),
            )
            .expect("halved geometry remains valid")
        } else {
            phys
        };
        let mut core = CacheCore::new(core_geom);
        if kind.requires_direct_mapped() {
            core.set_mode(CacheMode::DirectMapped);
        }
        let policy = match kind {
            SchemeKind::Conventional | SchemeKind::EightT => Policy::AlwaysPresent,
            SchemeKind::SimpleWordDisable | SchemeKind::Bbr => Policy::WordDisable,
            SchemeKind::Ffw => Policy::Ffw {
                patterns: vec![0; core_geom.total_lines() as usize],
                centered: true,
            },
            SchemeKind::Fba { entries } => Policy::Buffer(DefectBuffer::fully_associative(entries)),
            SchemeKind::Idc { entries, ways } => {
                Policy::Buffer(DefectBuffer::set_associative(entries, ways))
            }
            SchemeKind::WilkersonPlus => Policy::WilkersonPlus,
            SchemeKind::WordSubstitution => {
                let roles = crate::wordsub::group_cache(&fmap);
                let mut usable = vec![false; phys.total_lines() as usize];
                for (set, ways) in roles.iter().enumerate() {
                    for (way, &role) in ways.iter().enumerate() {
                        usable[set * phys.ways() as usize + way] =
                            role == crate::wordsub::WayRole::Data;
                    }
                }
                Policy::WordSub { usable }
            }
            SchemeKind::LineDisable => Policy::LineDisable,
            SchemeKind::TsCache => Policy::TimingSpec,
            SchemeKind::WayDisable => {
                // A way's words are one contiguous run of the linear view
                // (`(way · sets + set) · wpb + word`), so each way is
                // cleared by a single word-skipping seek instead of a
                // per-frame sweep.
                let bits = fmap.word_bits();
                let span = (phys.sets() * phys.words_per_block()) as usize;
                let usable = (0..phys.ways() as usize)
                    .map(|way| match bits.next_one_at_or_after(way * span) {
                        Some(fault) => fault >= (way + 1) * span,
                        None => true,
                    })
                    .collect();
                Policy::WayDisable { usable }
            }
        };
        let mut frame_patterns = Vec::with_capacity(core_geom.total_lines() as usize);
        for set in 0..core_geom.sets() {
            for way in 0..core_geom.ways() {
                frame_patterns.push(if kind.halves_capacity() {
                    pair_collision_pattern(&fmap, set, way)
                } else {
                    fmap.frame_fault_pattern(FrameId::new(set, way))
                });
            }
        }
        L1Cache {
            kind,
            core,
            fmap,
            policy,
            stats: L1Stats::default(),
            frame_patterns,
            hot: None,
        }
    }

    /// The scheme in force.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// Extra cycles this scheme adds to every L1 access (Table III).
    pub fn extra_hit_cycles(&self) -> u32 {
        self.kind.extra_hit_cycles()
    }

    /// Event counters.
    pub fn stats(&self) -> &L1Stats {
        &self.stats
    }

    /// The fault map in force.
    pub fn fault_map(&self) -> &FaultMap {
        &self.fmap
    }

    /// Invalidates all contents (mode/voltage switches flush the L1s).
    pub fn invalidate_all(&mut self) {
        self.core.invalidate_all();
        self.hot = None;
        if let Policy::Ffw { patterns, .. } = &mut self.policy {
            patterns.iter_mut().for_each(|p| *p = 0);
        }
    }

    fn frame_index(&self, frame: FrameId) -> usize {
        (frame.set * self.core.geometry().ways() + frame.way) as usize
    }

    /// Whether the requested word of a present block can be served by the
    /// L1 data array. Consults the precomputed per-frame masks; the fault
    /// map itself is never queried on this path.
    fn word_present(&self, frame: FrameId, word: u32) -> bool {
        match &self.policy {
            Policy::AlwaysPresent => true,
            // For Wilkerson the precomputed mask is the pair collision
            // pattern, so the same test covers both cases: the word is
            // unusable exactly when its mask bit is set.
            Policy::WordDisable | Policy::Buffer(_) | Policy::WilkersonPlus => {
                self.frame_patterns[self.frame_index(frame)] & (1 << word) == 0
            }
            Policy::Ffw { patterns, .. } => patterns[self.frame_index(frame)] & (1 << word) != 0,
            // Disabled frames are never allocated, so anything present in
            // an allocated frame is fully usable (word substitution
            // patches data frames' faults from the sacrificial line).
            Policy::WordSub { .. } | Policy::LineDisable | Policy::WayDisable { .. } => true,
            // Timing speculation serves every word; marginal ones are
            // charged a replay instead of a redirect.
            Policy::TimingSpec => true,
        }
    }

    /// Cycles the TS Cache checker charges an L1-served read of `word`
    /// in `frame`: the scheme's replay penalty on a marginal word, zero
    /// otherwise. Consults the same precomputed per-frame mask on both
    /// the hot-block fast path and the full lookup, so the hint cannot
    /// change replay accounting.
    fn replay_penalty(&self, frame: FrameId, word: u32) -> u32 {
        if matches!(self.policy, Policy::TimingSpec)
            && self.frame_patterns[self.frame_index(frame)] & (1 << word) != 0
        {
            self.kind.replay_penalty_cycles()
        } else {
            0
        }
    }

    /// For line/way-disabling policies: the LRU way of `addr`'s set that
    /// is still allowed to hold data, or `None` when the whole set is
    /// disabled (the access then bypasses the L1 entirely).
    fn fillable_way(&self, addr: Addr) -> Option<u32> {
        let set = addr.set_index(self.core.geometry());
        let usable = |way: u32| match &self.policy {
            Policy::LineDisable => {
                self.frame_patterns[(set * self.core.geometry().ways() + way) as usize] == 0
            }
            Policy::WayDisable { usable } => usable[way as usize],
            Policy::WordSub { usable } => {
                usable[(set * self.core.geometry().ways() + way) as usize]
            }
            _ => unreachable!("only disabling policies restrict fills"),
        };
        (0..self.core.geometry().ways())
            .filter(|&w| usable(w))
            .max_by_key(|&w| self.core.way_rank(set, w))
    }

    /// Switches the FFW to start-aligned windows (ablation; the paper's
    /// default centres the window on the missing word).
    ///
    /// # Panics
    ///
    /// Panics if this cache does not run the FFW scheme.
    pub fn set_ffw_alignment(&mut self, centered: bool) {
        match &mut self.policy {
            Policy::Ffw { centered: c, .. } => *c = centered,
            _ => panic!("window alignment applies only to FFW caches"),
        }
    }

    /// Recomputes a frame's FFW stored pattern around `focus`.
    fn refresh_window(&mut self, frame: FrameId, focus: u32) {
        let wpb = self.fmap.geometry().words_per_block();
        let idx = self.frame_index(frame);
        let free = wpb - self.frame_patterns[idx].count_ones();
        if let Policy::Ffw { patterns, centered } = &mut self.policy {
            patterns[idx] = if *centered {
                window_pattern(free, wpb, focus)
            } else {
                window_pattern_aligned(free, wpb, focus)
            };
        }
    }

    /// Reads the word at `addr` (a load or an instruction fetch),
    /// escalating to `l2` as the scheme requires.
    pub fn read(&mut self, addr: Addr, l2: &mut L2Cache) -> ReadOutcome {
        self.stats.reads += 1;
        let word = addr.word_offset(self.core.geometry());
        let block = addr.block_number(self.core.geometry());
        // Hot-block fast path: the previous read left this block's frame
        // most-recently-used, so the full lookup's LRU touch would be a
        // no-op and the tag probe is answered by the hint. Word misses
        // fall through to the slow path (whose re-probe hits and whose
        // touch is still a no-op), keeping every outcome and counter
        // identical to the unhinted lookup.
        if let Some((hot_block, frame)) = self.hot {
            if hot_block == block && self.word_present(frame, word) {
                self.stats.hits += 1;
                let replay_cycles = self.replay_penalty(frame, word);
                if replay_cycles > 0 {
                    self.stats.replays += 1;
                }
                return ReadOutcome {
                    source: ServedFrom::L1,
                    l2_reads: 0,
                    replay_cycles,
                };
            }
        }
        if let dvs_cache::LookupResult::Hit { frame } = self.core.lookup(addr) {
            self.hot = Some((block, frame));
            if self.word_present(frame, word) {
                self.stats.hits += 1;
                let replay_cycles = self.replay_penalty(frame, word);
                if replay_cycles > 0 {
                    self.stats.replays += 1;
                }
                return ReadOutcome {
                    source: ServedFrom::L1,
                    l2_reads: 0,
                    replay_cycles,
                };
            }
            // Word miss: tag matched but the word is unusable.
            self.stats.word_misses += 1;
            if matches!(self.policy, Policy::Ffw { .. }) {
                // Fetch the block from L2 and slide the window so the
                // missing word sits in the middle (Figure 5). The word is
                // forwarded to the CPU as the window updates.
                let out = l2.read(addr);
                self.refresh_window(frame, word);
                return ReadOutcome {
                    source: served(out.hit),
                    l2_reads: 1,
                    replay_cycles: 0,
                };
            }
            if let Policy::Buffer(buf) = &mut self.policy {
                if buf.access(addr.word_index()) {
                    self.stats.buffer_hits += 1;
                    return ReadOutcome {
                        source: ServedFrom::L1,
                        l2_reads: 0,
                        replay_cycles: 0,
                    };
                }
                // Buffer miss: handled like a normal cache miss, and the
                // word was just installed in the buffer.
            }
            debug_assert!(
                !matches!(self.policy, Policy::AlwaysPresent),
                "defect-free words never miss"
            );
            // Word disable / Wilkerson supplement / buffer miss: redirect
            // to the next level.
            let out = l2.read(addr);
            ReadOutcome {
                source: served(out.hit),
                l2_reads: 1,
                replay_cycles: 0,
            }
        } else {
            // Block miss: refill from L2.
            self.stats.block_misses += 1;
            let out = l2.read(addr);
            if matches!(
                self.policy,
                Policy::LineDisable | Policy::WayDisable { .. } | Policy::WordSub { .. }
            ) {
                // Disabled frames never hold data; allocate into the LRU
                // usable way, or bypass the L1 when the set has none (a
                // bypass touches nothing, so the hint stays valid).
                if let Some(way) = self.fillable_way(addr) {
                    let (frame, _evicted) = self.core.fill_into(addr, way);
                    self.hot = Some((block, frame));
                }
                return ReadOutcome {
                    source: served(out.hit),
                    l2_reads: 1,
                    replay_cycles: 0,
                };
            }
            let (frame, _evicted) = self.core.fill(addr);
            self.hot = Some((block, frame));
            if matches!(self.policy, Policy::Ffw { .. }) {
                self.refresh_window(frame, word);
            } else {
                let faulty = !matches!(self.policy, Policy::WilkersonPlus)
                    && self.frame_patterns[self.frame_index(frame)] & (1 << word) != 0;
                if let Policy::Buffer(buf) = &mut self.policy {
                    // The requested word is defective in its new frame:
                    // install it in the buffer as part of the refill.
                    if faulty {
                        buf.access(addr.word_index());
                    }
                }
            }
            ReadOutcome {
                source: served(out.hit),
                l2_reads: 1,
                replay_cycles: 0,
            }
        }
    }

    /// Applies a store at `addr`. The L1 is write-through / no-write-
    /// allocate (Table I): the store always proceeds to the write buffer
    /// and L2; this call only maintains L1-side state.
    pub fn write(&mut self, addr: Addr) -> WriteOutcome {
        self.stats.writes += 1;
        let word = addr.word_offset(self.core.geometry());
        match self.core.lookup(addr) {
            dvs_cache::LookupResult::Hit { frame } => {
                // The store's lookup just touched this frame's LRU; a
                // hint for a *different* block of the same set is no
                // longer most-recently-used, so drop it.
                if let Some((hot_block, hot_frame)) = self.hot {
                    if hot_frame.set == frame.set
                        && hot_block != addr.block_number(self.core.geometry())
                    {
                        self.hot = None;
                    }
                }
                if self.word_present(frame, word) {
                    return WriteOutcome { l1_updated: true };
                }
                // Defective word: a buffer-based scheme captures the store.
                if let Policy::Buffer(buf) = &mut self.policy {
                    buf.access(addr.word_index());
                    return WriteOutcome { l1_updated: true };
                }
                WriteOutcome { l1_updated: false }
            }
            dvs_cache::LookupResult::Miss => WriteOutcome { l1_updated: false },
        }
    }
}

fn served(l2_hit: bool) -> ServedFrom {
    if l2_hit {
        ServedFrom::L2
    } else {
        ServedFrom::Memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_way_geom() -> CacheGeometry {
        // 64 sets × 1 way × 32 B = 2 KB: deterministic frame targeting.
        CacheGeometry::new(2048, 1, 32).unwrap()
    }

    fn addr(set: u32, tag: u64, word: u32) -> Addr {
        // one_way_geom: 5 offset bits, 6 index bits.
        Addr::new((tag << 11) | u64::from(set) << 5 | (u64::from(word) * 4))
    }

    #[test]
    fn conventional_hit_miss_lifecycle() {
        let fmap = FaultMap::fault_free(&one_way_geom());
        let mut l1 = L1Cache::new(SchemeKind::Conventional, fmap);
        let mut l2 = L2Cache::dsn();
        assert_eq!(l1.read(addr(0, 1, 0), &mut l2).source, ServedFrom::Memory);
        assert_eq!(l1.read(addr(0, 1, 3), &mut l2).source, ServedFrom::L1);
        assert_eq!(l1.stats().block_misses, 1);
        assert_eq!(l1.stats().hits, 1);
        // Conflicting tag evicts; refetch hits the L2 this time.
        assert_eq!(l1.read(addr(0, 2, 0), &mut l2).source, ServedFrom::Memory);
        assert_eq!(l1.read(addr(0, 1, 0), &mut l2).source, ServedFrom::L2);
    }

    #[test]
    fn word_disable_redirects_faulty_words_every_time() {
        let mut fmap = FaultMap::fault_free(&one_way_geom());
        fmap.set_faulty(FrameId::new(0, 0), 5, true);
        let mut l1 = L1Cache::new(SchemeKind::SimpleWordDisable, fmap);
        let mut l2 = L2Cache::dsn();
        l1.read(addr(0, 1, 0), &mut l2); // fill
        for _ in 0..3 {
            let out = l1.read(addr(0, 1, 5), &mut l2);
            assert_ne!(out.source, ServedFrom::L1);
            assert_eq!(out.l2_reads, 1);
        }
        assert_eq!(l1.stats().word_misses, 3);
        // Healthy words of the same block still hit.
        assert_eq!(l1.read(addr(0, 1, 4), &mut l2).source, ServedFrom::L1);
    }

    #[test]
    fn ffw_window_centres_and_slides() {
        // Frame (0,0): words 6 and 7 defective → 6-word window.
        let mut fmap = FaultMap::fault_free(&one_way_geom());
        fmap.set_faulty(FrameId::new(0, 0), 6, true);
        fmap.set_faulty(FrameId::new(0, 0), 7, true);
        let mut l1 = L1Cache::new(SchemeKind::Ffw, fmap);
        let mut l2 = L2Cache::dsn();
        // Fill reading word 0 → window covers words 0..=5.
        l1.read(addr(0, 1, 0), &mut l2);
        for w in 0..=5 {
            assert_eq!(
                l1.read(addr(0, 1, w), &mut l2).source,
                ServedFrom::L1,
                "word {w} should be in the default window"
            );
        }
        // Word 6 misses; the window re-centres around it (words 2..=7).
        let out = l1.read(addr(0, 1, 6), &mut l2);
        assert_eq!(out.source, ServedFrom::L2);
        assert_eq!(l1.stats().word_misses, 1);
        assert_eq!(l1.read(addr(0, 1, 6), &mut l2).source, ServedFrom::L1);
        assert_eq!(l1.read(addr(0, 1, 7), &mut l2).source, ServedFrom::L1);
        // Word 0 slid out of the window; it misses, and the window slides
        // back so the following access hits again.
        assert_ne!(l1.read(addr(0, 1, 0), &mut l2).source, ServedFrom::L1);
        assert_eq!(l1.read(addr(0, 1, 0), &mut l2).source, ServedFrom::L1);
    }

    #[test]
    fn ffw_word_outside_window_misses_after_slide() {
        let mut fmap = FaultMap::fault_free(&one_way_geom());
        fmap.set_faulty(FrameId::new(0, 0), 0, true);
        fmap.set_faulty(FrameId::new(0, 0), 1, true);
        // free = 6 → window of 6.
        let mut l1 = L1Cache::new(SchemeKind::Ffw, fmap);
        let mut l2 = L2Cache::dsn();
        l1.read(addr(0, 1, 7), &mut l2); // window centred at 7 → words 2..=7
        assert_eq!(l1.read(addr(0, 1, 2), &mut l2).source, ServedFrom::L1);
        // Words 0 and 1 are defective AND outside: they word-miss forever.
        let out = l1.read(addr(0, 1, 0), &mut l2);
        assert_ne!(out.source, ServedFrom::L1);
    }

    #[test]
    fn ffw_fully_faulty_frame_serves_nothing_locally() {
        let mut fmap = FaultMap::fault_free(&one_way_geom());
        for w in 0..8 {
            fmap.set_faulty(FrameId::new(0, 0), w, true);
        }
        let mut l1 = L1Cache::new(SchemeKind::Ffw, fmap);
        let mut l2 = L2Cache::dsn();
        l1.read(addr(0, 1, 0), &mut l2);
        for w in 0..8 {
            assert_ne!(l1.read(addr(0, 1, w), &mut l2).source, ServedFrom::L1);
        }
    }

    #[test]
    fn fba_buffers_defective_words() {
        let mut fmap = FaultMap::fault_free(&one_way_geom());
        fmap.set_faulty(FrameId::new(0, 0), 5, true);
        let mut l1 = L1Cache::new(SchemeKind::Fba { entries: 4 }, fmap);
        let mut l2 = L2Cache::dsn();
        // Block miss reading the faulty word: refill + buffer install.
        assert_eq!(l1.read(addr(0, 1, 5), &mut l2).l2_reads, 1);
        // Now the buffer serves it at L1 speed.
        assert_eq!(l1.read(addr(0, 1, 5), &mut l2).source, ServedFrom::L1);
        assert_eq!(l1.stats().buffer_hits, 1);
    }

    #[test]
    fn fba_capacity_limits_coverage() {
        let mut fmap = FaultMap::fault_free(&one_way_geom());
        // Faulty word 0 in sets 0..4.
        for set in 0..4 {
            fmap.set_faulty(FrameId::new(set, 0), 0, true);
        }
        let mut l1 = L1Cache::new(SchemeKind::Fba { entries: 2 }, fmap);
        let mut l2 = L2Cache::dsn();
        for set in 0..4 {
            l1.read(addr(set, 1, 0), &mut l2);
        }
        // Buffer holds only the last two; the first redirects again.
        let out = l1.read(addr(0, 1, 0), &mut l2);
        assert_ne!(out.source, ServedFrom::L1);
    }

    #[test]
    fn wilkerson_pairs_halve_capacity_and_cover_collisions() {
        let geom = CacheGeometry::new(4096, 4, 32).unwrap(); // 32 sets
        let mut fmap = FaultMap::fault_free(&geom);
        // Both pairs of set 0 collide at word 3; word 4 is faulty in only
        // one line of each pair (the partner serves it).
        fmap.set_faulty(FrameId::new(0, 0), 3, true);
        fmap.set_faulty(FrameId::new(0, 1), 3, true);
        fmap.set_faulty(FrameId::new(0, 2), 3, true);
        fmap.set_faulty(FrameId::new(0, 3), 3, true);
        fmap.set_faulty(FrameId::new(0, 0), 4, true);
        fmap.set_faulty(FrameId::new(0, 2), 4, true);
        let mut l1 = L1Cache::new(SchemeKind::WilkersonPlus, fmap);
        let mut l2 = L2Cache::dsn();
        // 5 offset bits, 5 index bits (32 sets).
        let a = |tag: u64, word: u32| Addr::new((tag << 10) | (u64::from(word) * 4));
        l1.read(a(1, 0), &mut l2);
        // Non-collision faulty word: the partner line serves it.
        assert_eq!(l1.read(a(1, 4), &mut l2).source, ServedFrom::L1);
        // Collision word: supplement redirects to L2.
        assert_ne!(l1.read(a(1, 3), &mut l2).source, ServedFrom::L1);
        // Effective associativity is 2: three tags in one set thrash.
        l1.read(a(2, 0), &mut l2);
        l1.read(a(3, 0), &mut l2);
        let out = l1.read(a(1, 0), &mut l2);
        assert_ne!(out.source, ServedFrom::L1, "pairing must halve the ways");
    }

    #[test]
    fn bbr_mode_is_direct_mapped() {
        let geom = one_way_geom();
        let fmap = FaultMap::fault_free(&geom);
        let mut l1 = L1Cache::new(SchemeKind::Bbr, fmap);
        let mut l2 = L2Cache::dsn();
        // Two blocks whose block numbers differ by total_lines collide.
        let a = Addr::new(0);
        let b = Addr::new(u64::from(geom.total_lines()) * 32);
        l1.read(a, &mut l2);
        assert_eq!(l1.read(a, &mut l2).source, ServedFrom::L1);
        l1.read(b, &mut l2);
        assert_ne!(l1.read(a, &mut l2).source, ServedFrom::L1);
    }

    #[test]
    fn writes_update_present_words_only() {
        let mut fmap = FaultMap::fault_free(&one_way_geom());
        fmap.set_faulty(FrameId::new(0, 0), 5, true);
        let mut l1 = L1Cache::new(SchemeKind::SimpleWordDisable, fmap);
        let mut l2 = L2Cache::dsn();
        // Store miss: no allocation.
        assert!(!l1.write(addr(0, 1, 0)).l1_updated);
        assert_eq!(l1.stats().block_misses, 0, "stores do not allocate");
        l1.read(addr(0, 1, 0), &mut l2);
        assert!(l1.write(addr(0, 1, 0)).l1_updated);
        assert!(!l1.write(addr(0, 1, 5)).l1_updated, "faulty word");
    }

    #[test]
    fn invalidate_all_flushes_contents_and_windows() {
        let fmap = FaultMap::fault_free(&one_way_geom());
        let mut l1 = L1Cache::new(SchemeKind::Ffw, fmap);
        let mut l2 = L2Cache::dsn();
        l1.read(addr(0, 1, 0), &mut l2);
        l1.invalidate_all();
        assert_ne!(l1.read(addr(0, 1, 0), &mut l2).source, ServedFrom::L1);
    }

    #[test]
    fn line_disable_skips_defective_lines() {
        let geom = CacheGeometry::new(4096, 4, 32).unwrap(); // 32 sets, 4 ways
        let mut fmap = FaultMap::fault_free(&geom);
        // Set 0: ways 0 and 1 defective, ways 2 and 3 clean.
        fmap.set_faulty(FrameId::new(0, 0), 3, true);
        fmap.set_faulty(FrameId::new(0, 1), 5, true);
        let mut l1 = L1Cache::new(SchemeKind::LineDisable, fmap);
        let mut l2 = L2Cache::dsn();
        let a = |tag: u64| Addr::new(tag << 10); // set 0
                                                 // Two blocks fit in the two surviving ways.
        l1.read(a(1), &mut l2);
        l1.read(a(2), &mut l2);
        assert_eq!(l1.read(a(1), &mut l2).source, ServedFrom::L1);
        assert_eq!(l1.read(a(2), &mut l2).source, ServedFrom::L1);
        // A third block thrashes: effective associativity is 2.
        l1.read(a(3), &mut l2);
        assert_ne!(l1.read(a(1), &mut l2).source, ServedFrom::L1);
    }

    #[test]
    fn line_disable_bypasses_fully_defective_sets() {
        let geom = CacheGeometry::new(4096, 4, 32).unwrap();
        let mut fmap = FaultMap::fault_free(&geom);
        for way in 0..4 {
            fmap.set_faulty(FrameId::new(0, way), 0, true);
        }
        let mut l1 = L1Cache::new(SchemeKind::LineDisable, fmap);
        let mut l2 = L2Cache::dsn();
        let a = Addr::new(1 << 10);
        l1.read(a, &mut l2);
        // Never cached: every access goes to the next level.
        assert_ne!(l1.read(a, &mut l2).source, ServedFrom::L1);
        assert_eq!(l1.stats().hits, 0);
    }

    #[test]
    fn way_disable_powers_off_whole_ways() {
        let geom = CacheGeometry::new(4096, 4, 32).unwrap();
        let mut fmap = FaultMap::fault_free(&geom);
        // One defective word anywhere in way 0 kills the entire way.
        fmap.set_faulty(FrameId::new(17, 0), 2, true);
        let mut l1 = L1Cache::new(SchemeKind::WayDisable, fmap);
        let mut l2 = L2Cache::dsn();
        // Set 5 (unrelated to the fault's set) still loses way 0:
        let a = |tag: u64| Addr::new((tag << 10) | (5 << 5));
        for t in 1..=3 {
            l1.read(a(t), &mut l2);
        }
        for t in 1..=3 {
            assert_eq!(l1.read(a(t), &mut l2).source, ServedFrom::L1, "tag {t}");
        }
        l1.read(a(4), &mut l2); // 4th block exceeds the 3 surviving ways
        assert_ne!(l1.read(a(1), &mut l2).source, ServedFrom::L1);
    }

    #[test]
    fn way_disable_collapses_at_low_voltage() {
        // At P_fail(word) = 27.5 % every way contains defects: the cache
        // is fully powered off — the paper's point about coarse schemes.
        use rand::SeedableRng;
        let geom = CacheGeometry::dsn_l1();
        let fmap = FaultMap::sample(&geom, 0.275, &mut rand::rngs::StdRng::seed_from_u64(1));
        let mut l1 = L1Cache::new(SchemeKind::WayDisable, fmap);
        let mut l2 = L2Cache::dsn();
        for i in 0..100u64 {
            l1.read(Addr::new(i * 4), &mut l2);
        }
        assert_eq!(l1.stats().hits, 0, "no way can survive 27.5% word faults");
    }

    #[test]
    fn ffw_alignment_ablation_changes_the_window() {
        let mut fmap = FaultMap::fault_free(&one_way_geom());
        fmap.set_faulty(FrameId::new(0, 0), 0, true);
        fmap.set_faulty(FrameId::new(0, 0), 1, true); // 6-word windows
        let mut l1 = L1Cache::new(SchemeKind::Ffw, fmap);
        l1.set_ffw_alignment(false); // start-aligned
        let mut l2 = L2Cache::dsn();
        // Fill via word 2: aligned window covers words 2..=7.
        l1.read(addr(0, 1, 2), &mut l2);
        for w in 2..8 {
            assert_eq!(l1.read(addr(0, 1, w), &mut l2).source, ServedFrom::L1);
        }
        // Word 1 is outside (a centred window from focus 2 would differ).
        assert_ne!(l1.read(addr(0, 1, 1), &mut l2).source, ServedFrom::L1);
    }

    #[test]
    #[should_panic(expected = "only to FFW")]
    fn alignment_rejected_on_non_ffw() {
        let fmap = FaultMap::fault_free(&one_way_geom());
        let mut l1 = L1Cache::new(SchemeKind::EightT, fmap);
        l1.set_ffw_alignment(false);
    }

    /// The hot-block fast path must be invisible: a cache whose hint is
    /// discarded before every access (forcing the full lookup) and one
    /// using the hint must produce identical outcomes and statistics on
    /// any access sequence, for a representative scheme of every policy.
    #[test]
    fn hot_block_hint_never_changes_behaviour() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let geom = CacheGeometry::new(4096, 4, 32).unwrap(); // 32 sets
        for kind in [
            SchemeKind::Conventional,
            SchemeKind::SimpleWordDisable,
            SchemeKind::Bbr,
            SchemeKind::Ffw,
            SchemeKind::Fba { entries: 8 },
            SchemeKind::WilkersonPlus,
            SchemeKind::LineDisable,
            SchemeKind::WayDisable,
            SchemeKind::WordSubstitution,
            SchemeKind::TsCache,
        ] {
            let mut rng = StdRng::seed_from_u64(0x51ED);
            let mut fmap = FaultMap::fault_free(&geom);
            for set in 0..geom.sets() {
                for way in 0..geom.ways() {
                    for w in 0..geom.words_per_block() {
                        if rng.gen::<f64>() < 0.05 {
                            fmap.set_faulty(FrameId::new(set, way), w, true);
                        }
                    }
                }
            }
            let mut fast = L1Cache::new(kind, fmap.clone());
            let mut slow = L1Cache::new(kind, fmap);
            let mut l2_fast = L2Cache::dsn();
            let mut l2_slow = L2Cache::dsn();
            // A clustered address stream: block-local streaks (the case
            // the hint accelerates) mixed with random jumps and stores.
            let mut base = 0u64;
            for i in 0..40_000u64 {
                if rng.gen::<f64>() < 0.2 {
                    base = u64::from(rng.gen::<u16>()) << 5;
                }
                let a = Addr::new(base + u64::from(rng.gen::<u8>() % 32) / 4 * 4);
                slow.hot = None; // force the full lookup every time
                if i % 7 == 0 {
                    assert_eq!(fast.write(a), slow.write(a), "{kind:?} store {i}");
                } else {
                    assert_eq!(
                        fast.read(a, &mut l2_fast),
                        slow.read(a, &mut l2_slow),
                        "{kind:?} read {i}"
                    );
                }
            }
            assert_eq!(fast.stats(), slow.stats(), "{kind:?} stats diverged");
        }
    }

    #[test]
    fn ts_cache_serves_marginal_words_with_replay() {
        let mut fmap = FaultMap::fault_free(&one_way_geom());
        fmap.set_faulty(FrameId::new(0, 0), 5, true);
        let mut l1 = L1Cache::new(SchemeKind::TsCache, fmap);
        let mut l2 = L2Cache::dsn();
        // Refill: the word comes from below, so no speculation yet.
        let fill = l1.read(addr(0, 1, 5), &mut l2);
        assert_eq!(fill.replay_cycles, 0);
        // Marginal word: served from the L1 at a replay penalty — never
        // a word miss, never a redirect.
        for _ in 0..3 {
            let out = l1.read(addr(0, 1, 5), &mut l2);
            assert_eq!(out.source, ServedFrom::L1);
            assert_eq!(out.l2_reads, 0);
            assert_eq!(
                out.replay_cycles,
                SchemeKind::TsCache.replay_penalty_cycles()
            );
        }
        // Clean word of the same block: full speed.
        let clean = l1.read(addr(0, 1, 4), &mut l2);
        assert_eq!(clean.source, ServedFrom::L1);
        assert_eq!(clean.replay_cycles, 0);
        assert_eq!(l1.stats().word_misses, 0, "TS Cache never word-misses");
        assert_eq!(l1.stats().replays, 3);
        assert_eq!(l1.stats().hits, 4);
        // Stores to marginal words still land (write-through hides the
        // checker latency behind the write buffer).
        assert!(l1.write(addr(0, 1, 5)).l1_updated);
    }

    #[test]
    fn ts_cache_on_clean_map_matches_conventional() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let fmap = FaultMap::fault_free(&one_way_geom());
        let mut ts = L1Cache::new(SchemeKind::TsCache, fmap.clone());
        let mut conv = L1Cache::new(SchemeKind::Conventional, fmap);
        let mut l2_ts = L2Cache::dsn();
        let mut l2_conv = L2Cache::dsn();
        let mut rng = StdRng::seed_from_u64(0x75);
        for _ in 0..5_000u32 {
            let a = Addr::new(u64::from(rng.gen::<u16>()) * 4);
            assert_eq!(ts.read(a, &mut l2_ts), conv.read(a, &mut l2_conv));
        }
        assert_eq!(ts.stats(), conv.stats());
    }

    #[test]
    fn eight_t_ignores_the_fault_map() {
        let mut fmap = FaultMap::fault_free(&one_way_geom());
        for w in 0..8 {
            fmap.set_faulty(FrameId::new(0, 0), w, true);
        }
        let mut l1 = L1Cache::new(SchemeKind::EightT, fmap);
        let mut l2 = L2Cache::dsn();
        l1.read(addr(0, 1, 0), &mut l2);
        assert_eq!(l1.read(addr(0, 1, 0), &mut l2).source, ServedFrom::L1);
        assert_eq!(l1.extra_hit_cycles(), 1);
    }
}
