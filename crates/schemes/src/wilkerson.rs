//! Wilkerson-style word-disable pairing analysis (ISCA 2008, paper §III-B).
//!
//! Word-disable combines two consecutive cache lines into one effective
//! line: each word position is served by whichever physical line is
//! fault-free there. The scheme fails outright when both lines of a pair
//! are defective at the same word position — a *collision*. The paper
//! notes the unsupplemented scheme "cannot achieve 99.9 % chip yield below
//! 480 mV", which is why the evaluation grants it the simple-word-disable
//! supplement (`Wilkerson⁺`).

use rand::rngs::StdRng;
use rand::SeedableRng;

use dvs_sram::{montecarlo::trial_seed, CacheGeometry, FaultMap, FrameId};

/// The collision mask of the pair `(set, 2·eff_way)` / `(set,
/// 2·eff_way + 1)`: bit `i` is set when **both** physical frames are
/// defective at word `i`, i.e. the pair cannot serve that word at all.
/// One AND of the two frames' packed fault patterns.
pub fn pair_collision_pattern(fmap: &FaultMap, set: u32, eff_way: u32) -> u32 {
    fmap.frame_fault_pattern(FrameId::new(set, 2 * eff_way))
        & fmap.frame_fault_pattern(FrameId::new(set, 2 * eff_way + 1))
}

/// Whether the pair `(set, 2·eff_way)` / `(set, 2·eff_way + 1)` can serve
/// `word`: at least one of the two physical frames is fault-free there.
pub fn pair_word_usable(fmap: &FaultMap, set: u32, eff_way: u32, word: u32) -> bool {
    pair_collision_pattern(fmap, set, eff_way) & (1 << word) == 0
}

/// Whether every pair in the cache is collision-free — the condition for
/// the *unsupplemented* word-disable scheme to guarantee architecturally
/// correct execution on this die.
///
/// # Panics
///
/// Panics if the fault map's way count is odd.
pub fn cache_is_pairable(fmap: &FaultMap) -> bool {
    let geom = fmap.geometry();
    assert!(
        geom.ways().is_multiple_of(2),
        "pairing requires an even way count"
    );
    (0..geom.sets())
        .all(|set| (0..geom.ways() / 2).all(|e| pair_collision_pattern(fmap, set, e) == 0))
}

/// Monte-Carlo estimate of the unsupplemented scheme's chip yield: the
/// fraction of sampled fault maps with no pair collision anywhere.
///
/// Reproduces the paper's observation that Wilkerson's word disable alone
/// cannot reach the 99.9 % yield target at low voltage.
pub fn pairable_yield(geom: &CacheGeometry, p_word: f64, trials: u64, seed: u64) -> f64 {
    let ok = (0..trials)
        .filter(|&t| {
            let mut rng = StdRng::seed_from_u64(trial_seed(seed, t));
            cache_is_pairable(&FaultMap::sample(geom, p_word, &mut rng))
        })
        .count();
    ok as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_sram::{MilliVolts, PfailModel};

    fn geom() -> CacheGeometry {
        CacheGeometry::dsn_l1()
    }

    #[test]
    fn fault_free_cache_is_pairable() {
        assert!(cache_is_pairable(&FaultMap::fault_free(&geom())));
    }

    #[test]
    fn single_fault_never_collides() {
        let mut fmap = FaultMap::fault_free(&geom());
        fmap.set_faulty(FrameId::new(3, 0), 5, true);
        assert!(cache_is_pairable(&fmap));
        assert!(pair_word_usable(&fmap, 3, 0, 5));
    }

    #[test]
    fn collision_detected() {
        let mut fmap = FaultMap::fault_free(&geom());
        fmap.set_faulty(FrameId::new(3, 0), 5, true);
        fmap.set_faulty(FrameId::new(3, 1), 5, true);
        assert!(!pair_word_usable(&fmap, 3, 0, 5));
        assert!(!cache_is_pairable(&fmap));
        // The neighbouring pair is unaffected.
        assert!(pair_word_usable(&fmap, 3, 1, 5));
        assert_eq!(pair_collision_pattern(&fmap, 3, 0), 1 << 5);
        assert_eq!(pair_collision_pattern(&fmap, 3, 1), 0);
    }

    /// The packed collision mask agrees with per-word pair queries built
    /// from the retained per-bit reference pattern.
    #[test]
    fn collision_mask_matches_per_word_reference() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = geom();
        let fmap = FaultMap::sample(&g, 0.3, &mut StdRng::seed_from_u64(11));
        for set in 0..g.sets() {
            for e in 0..g.ways() / 2 {
                let mask = pair_collision_pattern(&fmap, set, e);
                let a = FrameId::new(set, 2 * e);
                let b = FrameId::new(set, 2 * e + 1);
                for w in 0..g.words_per_block() {
                    let collide = fmap.frame_fault_pattern_reference(a) & (1 << w) != 0
                        && fmap.frame_fault_pattern_reference(b) & (1 << w) != 0;
                    assert_eq!(mask & (1 << w) != 0, collide, "set {set} pair {e} word {w}");
                }
            }
        }
    }

    #[test]
    fn yield_collapses_at_low_voltage() {
        // The paper: unsupplemented word-disable misses the 99.9 % yield
        // target below 480 mV.
        let model = PfailModel::dsn45();
        let y480 = pairable_yield(&geom(), model.pfail_word(MilliVolts::new(480)), 40, 1);
        let y400 = pairable_yield(&geom(), model.pfail_word(MilliVolts::new(400)), 40, 1);
        assert!(y480 < 0.999, "480 mV yield {y480} unexpectedly high");
        assert!(y400 <= y480, "yield must degrade with voltage");
        assert!(y400 < 0.05, "400 mV yield {y400} should be near zero");
    }

    #[test]
    fn yield_is_high_at_moderate_defect_rates() {
        let y = pairable_yield(&geom(), 1e-4, 50, 2);
        assert!(y > 0.9, "yield {y} at p_word=1e-4");
    }
}
