//! The bounded model checker rediscovering two real bugs from this
//! repository's history, from their pre-fix code shapes.
//!
//! Both bugs were originally found (and fixed) during the differential-
//! oracle work: the FFW window mask overflowed at full-width windows,
//! and `invalidate_all` left stale LRU recency behind. Here each pre-fix
//! shape is reconstructed as a model and handed to the bounded checker,
//! which must find a counterexample — and the fixed code must pass the
//! same exhaustive check. The shrunk counterexamples double as the
//! regression documentation the ISSUE asks for.

use dvs_cache::LruQueue;
use dvs_diff::bounded::{check_lru_reset, check_window_function, tiny_geometry, LruModel};
use dvs_schemes::ffw::window_pattern;

/// The pre-fix window mask shape: `(1u32 << len) - 1`, written with
/// wrapping ops so the model is total. At `len == 32` the shift wraps to
/// `1` and the mask collapses to `0` — a full-width (fault-free) frame
/// would store an *empty* window and word-miss on every access.
fn buggy_window_pattern(window_len: u32, words_per_block: u32, focus: u32) -> u32 {
    let len = window_len.min(words_per_block);
    if len == 0 {
        return 0;
    }
    let half = (len - 1) / 2;
    let start = focus.saturating_sub(half).min(words_per_block - len);
    // Pre-fix mask; the fix is `u32::MAX >> (32 - len)`.
    1u32.wrapping_shl(len).wrapping_sub(1).wrapping_shl(start)
}

#[test]
fn bounded_check_rediscovers_the_ffw_window_mask_overflow() {
    let v = check_window_function(&buggy_window_pattern, 32)
        .expect("the pre-fix mask must fail exhaustive domain checking");
    // The counterexample is exactly the overflow point: a full-width
    // window in a 32-word block.
    assert!(v.detail.contains("len=32"), "{}", v.detail);
    assert!(
        v.detail.contains("holds 0 words, expected 32"),
        "{}",
        v.detail
    );
    let d = v.to_diagnostic();
    assert_eq!(d.lint, "verify/bounded-model");
}

#[test]
fn fixed_window_pattern_passes_the_same_exhaustive_check() {
    // Counterexample from `bounded_check_rediscovers_the_ffw_window_mask
    // _overflow`, pinned: the fixed mask keeps all 32 words.
    assert_eq!(window_pattern(32, 32, 16).count_ones(), 32);
    for wpb in [8, 16, 32] {
        assert!(check_window_function(&window_pattern, wpb).is_none());
    }
}

/// The pre-fix `invalidate_all` shape: validity cleared, recency order
/// untouched — `reset()` was never called.
struct StaleOrderLru(LruQueue);

impl LruModel for StaleOrderLru {
    fn touch(&mut self, way: u32) {
        self.0.touch(way);
    }
    fn reset(&mut self) {
        // Pre-fix shape: the flush forgot the replacement state.
    }
    fn rank(&self, way: u32) -> u32 {
        self.0.rank(way)
    }
}

#[test]
fn bounded_check_rediscovers_the_stale_lru_after_invalidate() {
    let v = check_lru_reset(&|ways| StaleOrderLru(LruQueue::new(ways)), 2, 3)
        .expect("a reset that keeps recency order must fail freshness");
    // Minimal shape: one touch perturbs the order, one reset should
    // restore it and (buggily) does not.
    assert!(v.detail.contains("Touch(1), Reset"), "{}", v.detail);
}

#[test]
fn fixed_lru_queue_passes_the_same_exhaustive_check() {
    for ways in [2, 4] {
        assert!(check_lru_reset(&LruQueue::new, ways, 4).is_none());
    }
}

#[test]
fn bounded_suite_proves_the_shipping_schemes_to_depth_four() {
    let diags = dvs_diff::bounded_suite(4);
    assert!(diags.is_empty(), "{diags:?}");
    let _ = tiny_geometry();
}
