//! End-to-end oracle families that drive the real `Evaluator`: clean-map
//! equivalence at 760 mV over a real bench10 workload, and persistence
//! identity (plain vs store-backed vs store-reloaded vs recorder-on).
//!
//! These run one small benchmark each to keep tier-1 fast; the `dvs-diff`
//! CLI sweeps all ten in CI. Clean equivalence runs once per fault model:
//! at a yield-clean operating point every injection backend must sample
//! an empty map and reproduce the defect-free run.

use dvs_diff::oracles;
use dvs_sram::FaultModel;
use dvs_workloads::Benchmark;

#[test]
fn evaluator_clean_equivalence_holds_at_760mv_under_every_model() {
    for model in FaultModel::ALL {
        let diags = oracles::evaluator_clean_equivalence(&[Benchmark::Crc32], 42, model);
        // Denies mean a scheme diverged from defect-free on clean maps; a
        // warn would mean the 760 mV map sampled a defect (possible but
        // vanishingly rare — surface it rather than hiding a skipped trial).
        assert_eq!(diags, Vec::new(), "diverged under {}", model.name());
    }
}

#[test]
fn persistence_never_changes_results() {
    // A 1-byte store cap forces an eviction after every save, so the
    // capped variants run the sweep's second cell against a store that
    // just evicted its first — the worst case for eviction determinism.
    let diags = oracles::persistence_identity(Benchmark::Adpcm, 42, FaultModel::Iid, Some(1));
    assert_eq!(diags, Vec::new());
}

#[test]
fn persistence_never_changes_results_under_correlated_faults() {
    // The correlated path threads per-word multipliers through the arena's
    // incremental chain reuse; warm and cold caches must still agree.
    let diags =
        oracles::persistence_identity(Benchmark::Adpcm, 43, FaultModel::row_column(), Some(1));
    assert_eq!(diags, Vec::new());
}
