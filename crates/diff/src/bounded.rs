//! Bounded exhaustive model checking of the scheme state machines.
//!
//! The differential oracles sample random access streams; this module
//! instead enumerates **every** access sequence up to a depth bound over
//! a tiny cache geometry and checks machine invariants on each:
//!
//! * **LRU stack** — on a clean map, a read hits the L1 exactly when its
//!   block is among the last `ways` distinct blocks of its set touched
//!   since the last flush (the stack property of true LRU).
//! * **Inclusion** — a read served from the L1 must target a block some
//!   earlier read brought in since the last flush; data cannot
//!   materialise out of an invalidated cache.
//! * **Clean-map equivalence** — on a fault-free map, a scheme's
//!   observable behaviour is identical to the conventional cache's
//!   (the paper's §IV baseline claim), here proven exhaustively to the
//!   depth bound rather than sampled.
//! * **Timing-speculation contract** — TS Cache serves every L1 hit
//!   speculatively, so a hit on a defective word must pay the checker's
//!   replay penalty and a hit on a clean word must not; reads served
//!   from deeper levels never replay ([`ts_replay_violation`]).
//! * **Reset freshness** of the LRU replacement queue, and shape
//!   invariants of the FFW window-pattern function, checked over their
//!   whole (tiny) input domains. These two domains are exactly where the
//!   pre-fix window-mask overflow and the stale-LRU-after-invalidate
//!   bugs lived; [`check_window_function`] and [`check_lru_reset`]
//!   rediscover both from their pre-fix code shapes (see the crate's
//!   `bounded_model` integration tests).
//!
//! A failing sequence is reduced through the [`crate::shrink::ddmin`]
//! shrinker and reported as a [`Violation`] that renders into a
//! ready-to-paste `#[test]` and into a `verify/bounded-model` deny
//! [`Diagnostic`] for the `dvs-verify` CLI.

use std::collections::HashSet;

use dvs_cache::{Addr, L2Cache, LruQueue};
use dvs_linker::{lint_ids, Diagnostic, Location};
use dvs_schemes::{L1Cache, SchemeKind, ServedFrom};
use dvs_sram::{CacheGeometry, FaultMap, FrameId};

use crate::shrink::ddmin;
use crate::stream::Event;

/// The L2 behind every bounded-checking machine: 4 KB, same block size
/// as [`tiny_geometry`]. The invariants under check are L1 properties —
/// both sides of every comparison see the same L2 model, so a small one
/// keeps the per-sequence machine construction (the hot loop of the
/// exhaustive enumeration) cheap.
fn tiny_l2() -> L2Cache {
    L2Cache::new(CacheGeometry::new(4096, 8, 32).expect("tiny L2 geometry is valid"))
}

/// One step of a bounded-checking run: the two access kinds plus the
/// whole-cache flush that voltage/mode switches perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load from the byte address.
    Read(u64),
    /// Store to the byte address.
    Write(u64),
    /// Flush the L1 (`L1Cache::invalidate_all`).
    InvalidateAll,
}

/// A shrunk invariant violation found by bounded checking.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant failed (`lru-stack`, `inclusion`,
    /// `clean-map-equivalence`, `window-function`, `lru-reset`).
    pub invariant: &'static str,
    /// Minimal op sequence exhibiting the failure (empty for the pure
    /// input-domain checks).
    pub ops: Vec<Op>,
    /// Linear fault indices of the map in force (empty = clean).
    pub faults: Vec<u32>,
    /// What went wrong at the failing step.
    pub detail: String,
}

impl Violation {
    /// The violation as a deny-severity `verify/bounded-model` finding.
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::deny(
            lint_ids::VERIFY_BOUNDED_MODEL,
            Location::Image,
            format!(
                "{} invariant violated: {} (ops: {})",
                self.invariant,
                self.detail,
                render_ops(&self.ops)
            ),
        )
    }

    /// Renders the violation as a ready-to-paste `#[test]` asserting the
    /// invariant holds on the shrunk sequence — a regression guard that
    /// passes once the underlying bug is fixed. `kind_expr` and
    /// `geom_expr` are Rust expressions; `checker` names the
    /// per-sequence evaluator to call (e.g. `lru_stack_violation`).
    pub fn render_test(&self, name: &str, kind_expr: &str, geom_expr: &str) -> String {
        let checker = match self.invariant {
            "lru-stack" => "lru_stack_violation",
            "inclusion" => "inclusion_violation",
            "ts-replay" => "ts_replay_violation",
            _ => "clean_equivalence_violation_named",
        };
        let map = if self.faults.is_empty() {
            format!("FaultMap::fault_free(&{geom_expr})")
        } else {
            let list: Vec<String> = self.faults.iter().map(u32::to_string).collect();
            format!(
                "FaultMap::from_faulty_indices(&{geom_expr}, [{}])",
                list.join(", ")
            )
        };
        format!(
            "/// Shrunk by the bounded model checker: {detail}\n\
             #[test]\n\
             fn {name}() {{\n\
             \x20   use dvs_diff::bounded::{{{checker}, Op}};\n\
             \x20   use dvs_schemes::SchemeKind;\n\
             \x20   use dvs_sram::{{CacheGeometry, FaultMap}};\n\
             \n\
             \x20   let fmap = {map};\n\
             \x20   let ops = {ops};\n\
             \x20   assert_eq!({checker}({kind_expr}, &fmap, &ops), None);\n\
             }}\n",
            detail = self.detail,
            ops = render_ops(&self.ops),
        )
    }
}

fn render_ops(ops: &[Op]) -> String {
    let items: Vec<String> = ops
        .iter()
        .map(|op| match op {
            Op::Read(a) => format!("Op::Read({a:#x})"),
            Op::Write(a) => format!("Op::Write({a:#x})"),
            Op::InvalidateAll => "Op::InvalidateAll".to_string(),
        })
        .collect();
    format!("vec![{}]", items.join(", "))
}

/// The bounded-checking geometry: 2 sets × 2 ways × 32 B blocks (32
/// words). Small enough that every sequence to depth 5–6 over
/// [`op_alphabet`] runs in milliseconds, yet it exercises conflict
/// eviction, multi-set indexing and every word of an 8-word block.
pub fn tiny_geometry() -> CacheGeometry {
    CacheGeometry::new(128, 2, 32).expect("tiny geometry is valid")
}

/// The op alphabet the bounded checkers enumerate over: `ways + 1`
/// conflicting blocks of set 0 (forcing evictions), one block of set 1,
/// a faulty-word probe, a store, and the flush.
pub fn op_alphabet(geom: &CacheGeometry) -> Vec<Op> {
    let bb = u64::from(geom.block_bytes());
    let sets = u64::from(geom.sets());
    let mut ops = Vec::new();
    // Blocks 0, sets, 2·sets … all alias set 0.
    for i in 0..=u64::from(geom.ways()) {
        ops.push(Op::Read(i * sets * bb));
    }
    ops.push(Op::Read(bb)); // block 1 → set 1
    ops.push(Op::Read(4)); // word 1 of block 0 (distinct word offset)
    ops.push(Op::Write(0));
    ops.push(Op::InvalidateAll);
    ops
}

fn step(l1: &mut L1Cache, l2: &mut L2Cache, op: Op) -> Option<Event> {
    match op {
        Op::Read(a) => {
            let out = l1.read(Addr::new(a), l2);
            Some(Event::Read {
                source: out.source,
                l2_reads: out.l2_reads,
                latency: 0,
            })
        }
        Op::Write(a) => {
            let out = l1.write(Addr::new(a));
            Some(Event::Write {
                l1_updated: out.l1_updated,
            })
        }
        Op::InvalidateAll => {
            l1.invalidate_all();
            None
        }
    }
}

fn block_and_set(geom: &CacheGeometry, addr: u64) -> (u64, usize) {
    let block = addr / u64::from(geom.block_bytes());
    (block, (block % u64::from(geom.sets())) as usize)
}

/// Checks the LRU stack property of one sequence: a read hits the L1
/// exactly when its block is among the last `ways` distinct blocks of
/// its set touched since the last flush. Sound for schemes that keep
/// full associativity and serve every word of a present block —
/// conventional/8T always, and the word-level schemes on a clean map.
///
/// Returns `None` when the invariant holds, or a description of the
/// first failing step.
pub fn lru_stack_violation(kind: SchemeKind, fmap: &FaultMap, ops: &[Op]) -> Option<String> {
    let geom = *fmap.geometry();
    let mut l1 = L1Cache::new(kind, fmap.clone());
    let mut l2 = tiny_l2();
    let mut stacks: Vec<Vec<u64>> = vec![Vec::new(); geom.sets() as usize];
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Read(a) => {
                let (block, set) = block_and_set(&geom, a);
                let predicted = stacks[set].contains(&block);
                let out = l1.read(Addr::new(a), &mut l2);
                let actual = out.source == ServedFrom::L1;
                if actual != predicted {
                    return Some(format!(
                        "step {i}: read of {a:#x} {} but the LRU stack model predicts {}",
                        if actual { "hit" } else { "missed" },
                        if predicted { "a hit" } else { "a miss" },
                    ));
                }
                stacks[set].retain(|&b| b != block);
                stacks[set].insert(0, block);
                stacks[set].truncate(geom.ways() as usize);
            }
            Op::Write(a) => {
                // A store's lookup touches the LRU when the block is
                // present; it never allocates.
                let (block, set) = block_and_set(&geom, a);
                l1.write(Addr::new(a));
                if stacks[set].contains(&block) {
                    stacks[set].retain(|&b| b != block);
                    stacks[set].insert(0, block);
                }
            }
            Op::InvalidateAll => {
                l1.invalidate_all();
                stacks.iter_mut().for_each(Vec::clear);
            }
        }
    }
    None
}

/// Checks the inclusion property of one sequence: a read served from the
/// L1 must target a block some earlier read fetched since the last
/// flush. Sound for **every** scheme — stores never allocate and a
/// flush empties the tag array, so L1-resident data always traces back
/// to a fetch.
pub fn inclusion_violation(kind: SchemeKind, fmap: &FaultMap, ops: &[Op]) -> Option<String> {
    let geom = *fmap.geometry();
    let mut l1 = L1Cache::new(kind, fmap.clone());
    let mut l2 = tiny_l2();
    let mut fetched: HashSet<u64> = HashSet::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Read(a) => {
                let (block, _) = block_and_set(&geom, a);
                let out = l1.read(Addr::new(a), &mut l2);
                if out.source == ServedFrom::L1 && !fetched.contains(&block) {
                    return Some(format!(
                        "step {i}: read of {a:#x} served from L1 but block {block} was never \
                         fetched since the last flush"
                    ));
                }
                fetched.insert(block);
            }
            Op::Write(a) => {
                l1.write(Addr::new(a));
            }
            Op::InvalidateAll => {
                l1.invalidate_all();
                fetched.clear();
            }
        }
    }
    None
}

/// Checks clean-map equivalence of one sequence: on the fault-free map
/// over `fmap`'s geometry, `kind`'s observable behaviour (hit source,
/// L2 traffic, store outcome) must match the conventional cache's step
/// for step. Sound for the word-level and disabling schemes; capacity-
/// halving and direct-mapped schemes (Wilkerson+, BBR) genuinely differ.
pub fn clean_equivalence_violation(
    kind: SchemeKind,
    fmap: &FaultMap,
    ops: &[Op],
) -> Option<String> {
    let clean = FaultMap::fault_free(fmap.geometry());
    let mut subject = L1Cache::new(kind, clean.clone());
    let mut baseline = L1Cache::new(SchemeKind::Conventional, clean);
    let mut l2_subject = tiny_l2();
    let mut l2_baseline = tiny_l2();
    for (i, &op) in ops.iter().enumerate() {
        let a = step(&mut subject, &mut l2_subject, op);
        let b = step(&mut baseline, &mut l2_baseline, op);
        if a != b {
            return Some(format!(
                "step {i} ({op:?}): {} produced {a:?} but the conventional baseline produced {b:?}",
                kind.name()
            ));
        }
    }
    None
}

/// Checks the timing-speculation contract of one sequence: an L1-served
/// read pays the checker's replay penalty exactly when the word it
/// returns is defective — no defective word is ever consumed unchecked,
/// and clean words never pay the penalty. Reads served from the L2 or
/// memory go through the full-latency path and must carry no replay
/// cycles, and the replay counter must agree with the per-read outcomes.
///
/// The serving way is not externally observable, so the per-read claim
/// is decided only where it is decidable: word offsets whose defect
/// status is uniform across every way of the addressed set (mixed
/// offsets still participate in the source and counter checks).
///
/// `kind` is the scheme under test — [`SchemeKind::TsCache`] passes; an
/// unprotected scheme (e.g. conventional) fails the moment it serves a
/// defective word without replay, which is how the suite proves this
/// checker has teeth.
pub fn ts_replay_violation(kind: SchemeKind, fmap: &FaultMap, ops: &[Op]) -> Option<String> {
    let geom = *fmap.geometry();
    let mut l1 = L1Cache::new(kind, fmap.clone());
    let mut l2 = tiny_l2();
    let mut replayed_reads = 0u64;
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Read(a) => {
                let (_, set) = block_and_set(&geom, a);
                let word = (a % u64::from(geom.block_bytes()) / 4) as u32;
                let out = l1.read(Addr::new(a), &mut l2);
                if out.replay_cycles > 0 {
                    replayed_reads += 1;
                }
                if out.source != ServedFrom::L1 {
                    if out.replay_cycles != 0 {
                        return Some(format!(
                            "step {i}: read of {a:#x} served from {:?} carries \
                             {} replay cycle(s); only L1 hits replay",
                            out.source, out.replay_cycles,
                        ));
                    }
                    continue;
                }
                let faulty_ways = (0..geom.ways())
                    .filter(|&way| {
                        fmap.frame_fault_pattern(FrameId::new(set as u32, way)) & (1 << word) != 0
                    })
                    .count() as u32;
                if faulty_ways == geom.ways() && out.replay_cycles == 0 {
                    return Some(format!(
                        "step {i}: read of {a:#x} (set {set}, word {word}) was served \
                         from the L1 with no replay, but every way holds a defective \
                         copy of that word — a defective word was consumed unchecked",
                    ));
                }
                if faulty_ways == 0 && out.replay_cycles != 0 {
                    return Some(format!(
                        "step {i}: read of {a:#x} (set {set}, word {word}) paid {} \
                         replay cycle(s) but no way of the set is defective there",
                        out.replay_cycles,
                    ));
                }
            }
            Op::Write(a) => {
                l1.write(Addr::new(a));
            }
            Op::InvalidateAll => {
                l1.invalidate_all();
            }
        }
    }
    if l1.stats().replays != replayed_reads {
        return Some(format!(
            "replay counter disagrees with the per-read outcomes: stats say {} \
             but {replayed_reads} read(s) carried replay cycles",
            l1.stats().replays,
        ));
    }
    None
}

/// Bounded-exhaustively checks the timing-speculation contract of `kind`
/// over `fmap` to `depth` (see [`ts_replay_violation`]).
pub fn check_ts_replay(kind: SchemeKind, fmap: &FaultMap, depth: usize) -> Option<Violation> {
    machine_violation("ts-replay", kind, fmap, depth, &|ops| {
        ts_replay_violation(kind, fmap, ops)
    })
}

/// [`clean_equivalence_violation`] — alias so rendered tests read
/// uniformly (`checker(kind, &fmap, &ops)`).
pub fn clean_equivalence_violation_named(
    kind: SchemeKind,
    fmap: &FaultMap,
    ops: &[Op],
) -> Option<String> {
    clean_equivalence_violation(kind, fmap, ops)
}

/// Enumerates **every** sequence of length `depth` over `alphabet`
/// (shorter sequences are covered as prefixes — the evaluators check
/// every step) and returns the first violation, ddmin-shrunk to a
/// minimal failing subsequence.
pub fn check_sequences(
    alphabet: &[Op],
    depth: usize,
    eval: &dyn Fn(&[Op]) -> Option<String>,
) -> Option<(Vec<Op>, String)> {
    assert!(!alphabet.is_empty(), "empty op alphabet");
    let mut odometer = vec![0usize; depth];
    let mut ops: Vec<Op> = Vec::with_capacity(depth);
    loop {
        ops.clear();
        ops.extend(odometer.iter().map(|&i| alphabet[i]));
        if eval(&ops).is_some() {
            let shrunk = ddmin(&ops, &|xs| eval(xs).is_some());
            let detail = eval(&shrunk).unwrap_or_default();
            return Some((shrunk, detail));
        }
        let mut pos = 0;
        loop {
            if pos == depth {
                return None;
            }
            odometer[pos] += 1;
            if odometer[pos] < alphabet.len() {
                break;
            }
            odometer[pos] = 0;
            pos += 1;
        }
    }
}

fn machine_violation(
    invariant: &'static str,
    kind: SchemeKind,
    fmap: &FaultMap,
    depth: usize,
    eval: &dyn Fn(&[Op]) -> Option<String>,
) -> Option<Violation> {
    let alphabet = op_alphabet(fmap.geometry());
    check_sequences(&alphabet, depth, eval).map(|(ops, detail)| Violation {
        invariant,
        ops,
        faults: fmap.iter_faulty_linear().collect(),
        detail: format!("[{}] {detail}", kind.name()),
    })
}

/// Bounded-exhaustively checks the LRU stack property of `kind` over
/// `fmap` to `depth` (see [`lru_stack_violation`] for soundness).
pub fn check_lru_stack(kind: SchemeKind, fmap: &FaultMap, depth: usize) -> Option<Violation> {
    machine_violation("lru-stack", kind, fmap, depth, &|ops| {
        lru_stack_violation(kind, fmap, ops)
    })
}

/// Bounded-exhaustively checks the inclusion property of `kind` over
/// `fmap` to `depth`.
pub fn check_inclusion(kind: SchemeKind, fmap: &FaultMap, depth: usize) -> Option<Violation> {
    machine_violation("inclusion", kind, fmap, depth, &|ops| {
        inclusion_violation(kind, fmap, ops)
    })
}

/// Bounded-exhaustively checks clean-map equivalence of `kind` against
/// the conventional baseline to `depth`.
pub fn check_clean_equivalence(
    kind: SchemeKind,
    geom: &CacheGeometry,
    depth: usize,
) -> Option<Violation> {
    let clean = FaultMap::fault_free(geom);
    machine_violation("clean-map-equivalence", kind, &clean, depth, &|ops| {
        clean_equivalence_violation(kind, &clean, ops)
    })
}

/// Exhaustively checks a window-pattern function over its whole domain
/// (`window_len` 0..=`words_per_block` × every focus word): the pattern
/// must hold exactly `min(len, wpb)` words, be contiguous, and stay
/// within the block.
///
/// `dvs_schemes::ffw::window_pattern` passes; the pre-fix shape
/// (`(1u32 << len) - 1` built with wrapping arithmetic) fails at
/// `len == 32` — the overflow that zeroed full-width windows before the
/// `window_mask` fix.
pub fn check_window_function(
    pattern_of: &dyn Fn(u32, u32, u32) -> u32,
    words_per_block: u32,
) -> Option<Violation> {
    for len in 0..=words_per_block {
        for focus in 0..words_per_block {
            let pattern = pattern_of(len, words_per_block, focus);
            let expect = len.min(words_per_block);
            let fail = |why: String| {
                Some(Violation {
                    invariant: "window-function",
                    ops: Vec::new(),
                    faults: Vec::new(),
                    detail: format!(
                        "window_pattern(len={len}, wpb={words_per_block}, focus={focus}) = \
                         {pattern:#b}: {why}"
                    ),
                })
            };
            if pattern.count_ones() != expect {
                return fail(format!(
                    "holds {} words, expected {expect}",
                    pattern.count_ones()
                ));
            }
            if pattern != 0 {
                let shifted = pattern >> pattern.trailing_zeros();
                if shifted & shifted.wrapping_add(1) != 0 {
                    return fail("not contiguous".to_string());
                }
            }
            if words_per_block < 32 && pattern >> words_per_block != 0 {
                return fail("escapes the block".to_string());
            }
        }
    }
    None
}

/// An LRU replacement machine under bounded checking: the real
/// [`LruQueue`] and any buggy model shape under study.
pub trait LruModel {
    /// Marks `way` most recently used.
    fn touch(&mut self, way: u32);
    /// Returns the machine to its initial state (what `invalidate_all`
    /// relies on).
    fn reset(&mut self);
    /// Recency rank of `way` (0 = most recent).
    fn rank(&self, way: u32) -> u32;
}

impl LruModel for LruQueue {
    fn touch(&mut self, way: u32) {
        LruQueue::touch(self, way);
    }
    fn reset(&mut self) {
        LruQueue::reset(self);
    }
    fn rank(&self, way: u32) -> u32 {
        LruQueue::rank(self, way)
    }
}

/// One step of the LRU-machine alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LruOp {
    /// Touch a way.
    Touch(u32),
    /// Reset the machine.
    Reset,
}

/// Checks **reset freshness** of an LRU machine, bounded-exhaustively:
/// after any op sequence, the machine's recency ranks must equal those
/// of a fresh machine replaying only the ops since the last reset.
///
/// The real [`LruQueue`] passes. The pre-fix shape — `invalidate_all`
/// clearing validity but leaving the recency order untouched (no
/// `reset()`) — fails on the two-op sequence `[Touch(1), Reset]`: the
/// stale machine still ranks way 1 most recent.
pub fn check_lru_reset<M: LruModel>(
    make: &dyn Fn(u32) -> M,
    ways: u32,
    depth: usize,
) -> Option<Violation> {
    let mut alphabet: Vec<LruOp> = (0..ways).map(LruOp::Touch).collect();
    alphabet.push(LruOp::Reset);
    let eval = |ops: &[LruOp]| -> Option<String> {
        let mut machine = make(ways);
        let mut suffix: Vec<u32> = Vec::new();
        for (i, &op) in ops.iter().enumerate() {
            match op {
                LruOp::Touch(w) => {
                    machine.touch(w);
                    suffix.push(w);
                }
                LruOp::Reset => {
                    machine.reset();
                    suffix.clear();
                }
            }
            let mut fresh = make(ways);
            for &w in &suffix {
                fresh.touch(w);
            }
            for w in 0..ways {
                if machine.rank(w) != fresh.rank(w) {
                    return Some(format!(
                        "step {i}: way {w} ranks {} but a fresh replay of the post-reset \
                         suffix ranks it {}",
                        machine.rank(w),
                        fresh.rank(w)
                    ));
                }
            }
        }
        None
    };
    // Same odometer as `check_sequences`, over the LRU alphabet.
    let mut odometer = vec![0usize; depth];
    let mut ops: Vec<LruOp> = Vec::with_capacity(depth);
    loop {
        ops.clear();
        ops.extend(odometer.iter().map(|&i| alphabet[i]));
        if eval(&ops).is_some() {
            let shrunk = ddmin(&ops, &|xs| eval(xs).is_some());
            let detail = eval(&shrunk).unwrap_or_default();
            return Some(Violation {
                invariant: "lru-reset",
                ops: Vec::new(),
                faults: Vec::new(),
                detail: format!("{detail}; sequence: {shrunk:?}"),
            });
        }
        let mut pos = 0;
        loop {
            if pos == depth {
                return None;
            }
            odometer[pos] += 1;
            if odometer[pos] < alphabet.len() {
                break;
            }
            odometer[pos] = 0;
            pos += 1;
        }
    }
}

/// Every scheme the clean-map-equivalence invariant covers (the same
/// family the sampling oracle in [`crate::oracles`] compares).
pub fn clean_equivalent_kinds() -> Vec<SchemeKind> {
    vec![
        SchemeKind::EightT,
        SchemeKind::SimpleWordDisable,
        SchemeKind::Ffw,
        SchemeKind::fba(),
        SchemeKind::idc(),
        SchemeKind::WordSubstitution,
        SchemeKind::LineDisable,
        SchemeKind::WayDisable,
        SchemeKind::TsCache,
    ]
}

/// Runs the whole bounded-checking suite to `depth` over the tiny
/// geometry and returns every violation as a `verify/bounded-model`
/// deny diagnostic (empty = all invariants proven to the bound).
pub fn bounded_suite(depth: usize) -> Vec<Diagnostic> {
    use dvs_schemes::ffw::window_pattern;

    let geom = tiny_geometry();
    let clean = FaultMap::fault_free(&geom);
    // Word 1 of frame (0,0) and word 1 of frame (1,1) defective — hits
    // both the direct probe word and an eviction path.
    let faulty = FaultMap::from_faulty_indices(&geom, [1, 25]);
    let mut out = Vec::new();
    for kind in [
        SchemeKind::Conventional,
        SchemeKind::EightT,
        SchemeKind::SimpleWordDisable,
        SchemeKind::Ffw,
        SchemeKind::TsCache,
    ] {
        out.extend(
            check_lru_stack(kind, &clean, depth)
                .iter()
                .map(Violation::to_diagnostic),
        );
    }
    for kind in [
        SchemeKind::Conventional,
        SchemeKind::SimpleWordDisable,
        SchemeKind::Ffw,
        SchemeKind::Fba { entries: 2 },
        SchemeKind::WilkersonPlus,
        SchemeKind::LineDisable,
        SchemeKind::WayDisable,
        SchemeKind::Bbr,
        SchemeKind::TsCache,
    ] {
        for fmap in [&clean, &faulty] {
            out.extend(
                check_inclusion(kind, fmap, depth)
                    .iter()
                    .map(Violation::to_diagnostic),
            );
        }
    }
    for kind in clean_equivalent_kinds() {
        out.extend(
            check_clean_equivalence(kind, &geom, depth)
                .iter()
                .map(Violation::to_diagnostic),
        );
    }
    // TS Cache's speculation contract: checked on the clean map, on the
    // mixed map above, and on a map where word 1 of set 0 is defective in
    // *both* ways — the configuration where "defective word consumed
    // unchecked" is externally decidable on every set-0 hit.
    let both_ways = FaultMap::from_faulty_indices(&geom, [1, 17]);
    for fmap in [&clean, &faulty, &both_ways] {
        out.extend(
            check_ts_replay(SchemeKind::TsCache, fmap, depth)
                .iter()
                .map(Violation::to_diagnostic),
        );
    }
    out.extend(
        check_window_function(&window_pattern, 32)
            .iter()
            .map(Violation::to_diagnostic),
    );
    out.extend(
        check_lru_reset(&LruQueue::new, geom.ways(), depth)
            .iter()
            .map(Violation::to_diagnostic),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_conflicts_within_set_zero() {
        let geom = tiny_geometry();
        let ops = op_alphabet(&geom);
        let reads: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Read(a) => Some(*a),
                _ => None,
            })
            .collect();
        // ways + 1 = 3 conflicting blocks in set 0.
        let set0 = reads
            .iter()
            .filter(|&&a| block_and_set(&geom, a).1 == 0)
            .count();
        assert!(set0 >= 3, "need enough conflicts to force evictions");
        assert!(ops.contains(&Op::InvalidateAll));
        assert!(ops.iter().any(|op| matches!(op, Op::Write(_))));
    }

    #[test]
    fn conventional_satisfies_lru_stack_to_depth_five() {
        let clean = FaultMap::fault_free(&tiny_geometry());
        assert!(check_lru_stack(SchemeKind::Conventional, &clean, 5).is_none());
    }

    #[test]
    fn all_schemes_satisfy_inclusion_on_a_faulty_map() {
        let faulty = FaultMap::from_faulty_indices(&tiny_geometry(), [1, 25]);
        for kind in [
            SchemeKind::Conventional,
            SchemeKind::SimpleWordDisable,
            SchemeKind::Ffw,
            SchemeKind::Fba { entries: 2 },
            SchemeKind::Bbr,
        ] {
            assert!(
                check_inclusion(kind, &faulty, 4).is_none(),
                "{kind:?} broke inclusion"
            );
        }
    }

    #[test]
    fn clean_equivalence_holds_for_the_word_level_family() {
        let geom = tiny_geometry();
        for kind in clean_equivalent_kinds() {
            assert!(
                check_clean_equivalence(kind, &geom, 4).is_none(),
                "{kind:?} diverged from the baseline on a clean map"
            );
        }
    }

    #[test]
    fn ts_cache_never_reads_a_defective_word_unchecked() {
        let geom = tiny_geometry();
        for faults in [vec![], vec![1, 25], vec![1, 17]] {
            let fmap = FaultMap::from_faulty_indices(&geom, faults.iter().copied());
            assert!(
                check_ts_replay(SchemeKind::TsCache, &fmap, 4).is_none(),
                "TS Cache broke the speculation contract on faults {faults:?}"
            );
        }
    }

    #[test]
    fn unchecked_speculation_is_caught_and_shrunk() {
        // Teeth: the conventional cache serves defective words without a
        // replay, so on a map where both ways of set 0 are defective at
        // word 1 the checker must find the unchecked read and ddmin must
        // shrink it to the single offending access.
        let geom = tiny_geometry();
        let both_ways = FaultMap::from_faulty_indices(&geom, [1, 17]);
        let v = check_ts_replay(SchemeKind::Conventional, &both_ways, 3)
            .expect("an unprotected cache must trip the speculation contract");
        assert!(v.detail.contains("consumed unchecked"), "{}", v.detail);
        assert!(v.ops.len() <= 2, "shrunk to {:?}", v.ops);
        let test = v.render_test(
            "shrunk_ts_replay_repro",
            "SchemeKind::Conventional",
            "dvs_diff::bounded::tiny_geometry()",
        );
        assert!(test.contains("ts_replay_violation"));
    }

    #[test]
    fn wilkerson_genuinely_breaks_clean_equivalence() {
        // Capacity halving is observable: the checker must find a
        // counterexample (proof the harness has teeth), and ddmin must
        // shrink it to a handful of ops.
        let geom = tiny_geometry();
        let v = check_clean_equivalence(SchemeKind::WilkersonPlus, &geom, 4)
            .expect("halved capacity must diverge within depth 4");
        assert!(v.ops.len() <= 4);
        assert!(v.detail.contains("Wilkerson+"));
    }

    #[test]
    fn planted_lru_bug_is_found_and_shrunk() {
        // A model machine whose reads never update recency (touch on
        // fill only): the stack property fails once an eviction depends
        // on a hit's recency update. The checker finds it and the
        // diagnostic renders.
        let clean = FaultMap::fault_free(&tiny_geometry());
        let eval = |ops: &[Op]| -> Option<String> {
            // Evaluate the stack model against a machine that drops
            // read-hit touches: replay through the real cache but
            // predict with a FIFO (insertion-order) model instead.
            let geom = *clean.geometry();
            let mut l1 = L1Cache::new(SchemeKind::Conventional, clean.clone());
            let mut l2 = tiny_l2();
            let mut fifo: Vec<Vec<u64>> = vec![Vec::new(); geom.sets() as usize];
            for (i, &op) in ops.iter().enumerate() {
                match op {
                    Op::Read(a) => {
                        let (block, set) = block_and_set(&geom, a);
                        let predicted = fifo[set].contains(&block);
                        let actual = l1.read(Addr::new(a), &mut l2).source == ServedFrom::L1;
                        if actual != predicted {
                            return Some(format!("step {i}: FIFO model diverged"));
                        }
                        if !predicted {
                            fifo[set].insert(0, block);
                            fifo[set].truncate(geom.ways() as usize);
                        }
                    }
                    Op::Write(a) => {
                        l1.write(Addr::new(a));
                    }
                    Op::InvalidateAll => {
                        l1.invalidate_all();
                        fifo.iter_mut().for_each(Vec::clear);
                    }
                }
            }
            None
        };
        let alphabet = op_alphabet(clean.geometry());
        let (ops, detail) =
            check_sequences(&alphabet, 5, &eval).expect("FIFO is not LRU: must diverge");
        // LRU vs FIFO needs a hit-reorder plus two evictions: at least 4 ops.
        assert!(ops.len() >= 4, "shrunk to {ops:?}");
        assert!(detail.contains("FIFO model diverged"));
    }

    #[test]
    fn window_function_passes_and_diagnostic_renders() {
        use dvs_schemes::ffw::window_pattern;
        assert!(check_window_function(&window_pattern, 32).is_none());
        assert!(check_window_function(&window_pattern, 8).is_none());
    }

    #[test]
    fn real_lru_queue_resets_fresh() {
        assert!(check_lru_reset(&LruQueue::new, 4, 4).is_none());
    }

    #[test]
    fn violation_renders_diagnostic_and_test() {
        let v = Violation {
            invariant: "lru-stack",
            ops: vec![Op::Read(0), Op::InvalidateAll, Op::Read(0)],
            faults: vec![3],
            detail: "step 2: read of 0x0 hit but the LRU stack model predicts a miss".into(),
        };
        let d = v.to_diagnostic();
        assert_eq!(d.lint, dvs_linker::lint_ids::VERIFY_BOUNDED_MODEL);
        assert!(d.message.contains("lru-stack"));
        assert!(d.message.contains("Op::InvalidateAll"));
        let test = v.render_test(
            "shrunk_lru_repro",
            "SchemeKind::Conventional",
            "dvs_diff::bounded::tiny_geometry()",
        );
        assert!(test.contains("fn shrunk_lru_repro()"));
        assert!(test.contains("lru_stack_violation"));
        assert!(test.contains("from_faulty_indices"));
        assert!(test.contains("Op::Read(0x0)"));
    }

    #[test]
    fn bounded_suite_is_clean_at_depth_four() {
        let diags = bounded_suite(4);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
