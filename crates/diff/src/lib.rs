//! Differential and metamorphic correctness harness for the
//! deep-voltage-scaling stack.
//!
//! The paper's results hinge on the fault-tolerance schemes behaving
//! *exactly* like a conventional cache when the fault map is clean and
//! degrading predictably as voltage drops (§IV–§V). This crate
//! cross-checks the whole stack with paired runs:
//!
//! * [`oracles`] — five equivalence families: clean-map equivalence
//!   (stream level and end-to-end through the evaluator), SA/DM mode
//!   agreement, persistence/observability identity over a two-voltage
//!   sweep, Wilkerson's documented capacity halving, and packed-vs-
//!   reference agreement of the word-packed hot-path queries.
//! * [`metamorphic`] — three invariant sweeps: voltage monotonicity of
//!   word misses under nested fault maps, FFW window growth containment,
//!   and miss-stability under fault addition.
//! * [`shrink`] — ddmin-style reduction of any failing (stream, map)
//!   pair to a minimal reproducer, rendered as a ready-to-paste
//!   `#[test]`.
//! * [`bounded`] — bounded exhaustive model checking: every access
//!   sequence to a depth bound over a tiny geometry, proving the LRU
//!   stack, inclusion, clean-map-equivalence and timing-speculation
//!   invariants of the scheme state machines, plus whole-domain checks
//!   of the FFW window function and LRU reset freshness. Counterexamples shrink through
//!   the same ddmin and render as tests.
//!
//! The `dvs-diff` binary (in `dvs-bench`) sweeps all of the above over
//! bench10 and the tier-1 voltages and exits non-zero on any deny
//! diagnostic, mirroring `dvs-lint`.
//!
//! # Example
//!
//! ```rust
//! use dvs_diff::{first_divergence, run_stream, synthetic_stream};
//! use dvs_schemes::SchemeKind;
//! use dvs_sram::{CacheGeometry, FaultMap};
//!
//! let clean = FaultMap::fault_free(&CacheGeometry::dsn_l1());
//! let stream = synthetic_stream(42, 200);
//! let conv = run_stream(SchemeKind::Conventional, &clean, &stream);
//! let wdis = run_stream(SchemeKind::SimpleWordDisable, &clean, &stream);
//! assert_eq!(first_divergence(&conv, &wdis), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod metamorphic;
pub mod oracles;
pub mod shrink;
pub mod stream;

pub use bounded::{bounded_suite, check_sequences, Op, Violation};
pub use shrink::{ddmin, render_fault_addition_test, render_pair_test, shrink_case, Case};
pub use stream::{
    first_behavioral_divergence, first_divergence, replays, run_stream, synthetic_stream,
    word_misses, Access, Event,
};
