//! The three metamorphic sweeps.
//!
//! Metamorphic invariants relate *pairs of runs under a known input
//! transformation* rather than a run to a golden model:
//!
//! 1. **Voltage monotonicity** — lowering Vcc along one fault chain
//!    grows the fault map (a [`dvs_sram::FaultChain`] only ever adds
//!    faults as `P_fail` rises, mirroring how the engine extends maps
//!    down the voltage ladder), and a larger fault set never reduces the
//!    word-miss count of a stateless word-presence policy.
//! 2. **Window growth** — growing `window_len` never shrinks the set of
//!    remappable offsets: `window_pattern(len) ⊆ window_pattern(len+1)`
//!    over the whole supported domain, for both placement policies.
//! 3. **Fault addition** — adding one fault to a map never turns a miss
//!    into a hit for the stateless word-presence schemes (word disable,
//!    BBR, Wilkerson). FFW is deliberately *not* swept here: its stored
//!    window is access-history dependent, and an extra fault can
//!    legitimately slide a window so a previously missing word becomes
//!    resident — see `ffw_counterexample_documents_the_scoping` for the
//!    three-access proof. FFW's invariant is the static containment of
//!    sweep 2.

use dvs_analysis::{Diagnostic, Location};
use dvs_core::DvfsPoint;
use dvs_schemes::ffw::{window_pattern, window_pattern_aligned};
use dvs_schemes::{SchemeKind, ServedFrom};
use dvs_sram::{CacheGeometry, FaultChain, FaultMap, FaultModel, MilliVolts};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::shrink::{render_fault_addition_test, shrink_case, Case};
use crate::stream::{replays, run_stream, synthetic_stream, word_misses, Event};

/// Lint identifier for voltage-monotonicity violations.
pub const LINT_VOLTAGE: &str = "diff/voltage-monotone";
/// Lint identifier for nested-map precondition violations.
pub const LINT_NESTED: &str = "diff/nested-maps";
/// Lint identifier for window-growth violations.
pub const LINT_WINDOW: &str = "diff/window-growth";
/// Lint identifier for fault-addition violations.
pub const LINT_FAULT_ADD: &str = "diff/fault-addition";

/// The stateless word-presence schemes the dynamic sweeps cover: their
/// tag-state trajectory is identical for every fault map (word misses
/// redirect to the L2 without touching replacement state), so per-access
/// hit/miss is a pure function of the fault set.
const STATELESS_KINDS: [(SchemeKind, &str); 3] = [
    (
        SchemeKind::SimpleWordDisable,
        "SchemeKind::SimpleWordDisable",
    ),
    (SchemeKind::Bbr, "SchemeKind::Bbr"),
    (SchemeKind::WilkersonPlus, "SchemeKind::WilkersonPlus"),
];

/// Sweep 1: over descending voltages along one fault chain, fault maps
/// must nest and word-miss counts must be non-decreasing.
///
/// `fault_model` selects the injection backend the chain samples under:
/// the nesting precondition and the monotonicity claim are model
/// obligations — every backend, i.i.d. or correlated, must satisfy them.
pub fn voltage_monotonicity(
    seed: u64,
    voltages_mv: &[u32],
    stream_len: usize,
    fault_model: FaultModel,
) -> Vec<Diagnostic> {
    let geom = CacheGeometry::dsn_l1();
    let mut voltages: Vec<u32> = voltages_mv.to_vec();
    voltages.sort_unstable_by(|a, b| b.cmp(a));
    voltages.dedup();
    let mut chain = FaultChain::with_model(&geom, seed, fault_model);
    let maps: Vec<(u32, FaultMap)> = voltages
        .iter()
        .map(|&mv| {
            let p = DvfsPoint::at(MilliVolts::new(mv))
                .pfail_word()
                .max(chain.p_current());
            chain.advance_to(p);
            (mv, chain.map().clone())
        })
        .collect();

    let mut diags = Vec::new();
    // Precondition: the chain only ever adds faults as the failure
    // probability rises, so fault sets nest by construction. If this
    // breaks, the monotonicity claim below is vacuous — report it as its
    // own violation.
    for pair in maps.windows(2) {
        let (hi_mv, hi) = &pair[0];
        let (lo_mv, lo) = &pair[1];
        if let Some(idx) = hi.iter_faulty_linear().find(|&i| !lo.linear_is_faulty(i)) {
            diags.push(Diagnostic::deny(
                LINT_NESTED,
                Location::Word { index: idx },
                format!(
                    "fault maps do not nest: word {idx} is faulty at {hi_mv} mV \
                     but clean at {lo_mv} mV under the same seed {seed}",
                ),
            ));
        }
    }
    if !diags.is_empty() {
        return diags;
    }

    let stream = synthetic_stream(seed, stream_len);
    for (kind, kind_expr) in STATELESS_KINDS {
        let misses: Vec<(u32, u64)> = maps
            .iter()
            .map(|(mv, map)| (*mv, word_misses(kind, map, &stream)))
            .collect();
        for pair in misses.windows(2) {
            let (hi_mv, hi_misses) = pair[0];
            let (lo_mv, lo_misses) = pair[1];
            if lo_misses < hi_misses {
                diags.push(Diagnostic::deny(
                    LINT_VOLTAGE,
                    Location::Image,
                    format!(
                        "{kind_expr}: word misses decreased from {hi_misses} at \
                         {hi_mv} mV to {lo_misses} at {lo_mv} mV under nested \
                         fault maps (seed {seed})",
                    ),
                ));
            }
        }
    }

    // TS Cache never word-misses (every read is speculatively served from
    // the L1), so its monotone quantity is the replay count: nested fault
    // maps mark a superset of words marginal, and the replacement
    // trajectory is fault-independent, so replays can only grow as the
    // voltage falls.
    let replay_counts: Vec<(u32, u64)> = maps
        .iter()
        .map(|(mv, map)| (*mv, replays(SchemeKind::TsCache, map, &stream)))
        .collect();
    for pair in replay_counts.windows(2) {
        let (hi_mv, hi_replays) = pair[0];
        let (lo_mv, lo_replays) = pair[1];
        if lo_replays < hi_replays {
            diags.push(Diagnostic::deny(
                LINT_VOLTAGE,
                Location::Image,
                format!(
                    "SchemeKind::TsCache: replays decreased from {hi_replays} at \
                     {hi_mv} mV to {lo_replays} at {lo_mv} mV under nested fault \
                     maps (seed {seed})",
                ),
            ));
        }
    }
    diags
}

/// Sweep 2: `window_pattern(len) ⊆ window_pattern(len + 1)` (and the
/// aligned variant) over every supported geometry, focus and length.
pub fn window_growth() -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for wpb in [8u32, 16, 32] {
        for focus in 0..wpb {
            for len in 0..wpb {
                for (name, a, b) in [
                    (
                        "window_pattern",
                        window_pattern(len, wpb, focus),
                        window_pattern(len + 1, wpb, focus),
                    ),
                    (
                        "window_pattern_aligned",
                        window_pattern_aligned(len, wpb, focus),
                        window_pattern_aligned(len + 1, wpb, focus),
                    ),
                ] {
                    if a & !b != 0 {
                        diags.push(Diagnostic::deny(
                            LINT_WINDOW,
                            Location::Word { index: focus },
                            format!(
                                "{name}({len}→{}, wpb={wpb}, focus={focus}) shrank \
                                 the remappable set: {a:#034b} ⊄ {b:#034b}",
                                len + 1,
                            ),
                        ));
                    }
                    if b.count_ones() != (len + 1).min(wpb) {
                        diags.push(Diagnostic::deny(
                            LINT_WINDOW,
                            Location::Word { index: focus },
                            format!(
                                "{name}({}, wpb={wpb}, focus={focus}) stores \
                                 {} words, expected {}",
                                len + 1,
                                b.count_ones(),
                                (len + 1).min(wpb),
                            ),
                        ));
                    }
                }
            }
        }
    }
    diags
}

/// Whether any access that missed in `base` hits in `plus`.
fn miss_became_hit(base: &[Event], plus: &[Event]) -> Option<usize> {
    base.iter().zip(plus).position(|(b, p)| {
        matches!(
            (b, p),
            (
                Event::Read { source: sb, .. },
                Event::Read {
                    source: ServedFrom::L1,
                    ..
                },
            ) if *sb != ServedFrom::L1
        )
    })
}

/// Sweep 3: adding one fault to a sampled map never turns a miss into a
/// hit for the stateless word-presence schemes.
pub fn fault_addition(seed: u64, stream_len: usize) -> Vec<Diagnostic> {
    let geom = CacheGeometry::dsn_l1();
    let mut rng = StdRng::seed_from_u64(seed);
    let base_map = FaultMap::sample(&geom, 0.02, &mut rng);
    let base_faults: Vec<u32> = base_map.iter_faulty_linear().collect();
    // A handful of clean indices spread across the array to plant.
    let total = geom.total_words();
    let plants: Vec<u32> = (0..6u32)
        .map(|i| {
            let mut idx = (seed as u32).wrapping_add(i * (total / 7)) % total;
            while base_map.linear_is_faulty(idx) {
                idx = (idx + 1) % total;
            }
            idx
        })
        .collect();
    let stream = synthetic_stream(seed, stream_len);

    let mut diags = Vec::new();
    for (kind, kind_expr) in STATELESS_KINDS {
        let base_events = run_stream(kind, &base_map, &stream);
        for &plant in &plants {
            let plus_faults: Vec<u32> = base_faults
                .iter()
                .copied()
                .chain(std::iter::once(plant))
                .collect();
            let plus_map = FaultMap::from_faulty_indices(&geom, plus_faults.iter().copied());
            let plus_events = run_stream(kind, &plus_map, &stream);
            let Some(index) = miss_became_hit(&base_events, &plus_events) else {
                continue;
            };
            let case = Case {
                accesses: stream.clone(),
                faults_a: base_faults.clone(),
                faults_b: plus_faults,
            };
            let shrunk = shrink_case(&case, &|c| {
                let a = FaultMap::from_faulty_indices(&geom, c.faults_a.iter().copied());
                let b = FaultMap::from_faulty_indices(&geom, c.faults_b.iter().copied());
                miss_became_hit(
                    &run_stream(kind, &a, &c.accesses),
                    &run_stream(kind, &b, &c.accesses),
                )
                .is_some()
            });
            let rendered = render_fault_addition_test(
                "shrunk_fault_addition_regression",
                &shrunk,
                kind_expr,
                "CacheGeometry::dsn_l1()",
                "Shrunk by dvs-diff's fault-addition sweep.",
            );
            diags.push(Diagnostic::deny(
                LINT_FAULT_ADD,
                Location::Word { index: plant },
                format!(
                    "{kind_expr}: planting fault at word {plant} turned the miss \
                     at access {index} into a hit; minimal reproducer:\n{rendered}",
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{first_divergence, Access};

    #[test]
    fn tier1_voltages_are_monotone_under_every_model() {
        for model in FaultModel::ALL {
            let diags = voltage_monotonicity(5, &[760, 600, 480, 400], 2_000, model);
            assert_eq!(diags, Vec::new(), "non-monotone under {}", model.name());
        }
    }

    #[test]
    fn window_growth_is_clean() {
        assert_eq!(window_growth(), Vec::new());
    }

    #[test]
    fn fault_addition_is_clean_for_stateless_schemes() {
        assert_eq!(fault_addition(23, 1_200), Vec::new());
    }

    /// Why FFW is scoped out of the dynamic fault-addition sweep: its
    /// window placement depends on access history, so an extra fault can
    /// shift a refreshed window to *cover* a word it previously excluded.
    /// Three accesses over a one-way 64-set cache prove it. With only
    /// word 0 of frame (0,0) faulty, the fill at word 7 stores the
    /// 7-word window {1..7}, word 1 then hits, and word 0 misses. Add a
    /// fault at word 1: the fill stores the 6-word window {2..7}, word 1
    /// now *misses* and re-centres the window to {0..5} — so the final
    /// read of word 0 hits, a miss→hit flip caused by adding a fault.
    #[test]
    fn ffw_counterexample_documents_the_scoping() {
        let geom = CacheGeometry::new(2048, 1, 32).unwrap();
        let base = FaultMap::from_faulty_indices(&geom, [0]);
        let plus = FaultMap::from_faulty_indices(&geom, [0, 1]);
        let stream = [Access::Read(7 * 4), Access::Read(4), Access::Read(0)];
        let base_events = run_stream(SchemeKind::Ffw, &base, &stream);
        let plus_events = run_stream(SchemeKind::Ffw, &plus, &stream);
        // The flip is at the final access: word 0 misses on the smaller
        // fault map and hits on the larger one.
        assert_eq!(miss_became_hit(&base_events, &plus_events), Some(2));
        assert!(matches!(
            base_events[2],
            Event::Read {
                source: ServedFrom::L2,
                ..
            }
        ));
        assert!(matches!(
            plus_events[2],
            Event::Read {
                source: ServedFrom::L1,
                ..
            }
        ));
        // Sanity: the two runs are otherwise comparable streams.
        assert!(first_divergence(&base_events, &plus_events).is_some());
    }
}
