//! Event-stream capture for paired scheme runs.
//!
//! The differential oracles compare *what the cache did*, not just its
//! summary counters: every access is recorded as an [`Event`] carrying
//! where it was served from, how many L2 reads it triggered, and its
//! latency in cycles (from [`LatencyConfig::dsn`] plus the scheme's
//! documented extra hit cycles). Two runs agree when their event streams
//! are identical — [`first_divergence`] finds the earliest index where
//! they do not.

use dvs_cache::{Addr, L2Cache, LatencyConfig};
use dvs_schemes::{L1Cache, SchemeKind, ServedFrom};
use dvs_sram::FaultMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One memory access in a deterministic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// A load from the byte address.
    Read(u64),
    /// A store to the byte address.
    Write(u64),
}

impl Access {
    /// The byte address accessed.
    pub fn addr(self) -> u64 {
        match self {
            Access::Read(a) | Access::Write(a) => a,
        }
    }
}

/// One observable outcome of driving an [`Access`] through a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Outcome of a load.
    Read {
        /// Level that served the data.
        source: ServedFrom,
        /// L2 read accesses the load triggered (block refills and
        /// word-miss redirects).
        l2_reads: u32,
        /// Access latency in cycles at a nominal 1607 MHz, including the
        /// scheme's extra hit cycles.
        latency: u64,
    },
    /// Outcome of a store (write-through, no-allocate).
    Write {
        /// Whether the L1 copy was updated in place.
        l1_updated: bool,
    },
}

impl Event {
    /// The same event with its latency zeroed — used to compare schemes
    /// whose only documented difference is a constant hit-cycle adder.
    pub fn without_latency(self) -> Event {
        match self {
            Event::Read {
                source, l2_reads, ..
            } => Event::Read {
                source,
                l2_reads,
                latency: 0,
            },
            w @ Event::Write { .. } => w,
        }
    }
}

/// Frequency the latency field is computed at (Table II's 760 mV point).
const NOMINAL_FREQ_MHZ: u32 = 1607;

fn read_latency(source: ServedFrom, extra: u32, replay: u32) -> u64 {
    let lat = LatencyConfig::dsn();
    match source {
        ServedFrom::L1 => u64::from(lat.l1_hit_cycles) + u64::from(extra) + u64::from(replay),
        ServedFrom::L2 => lat.l2_access_cycles(),
        ServedFrom::Memory => lat.dram_access_cycles(NOMINAL_FREQ_MHZ),
    }
}

/// Drives `accesses` through a fresh `kind` L1 over `fmap` (with its own
/// empty [`L2Cache::dsn`] behind it) and records one [`Event`] per access.
///
/// The run is fully deterministic: same (kind, map, stream) → same events.
pub fn run_stream(kind: SchemeKind, fmap: &FaultMap, accesses: &[Access]) -> Vec<Event> {
    let mut l1 = L1Cache::new(kind, fmap.clone());
    let mut l2 = L2Cache::dsn();
    let extra = l1.extra_hit_cycles();
    accesses
        .iter()
        .map(|&access| match access {
            Access::Read(a) => {
                let out = l1.read(Addr::new(a), &mut l2);
                Event::Read {
                    source: out.source,
                    l2_reads: out.l2_reads,
                    latency: read_latency(out.source, extra, out.replay_cycles),
                }
            }
            Access::Write(a) => {
                let out = l1.write(Addr::new(a));
                Event::Write {
                    l1_updated: out.l1_updated,
                }
            }
        })
        .collect()
}

/// Word-miss count after driving `accesses` through a fresh `kind` L1
/// over `fmap` — the quantity the voltage-monotonicity sweep tracks.
pub fn word_misses(kind: SchemeKind, fmap: &FaultMap, accesses: &[Access]) -> u64 {
    let mut l1 = L1Cache::new(kind, fmap.clone());
    let mut l2 = L2Cache::dsn();
    for &access in accesses {
        match access {
            Access::Read(a) => {
                l1.read(Addr::new(a), &mut l2);
            }
            Access::Write(a) => {
                l1.write(Addr::new(a));
            }
        }
    }
    l1.stats().word_misses
}

/// Replay count after driving `accesses` through a fresh `kind` L1 over
/// `fmap` — TS Cache's analogue of a word miss: the access is still
/// served from the L1, but pays the checker's replay penalty.
pub fn replays(kind: SchemeKind, fmap: &FaultMap, accesses: &[Access]) -> u64 {
    let mut l1 = L1Cache::new(kind, fmap.clone());
    let mut l2 = L2Cache::dsn();
    for &access in accesses {
        match access {
            Access::Read(a) => {
                l1.read(Addr::new(a), &mut l2);
            }
            Access::Write(a) => {
                l1.write(Addr::new(a));
            }
        }
    }
    l1.stats().replays
}

/// Index of the earliest event where the two streams differ, or the
/// common length when one stream is a strict prefix of the other.
/// `None` means the streams are identical.
pub fn first_divergence(a: &[Event], b: &[Event]) -> Option<usize> {
    let common = a.len().min(b.len());
    for i in 0..common {
        if a[i] != b[i] {
            return Some(i);
        }
    }
    (a.len() != b.len()).then_some(common)
}

/// [`first_divergence`] with latencies masked — for pairs whose only
/// documented difference is a constant extra-hit-cycle adder (8T, word
/// substitution, FBA/IDC).
pub fn first_behavioral_divergence(a: &[Event], b: &[Event]) -> Option<usize> {
    let common = a.len().min(b.len());
    for i in 0..common {
        if a[i].without_latency() != b[i].without_latency() {
            return Some(i);
        }
    }
    (a.len() != b.len()).then_some(common)
}

/// A deterministic synthetic access stream with realistic locality: a
/// rotating hot set of 64 blocks drawn from a 4096-block pool, 1/4 of
/// accesses stores, word offsets uniform over an 8-word block.
pub fn synthetic_stream(seed: u64, len: usize) -> Vec<Access> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hot: Vec<u64> = (0..64).map(|_| rng.gen_range(0..4096u64)).collect();
    (0..len)
        .map(|_| {
            if rng.gen_range(0..4u32) == 0 {
                let slot = rng.gen_range(0..hot.len());
                hot[slot] = rng.gen_range(0..4096u64);
            }
            let block = hot[rng.gen_range(0..hot.len())];
            let word = rng.gen_range(0..8u64);
            let addr = block * 32 + word * 4;
            if rng.gen_range(0..4u32) == 0 {
                Access::Write(addr)
            } else {
                Access::Read(addr)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_sram::CacheGeometry;

    #[test]
    fn runs_are_deterministic() {
        let geom = CacheGeometry::dsn_l1();
        let clean = FaultMap::fault_free(&geom);
        let stream = synthetic_stream(7, 500);
        let a = run_stream(SchemeKind::Conventional, &clean, &stream);
        let b = run_stream(SchemeKind::Conventional, &clean, &stream);
        assert_eq!(first_divergence(&a, &b), None);
    }

    #[test]
    fn divergence_reports_earliest_index_and_length_mismatch() {
        let geom = CacheGeometry::dsn_l1();
        let clean = FaultMap::fault_free(&geom);
        let events = run_stream(SchemeKind::Conventional, &clean, &synthetic_stream(1, 20));
        let mut other = events.clone();
        other[5] = Event::Write { l1_updated: false };
        assert_eq!(first_divergence(&events, &other), Some(5));
        assert_eq!(first_divergence(&events, &events[..12]), Some(12));
    }

    #[test]
    fn behavioral_divergence_masks_constant_latency_adders() {
        let geom = CacheGeometry::dsn_l1();
        let clean = FaultMap::fault_free(&geom);
        let stream = synthetic_stream(3, 400);
        let conv = run_stream(SchemeKind::Conventional, &clean, &stream);
        let eight_t = run_stream(SchemeKind::EightT, &clean, &stream);
        // 8T differs in hit latency only.
        assert_eq!(first_behavioral_divergence(&conv, &eight_t), None);
        assert!(first_divergence(&conv, &eight_t).is_some());
    }

    #[test]
    fn synthetic_stream_is_seed_stable_and_mixed() {
        let s = synthetic_stream(42, 1000);
        assert_eq!(s, synthetic_stream(42, 1000));
        assert_ne!(s, synthetic_stream(43, 1000));
        assert!(s.iter().any(|a| matches!(a, Access::Write(_))));
        assert!(s.iter().any(|a| matches!(a, Access::Read(_))));
    }
}
