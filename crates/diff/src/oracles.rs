//! The four paired-run oracle families.
//!
//! Every oracle returns [`Diagnostic`]s: a deny per divergence (with the
//! shrunk minimal reproducer rendered into the message), a warn when a
//! precondition of the comparison does not hold (e.g. a nominally clean
//! map that sampled a defect), and nothing when the paired runs agree.
//!
//! * **Family A** — clean-map equivalence: with a fault-free map, every
//!   scheme's event stream matches a conventional cache over the same
//!   geometry (modulo each scheme's documented constant hit-cycle adder),
//!   both at stream level and end-to-end through the [`Evaluator`].
//! * **Family B** — SA/DM agreement: the BBR cache (direct-mapped) with
//!   an empty fault map matches a one-way set-associative conventional
//!   cache of the same capacity, and an SA→DM→SA mode round-trip leaves
//!   a [`CacheCore`] indistinguishable from a fresh one.
//! * **Family C** — persistence identity: store-backed, store-reloaded
//!   and recorder-on evaluator runs are bit-identical to a plain run.
//! * **Family D** — capacity halving: Wilkerson word-disable over a clean
//!   map matches a conventional cache of half the capacity and half the
//!   ways, at its documented +1-cycle hit latency.
//! * **Family E** — packed vs reference: the word-packed hot-path
//!   queries (popcounts, per-frame fault masks, word-chunked occupancy
//!   scans) agree with their retained per-bit reference implementations
//!   on fault maps drawn down the voltage ladder.

use std::sync::Arc;

use dvs_analysis::{Diagnostic, Location};
use dvs_cache::{Addr, CacheCore, CacheMode};
use dvs_core::{CellKey, EvalConfig, Evaluator, ExperimentPlan, ResultStore, Scheme};
use dvs_linker::{
    fault_free_chunks, fault_free_chunks_reference, first_faulty_in_run,
    first_faulty_in_run_reference,
};
use dvs_obs::MetricsRegistry;
use dvs_schemes::SchemeKind;
use dvs_sram::montecarlo::trial_seed;
use dvs_sram::{
    ladder_mv, CacheGeometry, FaultChain, FaultMap, FaultModel, MilliVolts, PfailModel,
};
use dvs_workloads::Benchmark;

use crate::shrink::{render_pair_test, shrink_case, Case};
use crate::stream::{
    first_behavioral_divergence, first_divergence, run_stream, synthetic_stream, Access,
};

/// Lint identifier for clean-map equivalence violations.
pub const LINT_CLEAN_MAP: &str = "diff/clean-map";
/// Lint identifier for SA/DM agreement violations.
pub const LINT_SA_DM: &str = "diff/sa-dm";
/// Lint identifier for persistence-identity violations.
pub const LINT_PERSISTENCE: &str = "diff/persistence";
/// Lint identifier for capacity-halving violations.
pub const LINT_HALVING: &str = "diff/capacity-halving";
/// Lint identifier for a comparison precondition that did not hold.
pub const LINT_HYPOTHESIS: &str = "diff/clean-hypothesis";
/// Lint identifier for packed-vs-reference divergences.
pub const LINT_PACKED: &str = "diff/packed-reference";

/// One side of a paired run: a scheme, its fault map, and the source
/// expressions used when rendering a reproducer test.
struct Side<'a> {
    kind: SchemeKind,
    map: &'a FaultMap,
    kind_expr: &'a str,
    geom_expr: &'a str,
}

/// Compares `candidate` against `reference` on the shared stream,
/// shrinking and rendering a reproducer on divergence. Latency is masked
/// when the candidate documents a constant extra-hit-cycle adder.
fn diff_pair(
    lint: &'static str,
    candidate: &Side<'_>,
    reference: &Side<'_>,
    accesses: &[Access],
) -> Option<Diagnostic> {
    let mask_latency = candidate.kind.extra_hit_cycles() != reference.kind.extra_hit_cycles();
    let diverges = |accesses: &[Access], faults_a: &[u32], faults_b: &[u32]| {
        let map_a =
            FaultMap::from_faulty_indices(reference.map.geometry(), faults_a.iter().copied());
        let map_b =
            FaultMap::from_faulty_indices(candidate.map.geometry(), faults_b.iter().copied());
        let a = run_stream(reference.kind, &map_a, accesses);
        let b = run_stream(candidate.kind, &map_b, accesses);
        if mask_latency {
            first_behavioral_divergence(&a, &b)
        } else {
            first_divergence(&a, &b)
        }
    };
    let faults_a: Vec<u32> = reference.map.iter_faulty_linear().collect();
    let faults_b: Vec<u32> = candidate.map.iter_faulty_linear().collect();
    let index = diverges(accesses, &faults_a, &faults_b)?;
    let case = Case {
        accesses: accesses.to_vec(),
        faults_a,
        faults_b,
    };
    let shrunk = shrink_case(&case, &|c| {
        diverges(&c.accesses, &c.faults_a, &c.faults_b).is_some()
    });
    let rendered = render_pair_test(
        "shrunk_diff_regression",
        &shrunk,
        reference.kind_expr,
        candidate.kind_expr,
        reference.geom_expr,
        candidate.geom_expr,
        &format!(
            "Shrunk by dvs-diff from a {}-access failure.",
            accesses.len()
        ),
    );
    Some(Diagnostic::deny(
        lint,
        Location::Image,
        format!(
            "{} diverges from {} at access {index} \
             (shrunk to {} accesses, {} faults); minimal reproducer:\n{rendered}",
            candidate.kind_expr,
            reference.kind_expr,
            shrunk.accesses.len(),
            shrunk.faults_b.len(),
        ),
    ))
}

/// Family A (stream level): over a fault-free map, every scheme that
/// keeps the conventional geometry must produce the conventional cache's
/// exact event stream; schemes documenting a constant extra hit cycle are
/// compared with latency masked.
pub fn clean_map_equivalence(seed: u64, stream_len: usize) -> Vec<Diagnostic> {
    let geom = CacheGeometry::dsn_l1();
    let clean = FaultMap::fault_free(&geom);
    let accesses = synthetic_stream(seed, stream_len);
    let candidates: [(SchemeKind, &str); 9] = [
        (SchemeKind::EightT, "SchemeKind::EightT"),
        (
            SchemeKind::SimpleWordDisable,
            "SchemeKind::SimpleWordDisable",
        ),
        (SchemeKind::Ffw, "SchemeKind::Ffw"),
        (SchemeKind::fba(), "SchemeKind::fba()"),
        (SchemeKind::idc(), "SchemeKind::idc()"),
        (SchemeKind::WordSubstitution, "SchemeKind::WordSubstitution"),
        (SchemeKind::LineDisable, "SchemeKind::LineDisable"),
        (SchemeKind::WayDisable, "SchemeKind::WayDisable"),
        (SchemeKind::TsCache, "SchemeKind::TsCache"),
    ];
    candidates
        .into_iter()
        .filter_map(|(kind, expr)| {
            diff_pair(
                LINT_CLEAN_MAP,
                &Side {
                    kind,
                    map: &clean,
                    kind_expr: expr,
                    geom_expr: "CacheGeometry::dsn_l1()",
                },
                &Side {
                    kind: SchemeKind::Conventional,
                    map: &clean,
                    kind_expr: "SchemeKind::Conventional",
                    geom_expr: "CacheGeometry::dsn_l1()",
                },
                &accesses,
            )
        })
        .collect()
}

/// A small evaluator configuration for the end-to-end oracles.
fn tiny_config(seed: u64, fault_model: FaultModel) -> EvalConfig {
    EvalConfig {
        trace_instrs: 3_000,
        maps: 2,
        seed,
        threads: 2,
        validate_images: false,
        fault_model,
        ..EvalConfig::quick()
    }
}

/// Recomputes the engine's two per-trial fault maps for `key`/`trial`
/// exactly as `run_trial` samples them: a [`FaultChain`] under
/// `fault_model` advanced down the 20 mV voltage ladder to the cell's
/// operating point, with the failure probability clamped monotone
/// against the pfail fit.
fn trial_maps(
    key: &CellKey,
    root_seed: u64,
    trial: u64,
    fault_model: FaultModel,
) -> (FaultMap, FaultMap) {
    let geom = CacheGeometry::dsn_l1();
    let vcc_mv = key.point().vcc.get();
    let model = PfailModel::dsn45();
    let base = key.seed_base(root_seed);
    let side = |side: u64| {
        let mut chain =
            FaultChain::with_model(&geom, trial_seed(base, 2 * trial + side), fault_model);
        for mv in ladder_mv(vcc_mv) {
            let p = model.pfail_word(MilliVolts::new(mv)).max(chain.p_current());
            chain.advance_to(p);
        }
        chain.into_map()
    };
    (side(0), side(1))
}

/// Family A (end-to-end): at 760 mV every trial whose sampled maps are
/// actually clean must reproduce the defect-free run — bit-identical
/// `SimResult` for schemes with no extra hit cycles, identical memory
/// counters for the +1-cycle schemes (the trace-driven memory side is
/// timing-independent). Trials whose maps sampled a defect (possible:
/// 760 mV is yield-clean, not P_fail = 0) get a warn, never a silent
/// skip.
///
/// `fault_model` selects the injection backend the evaluator samples
/// under — the equivalence must hold for every model, since at a clean
/// operating point correlation structure has nothing to correlate.
pub fn evaluator_clean_equivalence(
    benchmarks: &[Benchmark],
    seed: u64,
    fault_model: FaultModel,
) -> Vec<Diagnostic> {
    let vcc = MilliVolts::new(760);
    let mut diags = Vec::new();
    let mut ev = Evaluator::new(tiny_config(seed, fault_model));
    for &bench in benchmarks {
        let reference = match ev.run(bench, Scheme::DefectFree, vcc) {
            Ok(run) => run,
            Err(e) => {
                diags.push(Diagnostic::deny(
                    LINT_CLEAN_MAP,
                    Location::Image,
                    format!("defect-free reference failed on {}: {e}", bench.name()),
                ));
                continue;
            }
        };
        let ref_trial = &reference.trials[0];
        let exact = [
            Scheme::SimpleWdis,
            Scheme::LineDisable,
            Scheme::WayDisable,
            Scheme::TsCache,
        ];
        let memory_only = [Scheme::EightT, Scheme::WordSub];
        for scheme in exact.iter().chain(memory_only.iter()).copied() {
            let run = match ev.run(bench, scheme, vcc) {
                Ok(run) => run,
                Err(e) => {
                    diags.push(Diagnostic::deny(
                        LINT_CLEAN_MAP,
                        Location::Image,
                        format!("{scheme} failed on {}: {e}", bench.name()),
                    ));
                    continue;
                }
            };
            let key = CellKey::new(bench, scheme, vcc);
            for (trial, metrics) in run.trials.iter().enumerate() {
                if scheme.sees_faults() {
                    let (fmap_i, fmap_d) = trial_maps(&key, seed, trial as u64, fault_model);
                    if fmap_i.faulty_words() + fmap_d.faulty_words() > 0 {
                        diags.push(Diagnostic::warn(
                            LINT_HYPOTHESIS,
                            Location::Image,
                            format!(
                                "{scheme}/{} trial {trial}: 760 mV map sampled \
                                 {} faulty word(s); clean-equivalence not applicable",
                                bench.name(),
                                fmap_i.faulty_words() + fmap_d.faulty_words(),
                            ),
                        ));
                        continue;
                    }
                }
                let agrees = if exact.contains(&scheme) {
                    metrics.result == ref_trial.result
                } else {
                    metrics.result.mem == ref_trial.result.mem
                        && metrics.result.instructions == ref_trial.result.instructions
                };
                if !agrees {
                    diags.push(Diagnostic::deny(
                        LINT_CLEAN_MAP,
                        Location::Image,
                        format!(
                            "{scheme}/{} trial {trial} diverges from defect-free at \
                             760 mV on clean maps:\n  scheme: {:?}\n  reference: {:?}",
                            bench.name(),
                            metrics.result,
                            ref_trial.result,
                        ),
                    ));
                }
            }
        }
    }
    diags
}

/// Family B: the BBR instruction cache (direct-mapped over the full
/// geometry) with an empty fault map must match a conventional one-way
/// set-associative cache of the same capacity — the DM line index and the
/// 1-way set index select the same physical line. Also checks that a
/// `CacheCore` SA→DM→SA mode round-trip is indistinguishable from a
/// fresh core (stale LRU state after the flush breaks replay equality).
pub fn sa_dm_equivalence(seed: u64, stream_len: usize) -> Vec<Diagnostic> {
    let geom = CacheGeometry::dsn_l1();
    let one_way = CacheGeometry::new(geom.capacity_bytes(), 1, geom.block_bytes())
        .expect("one-way variant of dsn_l1");
    let accesses = synthetic_stream(seed, stream_len);
    let mut diags: Vec<Diagnostic> = diff_pair(
        LINT_SA_DM,
        &Side {
            kind: SchemeKind::Bbr,
            map: &FaultMap::fault_free(&geom),
            kind_expr: "SchemeKind::Bbr",
            geom_expr: "CacheGeometry::dsn_l1()",
        },
        &Side {
            kind: SchemeKind::Conventional,
            map: &FaultMap::fault_free(&one_way),
            kind_expr: "SchemeKind::Conventional",
            geom_expr: "CacheGeometry::new(32768, 1, 32).unwrap()",
        },
        &accesses,
    )
    .into_iter()
    .collect();

    // Mode round-trip freshness: replay the same fill stream on a
    // round-tripped core and a fresh one; every victim choice must agree.
    let small = CacheGeometry::new(1024, 4, 32).expect("small SA geometry");
    let mut tripped = CacheCore::new(small);
    for &access in accesses.iter().take(64) {
        let addr = Addr::new(access.addr());
        if !tripped.lookup(addr).is_hit() {
            tripped.fill(addr);
        }
    }
    let populated = u64::from(tripped.valid_lines());
    tripped.set_mode(CacheMode::DirectMapped);
    tripped.set_mode(CacheMode::SetAssociative);
    if tripped.invalidations() != populated {
        diags.push(Diagnostic::deny(
            LINT_SA_DM,
            Location::Image,
            format!(
                "SA→DM→SA round-trip counted {} invalidations for {populated} \
                 valid lines (each line must be counted exactly once)",
                tripped.invalidations(),
            ),
        ));
    }
    let mut fresh = CacheCore::new(small);
    for (i, &access) in accesses.iter().enumerate().take(stream_len.min(256)) {
        let addr = Addr::new(access.addr());
        if tripped.victim_frame(addr) != fresh.victim_frame(addr) {
            diags.push(Diagnostic::deny(
                LINT_SA_DM,
                Location::Image,
                format!(
                    "SA→DM→SA round-trip is not fresh: victim frame for access \
                     {i} (addr {:#x}) is {:?} on the round-tripped core but \
                     {:?} on a fresh one — stale replacement state survived \
                     the flush",
                    access.addr(),
                    tripped.victim_frame(addr),
                    fresh.victim_frame(addr),
                ),
            ));
            break;
        }
        let hit_t = tripped.lookup(addr).is_hit();
        let hit_f = fresh.lookup(addr).is_hit();
        if hit_t != hit_f {
            diags.push(Diagnostic::deny(
                LINT_SA_DM,
                Location::Image,
                format!(
                    "SA→DM→SA round-trip replay diverges at access {i}: \
                     hit={hit_t} on the round-tripped core, hit={hit_f} fresh",
                ),
            ));
            break;
        }
        if !hit_t {
            tripped.fill(addr);
            fresh.fill(addr);
        }
    }
    diags
}

/// Family C: persistence and observability must never change results.
/// Sweeps one benchmark over two voltages (so the incremental
/// voltage-ladder reuse and link-memoization paths are exercised) plain,
/// store-backed, store-reloaded, size-capped (`store_cap` bytes, twice —
/// eviction mid-sweep and a rerun over the evicted store), recorder-on
/// and with the worker arena disabled; every trial vector of every cell
/// must be bit-identical to the plain sweep.
pub fn persistence_identity(
    benchmark: Benchmark,
    seed: u64,
    fault_model: FaultModel,
    store_cap: Option<u64>,
) -> Vec<Diagnostic> {
    let scheme = Scheme::FfwBbr;
    let plan = ExperimentPlan::for_grid(
        &[benchmark],
        &[scheme],
        &[MilliVolts::new(480), MilliVolts::new(440)],
    );
    let mut diags = Vec::new();

    type PlanRuns = Vec<(
        CellKey,
        Result<Arc<dvs_core::SchemeRun>, dvs_core::EvalError>,
    )>;
    let run_with =
        |store: Option<ResultStore>, cap: Option<u64>, recorder: bool, reuse: bool| -> PlanRuns {
            // The cap is threaded through `EvalConfig` (not applied to
            // the store directly) so the same path production uses —
            // `with_store` picking up `store_max_bytes` — is on trial.
            let mut ev = Evaluator::new(EvalConfig {
                reuse_buffers: reuse,
                store_max_bytes: cap,
                ..tiny_config(seed, fault_model)
            });
            if let Some(store) = store {
                ev = ev.with_store(store);
            }
            if recorder {
                ev = ev.with_recorder(Arc::new(MetricsRegistry::new()));
            }
            ev.run_plan(&plan)
        };

    let plain = run_with(None, None, false, true);
    if let Some((key, Err(e))) = plain.iter().find(|(_, r)| r.is_err()) {
        diags.push(Diagnostic::deny(
            LINT_PERSISTENCE,
            Location::Image,
            format!("plain sweep failed on {key}: {e}"),
        ));
        return diags;
    }

    let store_dir =
        std::env::temp_dir().join(format!("dvs-diff-store-{}-{seed}", std::process::id()));
    let capped_dir =
        std::env::temp_dir().join(format!("dvs-diff-capped-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_dir_all(&capped_dir);
    let variants: [(&str, Option<&std::path::Path>, Option<u64>, bool, bool); 6] = [
        ("store-backed", Some(store_dir.as_path()), None, false, true),
        (
            "store-reloaded",
            Some(store_dir.as_path()),
            None,
            false,
            true,
        ),
        (
            "store-capped",
            Some(capped_dir.as_path()),
            store_cap,
            false,
            true,
        ),
        (
            "store-capped-rerun",
            Some(capped_dir.as_path()),
            store_cap,
            false,
            true,
        ),
        ("recorder-on", None, None, true, true),
        ("arena-disabled", None, None, false, false),
    ];
    for (label, dir, cap, recorder, reuse) in variants {
        let store = match dir.map(ResultStore::open) {
            Some(Ok(store)) => Some(store),
            Some(Err(e)) => {
                diags.push(Diagnostic::deny(
                    LINT_PERSISTENCE,
                    Location::Image,
                    format!("{label}: store failed to open: {e}"),
                ));
                continue;
            }
            None => None,
        };
        let runs = run_with(store, cap, recorder, reuse);
        for ((pk, pr), (vk, vr)) in plain.iter().zip(&runs) {
            if pk != vk {
                diags.push(Diagnostic::deny(
                    LINT_PERSISTENCE,
                    Location::Image,
                    format!("{label}: sweep order diverged ({pk} vs {vk})"),
                ));
                break;
            }
            let plain_run = pr.as_ref().expect("plain sweep errors handled above");
            match vr {
                Ok(run) => {
                    if run.trials != plain_run.trials || run.failed_links != plain_run.failed_links
                    {
                        diags.push(Diagnostic::deny(
                            LINT_PERSISTENCE,
                            Location::Image,
                            format!(
                                "{label} run of {pk} is not bit-identical to the \
                                 plain run ({} vs {} trials)",
                                run.trials.len(),
                                plain_run.trials.len(),
                            ),
                        ));
                    }
                }
                Err(e) => diags.push(Diagnostic::deny(
                    LINT_PERSISTENCE,
                    Location::Image,
                    format!("{label} run of {pk} failed: {e}"),
                )),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&store_dir);
    let _ = std::fs::remove_dir_all(&capped_dir);
    diags
}

/// Family E — packed vs reference: every word-packed hot-path query must
/// agree with its retained per-bit reference implementation on fault
/// maps drawn down the voltage ladder. Covers [`BitGrid`] popcount and
/// `iter_ones`, the per-frame fault masks the schemes consult, and the
/// linker's word-chunked occupancy scans.
///
/// [`BitGrid`]: dvs_sram::BitGrid
pub fn packed_reference_equivalence(
    seed: u64,
    voltages_mv: &[u32],
    fault_model: FaultModel,
) -> Vec<Diagnostic> {
    let geom = CacheGeometry::dsn_l1();
    let model = PfailModel::dsn45();
    let mut voltages: Vec<u32> = voltages_mv.to_vec();
    voltages.sort_unstable_by(|a, b| b.cmp(a));
    voltages.dedup();
    let mut chain = FaultChain::with_model(&geom, seed, fault_model);
    let mut diags = Vec::new();
    for mv in voltages {
        let p = model.pfail_word(MilliVolts::new(mv)).max(chain.p_current());
        chain.advance_to(p);
        let map = chain.map();
        let grid = map.word_bits();

        if grid.count_ones() != grid.count_ones_reference() {
            diags.push(Diagnostic::deny(
                LINT_PACKED,
                Location::Image,
                format!(
                    "BitGrid::count_ones diverges from the per-bit reference at \
                     {mv} mV (seed {seed}): packed {}, reference {}",
                    grid.count_ones(),
                    grid.count_ones_reference(),
                ),
            ));
        }
        let from_iter = grid.iter_ones().count();
        if from_iter != grid.count_ones() {
            diags.push(Diagnostic::deny(
                LINT_PACKED,
                Location::Image,
                format!(
                    "BitGrid::iter_ones yields {from_iter} indices but count_ones \
                     reports {} at {mv} mV (seed {seed})",
                    grid.count_ones(),
                ),
            ));
        }
        for frame in map.frames() {
            let packed = map.frame_fault_pattern(frame);
            let reference = map.frame_fault_pattern_reference(frame);
            if packed != reference {
                diags.push(Diagnostic::deny(
                    LINT_PACKED,
                    Location::Image,
                    format!(
                        "frame_fault_pattern diverges from the per-bit reference \
                         for frame {frame:?} at {mv} mV (seed {seed}): packed \
                         {packed:#034b}, reference {reference:#034b}",
                    ),
                ));
                break;
            }
        }
        if fault_free_chunks(map) != fault_free_chunks_reference(map) {
            diags.push(Diagnostic::deny(
                LINT_PACKED,
                Location::Image,
                format!(
                    "fault_free_chunks diverges from the per-word reference at \
                     {mv} mV (seed {seed})",
                ),
            ));
        }
        let total = geom.total_words();
        for k in 0..32u64 {
            let start = (seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(k.wrapping_mul(0x517c_c1b7_2722_0a95))
                % u64::from(total)) as u32;
            let len = 1 + (k as u32 * 7) % 192;
            let packed = first_faulty_in_run(map, start, len);
            let reference = first_faulty_in_run_reference(map, start, len);
            if packed != reference {
                diags.push(Diagnostic::deny(
                    LINT_PACKED,
                    Location::Image,
                    format!(
                        "first_faulty_in_run({start}, {len}) diverges from the \
                         per-word reference at {mv} mV (seed {seed}): packed \
                         {packed:?}, reference {reference:?}",
                    ),
                ));
                break;
            }
        }
    }
    diags
}

/// Family D: Wilkerson word-disable pairs up ways, so over a clean map it
/// must behave exactly like a conventional cache of half the capacity and
/// half the associativity, at its documented +1-cycle hit latency.
pub fn wilkerson_halving(seed: u64, stream_len: usize) -> Vec<Diagnostic> {
    let geom = CacheGeometry::dsn_l1();
    let halved = CacheGeometry::new(
        geom.capacity_bytes() / 2,
        geom.ways() / 2,
        geom.block_bytes(),
    )
    .expect("halved variant of dsn_l1");
    let mut diags = Vec::new();
    if SchemeKind::WilkersonPlus.extra_hit_cycles() != 1 {
        diags.push(Diagnostic::deny(
            LINT_HALVING,
            Location::Image,
            format!(
                "Wilkerson hit-latency adder changed: documented 1, now {}",
                SchemeKind::WilkersonPlus.extra_hit_cycles(),
            ),
        ));
    }
    let accesses = synthetic_stream(seed, stream_len);
    diags.extend(diff_pair(
        LINT_HALVING,
        &Side {
            kind: SchemeKind::WilkersonPlus,
            map: &FaultMap::fault_free(&geom),
            kind_expr: "SchemeKind::WilkersonPlus",
            geom_expr: "CacheGeometry::dsn_l1()",
        },
        &Side {
            kind: SchemeKind::Conventional,
            map: &FaultMap::fault_free(&halved),
            kind_expr: "SchemeKind::Conventional",
            geom_expr: "CacheGeometry::new(16384, 2, 32).unwrap()",
        },
        &accesses,
    ));
    diags
}

/// Self-test: plants one fault under the word-disable scheme and diffs
/// it against the clean conventional run — a real divergence the harness
/// must flag, shrink and render. Used by `dvs-diff --inject-divergence`
/// (and CI) to prove the deny path works end to end.
pub fn injected_divergence() -> Vec<Diagnostic> {
    let geom = CacheGeometry::dsn_l1();
    let clean = FaultMap::fault_free(&geom);
    let faulty = FaultMap::from_faulty_indices(&geom, [0]);
    // Four blocks mapping to set 0 fill ways 3,2,1,0 in order; the second
    // round re-reads word 0 of each, and the block in way 0 hits the
    // planted fault.
    let blocks = [0u64, 256, 512, 768];
    let accesses: Vec<Access> = blocks
        .iter()
        .chain(blocks.iter())
        .map(|&bn| Access::Read(bn * 32))
        .collect();
    diff_pair(
        LINT_CLEAN_MAP,
        &Side {
            kind: SchemeKind::SimpleWordDisable,
            map: &faulty,
            kind_expr: "SchemeKind::SimpleWordDisable",
            geom_expr: "CacheGeometry::dsn_l1()",
        },
        &Side {
            kind: SchemeKind::Conventional,
            map: &clean,
            kind_expr: "SchemeKind::Conventional",
            geom_expr: "CacheGeometry::dsn_l1()",
        },
        &accesses,
    )
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_map_family_is_clean() {
        assert_eq!(clean_map_equivalence(11, 1_500), Vec::new());
    }

    #[test]
    fn sa_dm_family_is_clean() {
        assert_eq!(sa_dm_equivalence(13, 1_500), Vec::new());
    }

    #[test]
    fn wilkerson_family_is_clean() {
        assert_eq!(wilkerson_halving(17, 1_500), Vec::new());
    }

    #[test]
    fn packed_reference_family_is_clean_under_every_model() {
        for model in FaultModel::ALL {
            assert_eq!(
                packed_reference_equivalence(19, &[760, 600, 480, 400], model),
                Vec::new(),
                "packed-vs-reference diverged under {}",
                model.name()
            );
        }
    }

    /// The harness must actually catch discrepancies: the injected
    /// divergence (one planted fault under word-disable) must produce a
    /// deny whose message carries the shrunk reproducer.
    #[test]
    fn planted_fault_is_flagged_and_shrunk() {
        let diags = injected_divergence();
        assert_eq!(diags.len(), 1, "{diags:?}");
        let text = format!("{:?}", diags[0]);
        assert!(text.contains("minimal reproducer"), "{text}");
        assert!(text.contains("from_faulty_indices"), "{text}");
    }
}
