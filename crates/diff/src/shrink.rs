//! Seed-driven reduction of failing cases to minimal reproducers.
//!
//! When an oracle flags a (stream, map) pair, the raw failure is hundreds
//! of accesses long. [`shrink_case`] runs ddmin-style delta debugging
//! over the access stream and the fault list alternately until neither
//! shrinks further, and [`render_pair_test`] prints the survivor as a
//! ready-to-paste `#[test]` for the offending crate.

use crate::stream::Access;

/// A failing differential case: the access stream plus the linear fault
/// indices of each side's fault map (empty = clean).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// The access stream both sides replay.
    pub accesses: Vec<Access>,
    /// Linear fault indices of side A's map.
    pub faults_a: Vec<u32>,
    /// Linear fault indices of side B's map.
    pub faults_b: Vec<u32>,
}

/// Minimises `items` under the failure predicate `fails` with ddmin-style
/// chunk removal: repeatedly delete chunks (halving the chunk size when a
/// pass removes nothing) while the remainder still fails. The result
/// still satisfies `fails`; it is 1-minimal with respect to chunk
/// deletion, not globally minimal.
///
/// If `items` does not fail to begin with it is returned unchanged.
pub fn ddmin<T: Clone>(items: &[T], fails: &dyn Fn(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    if current.is_empty() || !fails(&current) {
        return current;
    }
    let mut chunk = current.len().div_ceil(2);
    loop {
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if fails(&candidate) {
                current = candidate;
                reduced = true;
                // Retry the same start: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if !reduced && chunk == 1 {
            return current;
        }
        chunk = (chunk / 2).max(1).min(current.len().max(1));
    }
}

/// Shrinks a failing [`Case`] by alternately minimising its access stream
/// and each fault list until a full round removes nothing.
pub fn shrink_case(case: &Case, fails: &dyn Fn(&Case) -> bool) -> Case {
    let mut current = case.clone();
    if !fails(&current) {
        return current;
    }
    loop {
        let before = (
            current.accesses.len(),
            current.faults_a.len(),
            current.faults_b.len(),
        );
        current.accesses = ddmin(&current.accesses, &|accesses| {
            fails(&Case {
                accesses: accesses.to_vec(),
                ..current.clone()
            })
        });
        current.faults_a = ddmin(&current.faults_a, &|faults| {
            fails(&Case {
                faults_a: faults.to_vec(),
                ..current.clone()
            })
        });
        current.faults_b = ddmin(&current.faults_b, &|faults| {
            fails(&Case {
                faults_b: faults.to_vec(),
                ..current.clone()
            })
        });
        let after = (
            current.accesses.len(),
            current.faults_a.len(),
            current.faults_b.len(),
        );
        if after == before {
            return current;
        }
    }
}

fn render_accesses(accesses: &[Access]) -> String {
    let items: Vec<String> = accesses
        .iter()
        .map(|a| match a {
            Access::Read(addr) => format!("Access::Read({addr:#x})"),
            Access::Write(addr) => format!("Access::Write({addr:#x})"),
        })
        .collect();
    format!("vec![{}]", items.join(", "))
}

fn render_map(geom_expr: &str, faults: &[u32]) -> String {
    if faults.is_empty() {
        format!("FaultMap::fault_free(&{geom_expr})")
    } else {
        let list: Vec<String> = faults.iter().map(u32::to_string).collect();
        format!(
            "FaultMap::from_faulty_indices(&{geom_expr}, [{}])",
            list.join(", ")
        )
    }
}

/// Renders a shrunk case as a ready-to-paste `#[test]` asserting the two
/// paired runs agree. `kind_a`/`kind_b` and `geom_a`/`geom_b` are Rust
/// expressions (e.g. `SchemeKind::Conventional`,
/// `CacheGeometry::dsn_l1()`); `note` becomes the doc comment.
pub fn render_pair_test(
    name: &str,
    case: &Case,
    kind_a: &str,
    kind_b: &str,
    geom_a: &str,
    geom_b: &str,
    note: &str,
) -> String {
    format!(
        "/// {note}\n\
         #[test]\n\
         fn {name}() {{\n\
         \x20   use dvs_diff::{{first_divergence, run_stream, Access}};\n\
         \x20   use dvs_schemes::SchemeKind;\n\
         \x20   use dvs_sram::{{CacheGeometry, FaultMap}};\n\
         \n\
         \x20   let map_a = {map_a};\n\
         \x20   let map_b = {map_b};\n\
         \x20   let accesses = {accesses};\n\
         \x20   let a = run_stream({kind_a}, &map_a, &accesses);\n\
         \x20   let b = run_stream({kind_b}, &map_b, &accesses);\n\
         \x20   assert_eq!(first_divergence(&a, &b), None);\n\
         }}\n",
        map_a = render_map(geom_a, &case.faults_a),
        map_b = render_map(geom_b, &case.faults_b),
        accesses = render_accesses(&case.accesses),
    )
}

/// Renders a shrunk fault-addition case as a ready-to-paste `#[test]`
/// asserting that growing the fault map (side A ⊆ side B) never turns a
/// miss into a hit for `kind`.
pub fn render_fault_addition_test(
    name: &str,
    case: &Case,
    kind: &str,
    geom: &str,
    note: &str,
) -> String {
    format!(
        "/// {note}\n\
         #[test]\n\
         fn {name}() {{\n\
         \x20   use dvs_diff::{{run_stream, Access, Event}};\n\
         \x20   use dvs_schemes::{{SchemeKind, ServedFrom}};\n\
         \x20   use dvs_sram::{{CacheGeometry, FaultMap}};\n\
         \n\
         \x20   let base_map = {map_a};\n\
         \x20   let plus_map = {map_b};\n\
         \x20   let accesses = {accesses};\n\
         \x20   let base = run_stream({kind}, &base_map, &accesses);\n\
         \x20   let plus = run_stream({kind}, &plus_map, &accesses);\n\
         \x20   for (i, (b, p)) in base.iter().zip(&plus).enumerate() {{\n\
         \x20       if let (Event::Read {{ source: sb, .. }}, Event::Read {{ source: sp, .. }}) = (b, p) {{\n\
         \x20           assert!(\n\
         \x20               !(*sb != ServedFrom::L1 && *sp == ServedFrom::L1),\n\
         \x20               \"access {{i}}: miss became a hit after adding a fault\",\n\
         \x20           );\n\
         \x20       }}\n\
         \x20   }}\n\
         }}\n",
        map_a = render_map(geom, &case.faults_a),
        map_b = render_map(geom, &case.faults_b),
        accesses = render_accesses(&case.accesses),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddmin_isolates_a_single_culprit() {
        let items: Vec<u32> = (0..100).collect();
        let shrunk = ddmin(&items, &|xs| xs.contains(&73));
        assert_eq!(shrunk, vec![73]);
    }

    #[test]
    fn ddmin_keeps_interacting_pairs() {
        let items: Vec<u32> = (0..64).collect();
        let shrunk = ddmin(&items, &|xs| xs.contains(&3) && xs.contains(&60));
        assert_eq!(shrunk, vec![3, 60]);
    }

    #[test]
    fn ddmin_returns_non_failing_input_unchanged() {
        let items = vec![1u32, 2, 3];
        assert_eq!(ddmin(&items, &|_| false), items);
    }

    #[test]
    fn shrink_case_reaches_joint_fixpoint() {
        let case = Case {
            accesses: (0..50).map(Access::Read).collect(),
            faults_a: vec![],
            faults_b: (0..20).collect(),
        };
        // Fails iff the stream still reads address 17 AND fault 5 remains.
        let shrunk = shrink_case(&case, &|c| {
            c.accesses.contains(&Access::Read(17)) && c.faults_b.contains(&5)
        });
        assert_eq!(shrunk.accesses, vec![Access::Read(17)]);
        assert_eq!(shrunk.faults_b, vec![5]);
        assert!(shrunk.faults_a.is_empty());
    }

    #[test]
    fn rendered_test_mentions_every_ingredient() {
        let case = Case {
            accesses: vec![Access::Read(0x40), Access::Write(0x44)],
            faults_a: vec![],
            faults_b: vec![9],
        };
        let text = render_pair_test(
            "shrunk_repro",
            &case,
            "SchemeKind::Conventional",
            "SchemeKind::SimpleWordDisable",
            "CacheGeometry::dsn_l1()",
            "CacheGeometry::dsn_l1()",
            "Found by the clean-map oracle.",
        );
        assert!(text.contains("fn shrunk_repro()"));
        assert!(text.contains("Access::Read(0x40)"));
        assert!(text.contains("from_faulty_indices"));
        assert!(text.contains("fault_free"));
        assert!(text.contains("first_divergence"));
    }
}
