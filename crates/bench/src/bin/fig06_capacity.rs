//! Figure 6: (a) worst-case distribution of the effective I-cache
//! capacity for basicmath at 400 mV; (b) basic-block vs fault-free-chunk
//! size distributions.

use dvs_bench::parse_args;
use dvs_core::figures::fig6;
use dvs_sram::MilliVolts;
use dvs_workloads::Benchmark;

fn main() {
    let opts = parse_args();
    let f = fig6(
        Benchmark::Basicmath,
        MilliVolts::new(400),
        opts.cfg.maps.min(32),
        opts.cfg.trace_instrs.max(400_000),
        100_000,
        opts.cfg.seed,
    );
    println!("Figure 6a — effective I-cache capacity per interval (basicmath @ 400 mV)");
    println!(
        "  fault-free fraction of the cache: {:.1}%",
        f.fault_free_fraction * 100.0
    );
    let mut sorted = f.capacity_fractions.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |q: f64| sorted[(q * (sorted.len() - 1) as f64) as usize] * 100.0;
    println!(
        "  capacity used: min {:.1}%  p25 {:.1}%  median {:.1}%  p75 {:.1}%  max {:.1}%  ({} intervals)",
        pct(0.0), pct(0.25), pct(0.5), pct(0.75), pct(1.0), sorted.len()
    );
    println!();
    println!("Figure 6b — size distributions (words)");
    println!(
        "{:>6} {:>14} {:>16}",
        "size", "basic blocks", "fault-free chunks"
    );
    for ((s, b), (_, c)) in f.block_size_hist.iter().zip(&f.chunk_size_hist) {
        let label = if *s == 16 {
            ">=16".to_string()
        } else {
            s.to_string()
        };
        println!("{label:>6} {:>13.1}% {:>15.1}%", b * 100.0, c * 100.0);
    }
}
