//! `dvs-verify` — dataflow fault-safety proofs and bounded model
//! checking over linked images.
//!
//! Where `dvs-lint` runs the full lint registry over independently
//! sampled fault maps, `dvs-verify` runs the *verification* passes
//! (`verify/fault-reach`, `verify/value-range`, `verify/remap-liveness`)
//! down the incremental [`FaultChain`] voltage ladder: one chain per map
//! seed, advanced monotonically from 760 mV to the deepest requested
//! point, re-linking and re-proving each benchmark at every requested
//! rung. The fault sets nest by construction, so a proof failing at a
//! lower rung but passing above it localises the voltage where an image
//! first becomes unsafe.
//!
//! With `--bounded-depth N` (default 4, `0` disables) the bounded model
//! checker additionally proves the scheme state machines' LRU-stack,
//! inclusion and clean-map-equivalence invariants over every access
//! sequence to depth `N` on a tiny geometry (`verify/bounded-model`).
//!
//! Exit codes: `0` everything proven, `1` warn-level findings only, `2`
//! at least one deny-severity finding or a usage error.

use std::process::ExitCode;

use dvs_analysis::{
    render_json_envelope, render_text, AnalysisInput, LintMeta, LintRegistry, Report, Severity,
};
use dvs_diff::bounded_suite;
use dvs_linker::{adaptive_max_block_words, bbr_transform, BbrLinker, Diagnostic, Location};
use dvs_sram::{ladder_mv, CacheGeometry, FaultChain, FaultModel, MilliVolts, PfailModel};
use dvs_workloads::{Benchmark, Layout};

/// Versioned schema tag of the `--json` envelope.
const VERIFY_SCHEMA: &str = "dvs-verify/1";

struct Options {
    voltages: Vec<u32>,
    benchmarks: Vec<Benchmark>,
    maps: u64,
    seed: u64,
    model: FaultModel,
    json: bool,
    inject_misplacement: bool,
    bounded_depth: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            voltages: vec![760, 600, 480, 400],
            benchmarks: Benchmark::ALL.to_vec(),
            maps: 2,
            seed: 0,
            model: FaultModel::Iid,
            json: false,
            inject_misplacement: false,
            bounded_depth: 4,
        }
    }
}

const USAGE: &str = "usage: dvs-verify [options]
  --voltages LIST   comma-separated mV points (default 760,600,480,400)
  --benchmarks LIST comma-separated benchmark names (default: all ten)
  --maps N          fault chains grown per benchmark (default 2)
  --seed N          base RNG seed for the fault chains (default 0)
  --model NAME      fault model the chains sample under: iid, rowcol or
                    clustered (default iid)
  --bounded-depth N bounded model-checking depth, 0 to skip (default 4)
  --json            emit one dvs-verify/1 JSON document instead of text
  --inject-misplacement
                    corrupt one placement per image (self-test: the
                    fault-reachability proof must fail and the exit
                    code must be 2)
  --help            print this help";

fn parse_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| {
        let full = b.name();
        full.eq_ignore_ascii_case(name)
            || full
                .rsplit('.')
                .next()
                .is_some_and(|short| short.eq_ignore_ascii_case(name))
    })
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match arg.as_str() {
            "--voltages" => {
                opts.voltages = value("--voltages")?
                    .split(',')
                    .map(|v| v.trim().parse::<u32>().map_err(|_| format!("bad mV: {v}")))
                    .collect::<Result<_, _>>()?;
            }
            "--benchmarks" => {
                opts.benchmarks = value("--benchmarks")?
                    .split(',')
                    .map(|n| {
                        parse_benchmark(n.trim()).ok_or_else(|| format!("unknown benchmark: {n}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--maps" => {
                opts.maps = value("--maps")?
                    .parse()
                    .map_err(|_| "--maps expects an integer".to_string())?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--model" => {
                let name = value("--model")?;
                opts.model = FaultModel::parse(name.trim())
                    .ok_or_else(|| format!("unknown model: {name}"))?;
            }
            "--bounded-depth" => {
                opts.bounded_depth = value("--bounded-depth")?
                    .parse()
                    .map_err(|_| "--bounded-depth expects an integer".to_string())?;
            }
            "--json" => opts.json = true,
            "--inject-misplacement" => opts.inject_misplacement = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.voltages.is_empty() || opts.benchmarks.is_empty() || opts.maps == 0 {
        return Err("nothing to do: empty voltage, benchmark or map list".to_string());
    }
    Ok(opts)
}

/// Moves block 0 onto the first defective cache word (or one word past
/// the image end on a fault-free map), so the fault-reachability proof
/// has a real violation to find.
fn corrupt_layout(layout: &Layout, fmap: &dvs_sram::FaultMap, functions: usize) -> Layout {
    let mut starts: Vec<u64> = (0..layout.num_blocks())
        .map(|id| layout.block_start(id))
        .collect();
    let target = fmap
        .iter_faulty_linear()
        .next()
        .map_or(layout.end() / 4 + 1, u64::from);
    starts[0] = target * 4;
    let end = layout.end().max(starts[0] + 4);
    Layout::from_parts(starts, vec![0; functions], end)
}

/// The rungs one chain advances through: the canonical 20 mV ladder down
/// to the deepest requested point, merged with any off-grid requested
/// voltages, descending. Every rung advances the chain; only requested
/// rungs are verified.
fn chain_rungs(voltages: &[u32]) -> Vec<u32> {
    let lowest = voltages.iter().copied().min().expect("non-empty voltages");
    let mut rungs = ladder_mv(lowest);
    for &v in voltages {
        if !rungs.contains(&v) {
            rungs.push(v);
        }
    }
    rungs.sort_unstable_by(|a, b| b.cmp(a));
    rungs.dedup();
    rungs
}

fn run(opts: &Options) -> Vec<Report> {
    let geom = CacheGeometry::dsn_l1();
    let model = PfailModel::dsn45();
    let registry = LintRegistry::verification();
    let rungs = chain_rungs(&opts.voltages);
    let mut reports = Vec::new();
    for bench in &opts.benchmarks {
        let wl = bench.build(opts.seed);
        for map in 0..opts.maps {
            let chain_seed = opts.seed.wrapping_add(map).wrapping_mul(0x9E37_79B9);
            let mut chain = FaultChain::with_model(&geom, chain_seed, opts.model);
            for &mv in &rungs {
                let p_word = model.pfail_word(MilliVolts::new(mv));
                chain.advance_to(p_word);
                if !opts.voltages.contains(&mv) {
                    continue;
                }
                let subject = format!("{}@{mv}mV/chain{map}", bench.name());
                let fmap = chain.map();
                let transformed = bbr_transform(wl.program(), adaptive_max_block_words(p_word));
                let diagnostics = match BbrLinker::new(geom).link(&transformed, fmap) {
                    Ok(image) => {
                        let (program, layout) = image.into_parts();
                        let layout = if opts.inject_misplacement {
                            corrupt_layout(&layout, fmap, program.functions().len())
                        } else {
                            layout
                        };
                        registry.run(&AnalysisInput {
                            program: &program,
                            layout: &layout,
                            fmap,
                            original: Some(wl.program()),
                        })
                    }
                    Err(e) => vec![Diagnostic::warn(
                        "link-failure",
                        Location::Image,
                        format!("linker gave up at {mv} mV: {e}"),
                    )],
                };
                reports.push(Report::new(subject, diagnostics));
            }
        }
    }
    if opts.bounded_depth > 0 {
        reports.push(Report::new(
            format!("schemes@bounded/depth{}", opts.bounded_depth),
            bounded_suite(opts.bounded_depth),
        ));
    }
    reports
}

fn lint_metas(opts: &Options) -> Vec<LintMeta> {
    let mut metas: Vec<LintMeta> = LintRegistry::verification()
        .lints()
        .iter()
        .map(|l| LintMeta {
            name: l.id(),
            level: l.severity().name(),
        })
        .collect();
    if opts.bounded_depth > 0 {
        metas.push(LintMeta {
            name: dvs_linker::lint_ids::VERIFY_BOUNDED_MODEL,
            level: Severity::Deny.name(),
        });
    }
    metas
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("dvs-verify: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let reports = run(&opts);
    if opts.json {
        println!(
            "{}",
            render_json_envelope(VERIFY_SCHEMA, &lint_metas(&opts), &reports)
        );
    } else {
        print!("{}", render_text(&reports));
    }
    let denied = reports.iter().any(|r| r.deny_count() > 0);
    let warned = reports.iter().any(|r| r.warn_count() > 0);
    if denied {
        ExitCode::from(2)
    } else if warned {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
