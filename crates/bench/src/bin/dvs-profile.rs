//! `dvs-profile` — per-subsystem observability profile of the Monte-Carlo
//! pipeline across the DVFS sweep.
//!
//! For each operating point the tool runs the selected benchmarks under
//! one scheme with a metrics recorder attached (plus a BIST pass at that
//! point's failure rate) and prints a per-subsystem breakdown table, or
//! the full metrics as JSON with `--json`.

use std::path::PathBuf;
use std::process::ExitCode;

use dvs_bench::baseline::{Baseline, DEFAULT_BASELINE_PATH, DEFAULT_TOLERANCE};
use dvs_bench::profile::{run_profile, ProfileOptions};
use dvs_sram::MilliVolts;
use dvs_workloads::Benchmark;

const USAGE: &str = "usage: dvs-profile [options]
  --benchmarks LIST  comma-separated benchmark names (default: all ten)
  --voltages LIST    comma-separated operating points in mV (default: 760,560,520,480,440,400)
  --maps N           fault maps per cell
  --trace-instrs N   dynamic instructions per trial
  --seed N           root seed
  --threads N        worker threads
  --json             emit machine-readable JSON instead of the table
  --no-timings       omit volatile wall-clock sections from the JSON
  --selfcheck        validate the JSON rendering before printing
  --bless-baseline   write the sweep's trials/sec to the baseline file
  --check-baseline   compare against the baseline file; exit non-zero on
                     a >10% throughput regression (best of three sweeps)
                     or a config mismatch
  --baseline-path P  baseline file location (default BENCH_baseline.json)
  -h, --help         this text";

fn parse_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| {
        let full = b.name();
        // Accept both "401.bzip2" and the bare "bzip2".
        full == name || full.split_once('.').is_some_and(|(_, bare)| bare == name)
    })
}

/// Profile options plus the binary-only baseline flags.
struct CliOptions {
    profile: ProfileOptions,
    bless_baseline: bool,
    check_baseline: bool,
    baseline_path: PathBuf,
}

fn parse(mut args: impl Iterator<Item = String>) -> Result<CliOptions, String> {
    let mut opts = ProfileOptions::default();
    let mut bless_baseline = false;
    let mut check_baseline = false;
    let mut baseline_path = PathBuf::from(DEFAULT_BASELINE_PATH);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match arg.as_str() {
            "--benchmarks" => {
                opts.benchmarks = value("--benchmarks")?
                    .split(',')
                    .map(|n| parse_benchmark(n).ok_or_else(|| format!("unknown benchmark {n}")))
                    .collect::<Result<_, _>>()?;
            }
            "--voltages" => {
                opts.voltages = value("--voltages")?
                    .split(',')
                    .map(|v| {
                        v.parse::<u32>()
                            .map(MilliVolts::new)
                            .map_err(|_| format!("bad voltage {v}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--maps" => {
                opts.cfg.maps = value("--maps")?
                    .parse()
                    .map_err(|_| "--maps expects an integer".to_string())?;
            }
            "--trace-instrs" => {
                opts.cfg.trace_instrs = value("--trace-instrs")?
                    .parse()
                    .map_err(|_| "--trace-instrs expects an integer".to_string())?;
            }
            "--seed" => {
                opts.cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--threads" => {
                opts.cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects an integer".to_string())?;
            }
            "--json" => opts.json = true,
            "--no-timings" => opts.include_timings = false,
            "--selfcheck" => opts.selfcheck = true,
            "--bless-baseline" => bless_baseline = true,
            "--check-baseline" => check_baseline = true,
            "--baseline-path" => {
                baseline_path = PathBuf::from(value("--baseline-path")?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}; try --help")),
        }
    }
    if opts.benchmarks.is_empty() {
        return Err("no benchmarks selected".into());
    }
    if opts.voltages.is_empty() {
        return Err("no voltages selected".into());
    }
    if bless_baseline && check_baseline {
        return Err("--bless-baseline and --check-baseline are mutually exclusive".into());
    }
    Ok(CliOptions {
        profile: opts,
        bless_baseline,
        check_baseline,
        baseline_path,
    })
}

fn main() -> ExitCode {
    let cli = match parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let opts = &cli.profile;
    eprintln!(
        "profiling {} benchmarks x {} voltages x {} maps ({} instrs/trial)...",
        opts.benchmarks.len(),
        opts.voltages.len(),
        opts.cfg.maps,
        opts.cfg.trace_instrs
    );
    let report = run_profile(opts);
    if opts.selfcheck {
        if let Err(e) = report.validate() {
            eprintln!("error: self-check failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("self-check passed");
    }
    if opts.json {
        println!("{}", report.to_json(opts.include_timings));
    } else {
        print!("{}", report.to_text());
    }
    if cli.bless_baseline {
        let baseline = Baseline::from_report(&report);
        if let Err(e) = std::fs::write(&cli.baseline_path, format!("{}\n", baseline.to_json())) {
            eprintln!("error: cannot write {}: {e}", cli.baseline_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "blessed {} at {:.1} trials/s",
            cli.baseline_path.display(),
            baseline.trials_per_sec
        );
    }
    if cli.check_baseline {
        let baseline = match Baseline::load(&cli.baseline_path) {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Wall-clock throughput is noisy (background load can slow an
        // identical binary by tens of percent), so the gate is best-of-
        // three: rerun the sweep on a throughput miss. Config mismatches
        // are deterministic and fail immediately.
        let mut result = baseline.check(&report, DEFAULT_TOLERANCE);
        let mut retries = 0;
        while let Err(e) = &result {
            if retries == 2 || !e.starts_with("throughput regressed") {
                break;
            }
            retries += 1;
            eprintln!("warning: {e}; retrying sweep ({retries}/2)");
            let retry_report = run_profile(opts);
            result = baseline.check(&retry_report, DEFAULT_TOLERANCE);
        }
        match result {
            Ok(msg) => eprintln!("{msg}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(String::from)
    }

    #[test]
    fn parses_full_flag_set() {
        let cli = parse(argv(
            "--benchmarks crc32,bzip2 --voltages 760,400 --maps 5 --seed 7 \
             --trace-instrs 1000 --threads 2 --json --no-timings --selfcheck \
             --check-baseline --baseline-path /tmp/b.json",
        ))
        .unwrap();
        let opts = &cli.profile;
        assert_eq!(opts.benchmarks, vec![Benchmark::Crc32, Benchmark::Bzip2]);
        assert_eq!(
            opts.voltages,
            vec![MilliVolts::new(760), MilliVolts::new(400)]
        );
        assert_eq!(opts.cfg.maps, 5);
        assert_eq!(opts.cfg.seed, 7);
        assert_eq!(opts.cfg.trace_instrs, 1000);
        assert_eq!(opts.cfg.threads, 2);
        assert!(opts.json && !opts.include_timings && opts.selfcheck);
        assert!(cli.check_baseline && !cli.bless_baseline);
        assert_eq!(cli.baseline_path, PathBuf::from("/tmp/b.json"));
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse(argv("--bogus")).is_err());
        assert!(parse(argv("--benchmarks nosuch")).is_err());
        assert!(parse(argv("--voltages abc")).is_err());
        assert!(parse(argv("--maps")).is_err());
        assert!(parse(argv("--bless-baseline --check-baseline")).is_err());
    }

    #[test]
    fn defaults_cover_the_full_sweep() {
        let cli = parse(argv("")).unwrap();
        let opts = &cli.profile;
        assert_eq!(opts.benchmarks.len(), 10);
        assert_eq!(opts.voltages.len(), 6);
        assert!(!opts.json);
        assert!(opts.include_timings);
        assert!(!cli.bless_baseline && !cli.check_baseline);
        assert_eq!(cli.baseline_path, PathBuf::from(DEFAULT_BASELINE_PATH));
    }
}
