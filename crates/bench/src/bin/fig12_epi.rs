//! Figure 12: energy per instruction normalized to the conventional
//! 760 mV baseline (geometric mean, per the paper).

use dvs_bench::{evaluator, parse_args};
use dvs_core::figures::{default_benchmarks, default_voltages, fig12};

fn main() {
    let opts = parse_args();
    let mut eval = evaluator(&opts);
    let benches = default_benchmarks();
    let volts = default_voltages();
    let cells = fig12(&mut eval, &benches, &volts);
    println!("Figure 12 — normalized EPI (vs conventional 6T cache at 760 mV = 1.000)");
    print!("{:<14}", "scheme");
    for v in &volts {
        print!(" {:>9}", format!("{v}"));
    }
    println!();
    for chunk in cells.chunks(volts.len()) {
        print!("{:<14}", chunk[0].scheme.name());
        for c in chunk {
            print!(" {:>9.3}", c.geomean);
        }
        println!();
    }
    // The paper's headline: FFW+BBR at 400 mV cuts EPI by 64 %.
    if let Some(c) = cells
        .iter()
        .find(|c| c.scheme.name() == "FFW+BBR" && c.vcc_mv == 400)
    {
        println!();
        println!(
            "FFW+BBR @ 400 mV: EPI = {:.3} => {:.0}% reduction (paper: 64%)",
            c.geomean,
            (1.0 - c.geomean) * 100.0
        );
    }
}
