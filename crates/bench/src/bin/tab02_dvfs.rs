//! Table II: the DVFS operating points.

use dvs_core::DvfsPoint;

fn main() {
    println!("Table II — DVFS configuration");
    println!("{:>10} {:>12} {:>12}", "mV", "MHz", "P_fail(bit)");
    for p in DvfsPoint::table2() {
        println!(
            "{:>10} {:>12} {:>12.2e}",
            p.vcc.get(),
            p.freq_mhz,
            p.pfail_bit
        );
    }
}
