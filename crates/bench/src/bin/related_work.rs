//! Related-work comparison beyond the paper's six plotted schemes:
//! line disable, way disable and SECDED ECC versus the proposal — the
//! quantitative version of the paper's Section III arguments.

use dvs_bench::{evaluator, parse_args};
use dvs_core::{EvalConfig, Scheme};
use dvs_sram::ecc::{pfail_word_secded, secded_overhead, vccmin_with_secded};
use dvs_sram::{MilliVolts, PfailModel};
use dvs_workloads::Benchmark;

fn main() {
    let opts = parse_args();
    let model = PfailModel::dsn45();

    println!("=== SECDED ECC (Section III-B: 'quickly overwhelmed') ===");
    println!(
        "check-bit overhead for 32-bit words: {:.1}%",
        secded_overhead(32) * 100.0
    );
    println!("{:>8} {:>14} {:>16}", "mV", "raw word", "SECDED word");
    for mv in [560u32, 480, 440, 400] {
        let p = model.pfail_bit(MilliVolts::new(mv));
        let raw = 1.0 - (1.0 - p).powi(32);
        println!(
            "{:>8} {:>14.3e} {:>16.3e}",
            mv,
            raw,
            pfail_word_secded(p, 32)
        );
    }
    println!(
        "Vccmin(32KB, 99.9%): raw {} vs SECDED {} — still far above 400 mV",
        model.vccmin(32 * 1024 * 8, 0.999),
        vccmin_with_secded(&model, 32, 8192, 0.999)
    );

    println!();
    println!("=== Coarse disabling (Section III-B) vs the proposal ===");
    let mut capped = opts.clone();
    capped.cfg = EvalConfig {
        maps: opts.cfg.maps.min(8),
        ..opts.cfg
    };
    let mut eval = evaluator(&capped);
    let schemes = [
        Scheme::FfwBbr,
        Scheme::SimpleWdis,
        Scheme::WordSub,
        Scheme::LineDisable,
        Scheme::WayDisable,
        Scheme::TsCache,
    ];
    println!("normalized runtime vs defect-free (mean over Monte-Carlo maps):");
    print!("{:<14}", "scheme");
    for mv in [560u32, 480, 400] {
        print!(" {:>10}", format!("{mv}mV"));
    }
    println!();
    for s in schemes {
        print!("{:<14}", s.name());
        for mv in [560u32, 480, 400] {
            match eval.normalized_runtime(Benchmark::Qsort, s, MilliVolts::new(mv)) {
                Ok(r) => print!(" {:>10.3}", r.mean),
                Err(_) => print!(" {:>10}", "n/a"),
            }
        }
        println!();
    }
    println!();
    println!("reading: line/way disable degrade gracefully at 560 mV but forfeit the");
    println!("cache as defects spread — word-granularity schemes are mandatory below 480 mV.");
}
