//! Figure 11: L2 accesses per 1000 instructions, per scheme per voltage.

use dvs_bench::{evaluator, fmt_ci, parse_args};
use dvs_core::figures::{default_benchmarks, default_voltages, fig11};

fn main() {
    let opts = parse_args();
    let mut eval = evaluator(&opts);
    let benches = default_benchmarks();
    let volts = default_voltages();
    let cells = fig11(&mut eval, &benches, &volts);
    println!("Figure 11 — L2 accesses per 1000 instructions");
    print!("{:<14}", "scheme");
    for v in &volts {
        print!(" {:>14}", format!("{v}"));
    }
    println!();
    for chunk in cells.chunks(volts.len()) {
        print!("{:<14}", chunk[0].scheme.name());
        for c in chunk {
            print!(" {:>14}", fmt_ci(&c.summary));
        }
        println!();
    }
}
