//! `dvs-diff` — differential and metamorphic correctness sweep.
//!
//! Runs all four paired-run oracle families and all three metamorphic
//! sweeps from `dvs-diff` (the crate) over bench10 and the requested
//! voltage points:
//!
//! * clean-map equivalence, at stream level (one synthetic stream per
//!   benchmark) and end-to-end through the evaluator at 760 mV;
//! * SA/DM mode agreement (BBR vs one-way conventional, plus the
//!   `CacheCore` mode round-trip freshness check);
//! * persistence identity (a two-voltage sweep run plain vs
//!   store-backed vs store-reloaded vs size-capped — eviction mid-sweep
//!   and a rerun over the evicted store — vs recorder-on vs
//!   arena-disabled);
//! * Wilkerson capacity halving;
//! * packed-vs-reference equivalence of the word-packed hot-path queries
//!   (popcounts, per-frame fault masks, word-chunked occupancy scans);
//! * voltage monotonicity of word misses over the requested sweep,
//!   window-growth containment, and miss-stability under fault addition.
//!
//! Any divergence is shrunk to a minimal reproducer and rendered into
//! the diagnostic as a ready-to-paste `#[test]`.
//!
//! Exit codes: `0` all oracles clean, `1` at least one deny-severity
//! finding, `2` usage error.

use std::process::ExitCode;

use dvs_analysis::{has_deny, render_json, render_text, Report};
use dvs_diff::{metamorphic, oracles};
use dvs_sram::FaultModel;
use dvs_workloads::Benchmark;

struct Options {
    voltages: Vec<u32>,
    benchmarks: Vec<Benchmark>,
    models: Vec<FaultModel>,
    seed: u64,
    stream_len: usize,
    store_max_bytes: u64,
    json: bool,
    inject_divergence: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            voltages: vec![760, 600, 480, 400],
            benchmarks: Benchmark::ALL.to_vec(),
            models: FaultModel::ALL.to_vec(),
            seed: 0,
            stream_len: 2_000,
            // One byte evicts after every save: maximal eviction churn
            // for the persistence-identity family.
            store_max_bytes: 1,
            json: false,
            inject_divergence: false,
        }
    }
}

const USAGE: &str = "usage: dvs-diff [options]
  --voltages LIST   comma-separated mV points for the monotonicity sweep
                    (default 760,600,480,400)
  --benchmarks LIST comma-separated benchmark names (default: all ten)
  --models LIST     comma-separated fault models for the model-dependent
                    families (iid, rowcol, clustered; default: all three)
  --seed N          base seed for streams and fault maps (default 0)
  --stream-len N    accesses per synthetic stream (default 2000)
  --store-max-bytes N
                    store size cap for the capped persistence variants
                    (default 1: evict after every save)
  --json            emit one JSON document instead of text
  --inject-divergence
                    plant a fault under word-disable and diff it against
                    the clean run (self-test: the harness must flag it,
                    shrink it, and exit 1)
  --help            print this help";

fn parse_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| {
        let full = b.name();
        full.eq_ignore_ascii_case(name)
            || full
                .rsplit('.')
                .next()
                .is_some_and(|short| short.eq_ignore_ascii_case(name))
    })
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match arg.as_str() {
            "--voltages" => {
                opts.voltages = value("--voltages")?
                    .split(',')
                    .map(|v| v.trim().parse::<u32>().map_err(|_| format!("bad mV: {v}")))
                    .collect::<Result<_, _>>()?;
            }
            "--benchmarks" => {
                opts.benchmarks = value("--benchmarks")?
                    .split(',')
                    .map(|n| {
                        parse_benchmark(n.trim()).ok_or_else(|| format!("unknown benchmark: {n}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--models" => {
                opts.models = value("--models")?
                    .split(',')
                    .map(|n| {
                        FaultModel::parse(n.trim()).ok_or_else(|| format!("unknown model: {n}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--stream-len" => {
                opts.stream_len = value("--stream-len")?
                    .parse()
                    .map_err(|_| "--stream-len expects an integer".to_string())?;
            }
            "--store-max-bytes" => {
                opts.store_max_bytes = value("--store-max-bytes")?
                    .parse()
                    .map_err(|_| "--store-max-bytes expects an integer".to_string())?;
            }
            "--json" => opts.json = true,
            "--inject-divergence" => opts.inject_divergence = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.voltages.is_empty()
        || opts.benchmarks.is_empty()
        || opts.models.is_empty()
        || opts.stream_len == 0
    {
        return Err("nothing to do: empty voltage, benchmark, model or stream".to_string());
    }
    Ok(opts)
}

fn run(opts: &Options) -> Vec<Report> {
    let mut reports = Vec::new();

    // Stream-level families, one seed (and therefore one synthetic
    // stream) per benchmark so the sweep covers ten distinct streams.
    for (i, bench) in opts.benchmarks.iter().enumerate() {
        let seed = opts.seed.wrapping_add(i as u64);
        reports.push(Report::new(
            format!("{}@clean-map/seed{seed}", bench.name()),
            oracles::clean_map_equivalence(seed, opts.stream_len),
        ));
        reports.push(Report::new(
            format!("{}@sa-dm/seed{seed}", bench.name()),
            oracles::sa_dm_equivalence(seed, opts.stream_len),
        ));
        reports.push(Report::new(
            format!("{}@capacity-halving/seed{seed}", bench.name()),
            oracles::wilkerson_halving(seed, opts.stream_len),
        ));
        reports.push(Report::new(
            format!("{}@fault-addition/seed{seed}", bench.name()),
            metamorphic::fault_addition(seed, opts.stream_len),
        ));
        for &model in &opts.models {
            reports.push(Report::new(
                format!(
                    "{}@voltage-monotone/{}/seed{seed}",
                    bench.name(),
                    model.name()
                ),
                metamorphic::voltage_monotonicity(seed, &opts.voltages, opts.stream_len, model),
            ));
        }
    }

    // Geometry-exhaustive window containment, once.
    reports.push(Report::new(
        "ffw@window-growth".to_string(),
        metamorphic::window_growth(),
    ));

    // Packed-vs-reference: the word-packed hot-path queries against
    // their retained per-bit references, on maps drawn down the ladder
    // under each requested fault model.
    for &model in &opts.models {
        reports.push(Report::new(
            format!(
                "hotpath@packed-reference/{}/seed{}",
                model.name(),
                opts.seed
            ),
            oracles::packed_reference_equivalence(opts.seed, &opts.voltages, model),
        ));
    }

    // End-to-end families through the evaluator: clean equivalence at
    // 760 mV over the real bench10 workloads (once per fault model — a
    // yield-clean point must be clean under every injection backend),
    // and persistence identity for the first requested benchmark.
    for &model in &opts.models {
        reports.push(Report::new(
            format!("evaluator@clean-760mV/{}", model.name()),
            oracles::evaluator_clean_equivalence(&opts.benchmarks, opts.seed, model),
        ));
    }
    reports.push(Report::new(
        format!("evaluator@persistence/{}", opts.benchmarks[0].name()),
        oracles::persistence_identity(
            opts.benchmarks[0],
            opts.seed,
            opts.models[0],
            Some(opts.store_max_bytes),
        ),
    ));

    if opts.inject_divergence {
        reports.push(Report::new(
            "self-test@injected-divergence".to_string(),
            oracles::injected_divergence(),
        ));
    }
    reports
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("dvs-diff: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let reports = run(&opts);
    if opts.json {
        println!("{}", render_json(&reports));
    } else {
        print!("{}", render_text(&reports));
    }
    let denied = reports.iter().any(|r| has_deny(&r.diagnostics));
    if denied {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
