//! Figure 10: run time normalized to the defect-free cache at each DVFS
//! operating point, for every compared scheme.

use dvs_bench::{evaluator, fmt_ci, parse_args};
use dvs_core::figures::{default_benchmarks, default_voltages, fig10};

fn main() {
    let opts = parse_args();
    let mut eval = evaluator(&opts);
    let benches = default_benchmarks();
    let volts = default_voltages();
    eprintln!(
        "running {} schemes x {} voltages x {} benchmarks x {} maps ({} instrs/trial)...",
        6,
        volts.len(),
        benches.len(),
        opts.cfg.maps,
        opts.cfg.trace_instrs
    );
    println!("Figure 10 — normalized runtime (vs defect-free baseline at each point)");
    if opts.split {
        // Per-benchmark groups, as the paper's bar chart draws them.
        for &b in &benches {
            println!("\n[{b}]");
            print!("{:<14}", "scheme");
            for v in &volts {
                print!(" {:>14}", format!("{v}"));
            }
            println!();
            let cells = fig10(&mut eval, &[b], &volts);
            for chunk in cells.chunks(volts.len()) {
                print!("{:<14}", chunk[0].scheme.name());
                for c in chunk {
                    print!(" {:>14}", fmt_ci(&c.summary));
                }
                println!();
            }
        }
        return;
    }
    let cells = fig10(&mut eval, &benches, &volts);
    print!("{:<14}", "scheme");
    for v in &volts {
        print!(" {:>14}", format!("{v}"));
    }
    println!();
    for chunk in cells.chunks(volts.len()) {
        print!("{:<14}", chunk[0].scheme.name());
        for c in chunk {
            print!(" {:>14}", fmt_ci(&c.summary));
        }
        println!();
    }
}
