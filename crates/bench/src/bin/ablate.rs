//! Ablation studies: relaxation, split threshold, window placement and
//! buffer capacity (see `dvs_core::ablations`).

use dvs_bench::parse_args;
use dvs_core::ablations::{
    buffer_capacity_sweep, relaxation_effect, split_threshold_sweep, window_alignment_effect,
};
use dvs_sram::MilliVolts;
use dvs_workloads::Benchmark;

fn main() {
    let opts = parse_args();
    let seed = opts.cfg.seed;
    let instrs = opts.cfg.trace_instrs;
    let maps = opts.cfg.maps.min(8);

    println!("=== Ablation 1: linker jump relaxation (dynamic BBR overhead) ===");
    println!(
        "{:>12} {:>10} {:>14} {:>14}",
        "benchmark", "voltage", "with relax", "without"
    );
    for b in [Benchmark::Crc32, Benchmark::Basicmath, Benchmark::Qsort] {
        for mv in [560u32, 480, 400] {
            match relaxation_effect(b, MilliVolts::new(mv), maps, instrs, seed) {
                Ok(e) => println!(
                    "{:>12} {:>8}mV {:>13.2}% {:>13.2}%",
                    b.name(),
                    mv,
                    e.overhead_with * 100.0,
                    e.overhead_without * 100.0
                ),
                Err(err) => println!("{:>12} {:>8}mV  skipped: {err}", b.name(), mv),
            }
        }
    }

    println!();
    println!("=== Ablation 2: block-split threshold @ 400 mV ===");
    println!(
        "{:>10} {:>12} {:>10} {:>14}",
        "max words", "code growth", "link rate", "jump overhead"
    );
    for row in split_threshold_sweep(
        Benchmark::Basicmath,
        MilliVolts::new(400),
        &[6, 8, 12, 16, 24, 32],
        maps,
        instrs,
        seed,
    ) {
        println!(
            "{:>10} {:>11.1}% {:>9.0}% {:>13.2}%",
            row.max_words,
            row.code_growth * 100.0,
            row.link_rate * 100.0,
            row.jump_overhead * 100.0
        );
    }

    println!();
    println!("=== Ablation 3: FFW window placement @ 400 mV (word misses / 1000 instr) ===");
    println!("{:>12} {:>10} {:>10}", "benchmark", "centred", "aligned");
    for b in [Benchmark::Patricia, Benchmark::Dijkstra, Benchmark::Crc32] {
        let e = window_alignment_effect(b, MilliVolts::new(400), instrs, seed);
        println!(
            "{:>12} {:>10.2} {:>10.2}",
            b.name(),
            e.centered_word_misses_per_ki,
            e.aligned_word_misses_per_ki
        );
    }

    println!();
    println!("=== Ablation 4: FBA capacity @ 400 mV ===");
    println!("{:>8} {:>10} {:>12}", "entries", "coverage", "cycles");
    for row in buffer_capacity_sweep(
        Benchmark::Qsort,
        MilliVolts::new(400),
        &[16, 64, 256, 1024],
        instrs,
        seed,
    ) {
        println!(
            "{:>8} {:>9.1}% {:>12}",
            row.entries,
            row.coverage * 100.0,
            row.cycles
        );
    }
}
