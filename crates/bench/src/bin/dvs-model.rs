//! `dvs-model` — fault-model sensitivity sweep.
//!
//! The paper's Monte-Carlo results assume i.i.d. word failures; real
//! silicon clusters its weak cells along rows, columns and defect
//! neighbourhoods. This binary stresses the 400 mV claim against that
//! assumption: it grows one [`FaultChain`] per (model, map seed) down
//! the 20 mV voltage ladder under each requested fault model and, at
//! every requested rung, reports
//!
//! * **map-level structure** — faulty-word count and fraction, the BBR
//!   linker's fault-free chunk census (count and largest run), and the
//!   mean FFW window capacity (longest fault-free run per frame);
//! * **scheme-level behaviour** — word misses and TS Cache replays per
//!   scheme over one synthetic access stream per benchmark, summed over
//!   the bench10 streams so every scheme is compared on identical
//!   defect patterns and identical traffic.
//!
//! Two invariants are checked inline and reported as deny diagnostics:
//! fault maps must **nest** down the ladder (the chain only adds
//! faults), and the stateless word-presence schemes' miss counts — and
//! TS Cache's replay count — must be **monotone** in falling voltage.
//!
//! Exit codes: `0` clean, `1` at least one deny finding, `2` usage
//! error.

use std::process::ExitCode;

use dvs_analysis::{has_deny, render_text, Diagnostic, Location, Report};
use dvs_diff::stream::{replays, synthetic_stream, word_misses, Access};
use dvs_linker::fault_free_chunks;
use dvs_schemes::SchemeKind;
use dvs_sram::{
    ladder_mv, CacheGeometry, FaultChain, FaultMap, FaultModel, MilliVolts, PfailModel,
};
use dvs_workloads::Benchmark;

/// Versioned schema tag of the `--json` envelope.
const MODEL_SCHEMA: &str = "dvs-model/1";

/// Lint identifier for ladder-nesting violations.
const LINT_NESTING: &str = "model/nested-maps";
/// Lint identifier for miss/replay monotonicity violations.
const LINT_MONOTONE: &str = "model/monotone";

/// The schemes the sweep compares on every sampled map. FFW, BBR and
/// TS Cache are the headline curves; the rest situate them against the
/// related work at word, line and way granularity.
const KINDS: [(&str, SchemeKind); 9] = [
    ("FFW", SchemeKind::Ffw),
    ("BBR", SchemeKind::Bbr),
    ("TS-Cache", SchemeKind::TsCache),
    ("Simple-wdis", SchemeKind::SimpleWordDisable),
    ("Wilkerson+", SchemeKind::WilkersonPlus),
    ("FBA", SchemeKind::fba()),
    ("IDC", SchemeKind::idc()),
    ("Line-disable", SchemeKind::LineDisable),
    ("Way-disable", SchemeKind::WayDisable),
];

/// The subset of [`KINDS`] whose word misses are provably monotone under
/// nested fault maps (stateless word presence — see
/// `dvs_diff::metamorphic`). The others legitimately fluctuate (FFW's
/// windows are history-dependent, FBA/IDC saturate their entry budgets).
const MONOTONE_MISS_KINDS: [&str; 3] = ["BBR", "Simple-wdis", "Wilkerson+"];

struct Options {
    voltages: Vec<u32>,
    benchmarks: Vec<Benchmark>,
    models: Vec<FaultModel>,
    maps: u64,
    seed: u64,
    stream_len: usize,
    json: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            voltages: vec![760, 600, 520, 480, 440, 400],
            benchmarks: Benchmark::ALL.to_vec(),
            models: FaultModel::ALL.to_vec(),
            maps: 2,
            seed: 0,
            stream_len: 2_000,
            json: false,
        }
    }
}

const USAGE: &str = "usage: dvs-model [options]
  --voltages LIST   comma-separated mV points (default 760,600,520,480,440,400)
  --benchmarks LIST comma-separated benchmark names (default: all ten)
  --models LIST     comma-separated fault models: iid, rowcol, clustered
                    (default: all three)
  --maps N          fault chains grown per model (default 2)
  --seed N          base seed for chains and streams (default 0)
  --stream-len N    accesses per synthetic stream (default 2000)
  --json            emit one dvs-model/1 JSON document instead of text
  --help            print this help";

fn parse_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| {
        let full = b.name();
        full.eq_ignore_ascii_case(name)
            || full
                .rsplit('.')
                .next()
                .is_some_and(|short| short.eq_ignore_ascii_case(name))
    })
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match arg.as_str() {
            "--voltages" => {
                opts.voltages = value("--voltages")?
                    .split(',')
                    .map(|v| v.trim().parse::<u32>().map_err(|_| format!("bad mV: {v}")))
                    .collect::<Result<_, _>>()?;
            }
            "--benchmarks" => {
                opts.benchmarks = value("--benchmarks")?
                    .split(',')
                    .map(|n| {
                        parse_benchmark(n.trim()).ok_or_else(|| format!("unknown benchmark: {n}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--models" => {
                opts.models = value("--models")?
                    .split(',')
                    .map(|n| {
                        FaultModel::parse(n.trim()).ok_or_else(|| format!("unknown model: {n}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--maps" => {
                opts.maps = value("--maps")?
                    .parse()
                    .map_err(|_| "--maps expects an integer".to_string())?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--stream-len" => {
                opts.stream_len = value("--stream-len")?
                    .parse()
                    .map_err(|_| "--stream-len expects an integer".to_string())?;
            }
            "--json" => opts.json = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.voltages.is_empty()
        || opts.benchmarks.is_empty()
        || opts.models.is_empty()
        || opts.maps == 0
        || opts.stream_len == 0
    {
        return Err("nothing to do: empty voltage, benchmark, model, map or stream".to_string());
    }
    Ok(opts)
}

/// The rungs a chain advances through: the canonical 20 mV ladder down
/// to the deepest requested point, merged with any off-grid requested
/// voltages, descending (same contract as `dvs-verify`).
fn chain_rungs(voltages: &[u32]) -> Vec<u32> {
    let lowest = voltages.iter().copied().min().expect("non-empty voltages");
    let mut rungs = ladder_mv(lowest);
    for &v in voltages {
        if !rungs.contains(&v) {
            rungs.push(v);
        }
    }
    rungs.sort_unstable_by(|a, b| b.cmp(a));
    rungs.dedup();
    rungs
}

/// Mean over frames of the longest fault-free run of words in the frame
/// — the best window an FFW fill could store there.
fn ffw_mean_window(map: &FaultMap) -> f64 {
    let wpb = map.geometry().words_per_block();
    let mut sum = 0u64;
    let mut frames = 0u64;
    for frame in map.frames() {
        let pattern = map.frame_fault_pattern(frame);
        let mut best = 0u32;
        let mut run = 0u32;
        for w in 0..wpb {
            if pattern & (1 << w) == 0 {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        sum += u64::from(best);
        frames += 1;
    }
    sum as f64 / frames as f64
}

/// One scheme's aggregate behaviour at one operating point.
struct SchemeStats {
    name: &'static str,
    word_misses: u64,
    replays: u64,
}

/// One (model, map, voltage) sample.
struct Point {
    vcc_mv: u32,
    faulty_words: usize,
    faulty_fraction: f64,
    bbr_chunks: usize,
    bbr_largest_chunk: u32,
    ffw_mean_window: f64,
    schemes: Vec<SchemeStats>,
}

/// One fault chain's walk down the ladder.
struct MapSeries {
    map: u64,
    points: Vec<Point>,
}

/// One fault model's sweep.
struct ModelSeries {
    model: FaultModel,
    maps: Vec<MapSeries>,
}

fn sample_point(vcc_mv: u32, fmap: &FaultMap, streams: &[Vec<Access>]) -> Point {
    let total = f64::from(fmap.geometry().total_words());
    let chunks = fault_free_chunks(fmap);
    let schemes = KINDS
        .iter()
        .map(|&(name, kind)| {
            let (mut misses, mut reps) = (0u64, 0u64);
            for stream in streams {
                misses += word_misses(kind, fmap, stream);
                reps += replays(kind, fmap, stream);
            }
            SchemeStats {
                name,
                word_misses: misses,
                replays: reps,
            }
        })
        .collect();
    Point {
        vcc_mv,
        faulty_words: fmap.faulty_words(),
        faulty_fraction: fmap.faulty_words() as f64 / total,
        bbr_chunks: chunks.len(),
        bbr_largest_chunk: chunks.iter().map(|c| c.len).max().unwrap_or(0),
        ffw_mean_window: ffw_mean_window(fmap),
        schemes,
    }
}

fn run(opts: &Options) -> (Vec<ModelSeries>, Vec<Diagnostic>) {
    let geom = CacheGeometry::dsn_l1();
    let pfail = PfailModel::dsn45();
    let rungs = chain_rungs(&opts.voltages);
    let streams: Vec<Vec<Access>> = opts
        .benchmarks
        .iter()
        .enumerate()
        .map(|(i, _)| synthetic_stream(opts.seed.wrapping_add(i as u64), opts.stream_len))
        .collect();
    let mut series = Vec::new();
    let mut checks = Vec::new();
    for &model in &opts.models {
        let mut maps = Vec::new();
        for map in 0..opts.maps {
            let chain_seed = opts.seed.wrapping_add(map).wrapping_mul(0x9E37_79B9);
            let mut chain = FaultChain::with_model(&geom, chain_seed, model);
            let mut points = Vec::new();
            let mut prev: Option<FaultMap> = None;
            for &mv in &rungs {
                let p = pfail.pfail_word(MilliVolts::new(mv)).max(chain.p_current());
                chain.advance_to(p);
                if !opts.voltages.contains(&mv) {
                    continue;
                }
                let fmap = chain.map();
                if let Some(prev) = &prev {
                    if let Some(idx) = prev
                        .iter_faulty_linear()
                        .find(|&i| !fmap.linear_is_faulty(i))
                    {
                        checks.push(Diagnostic::deny(
                            LINT_NESTING,
                            Location::Word { index: idx },
                            format!(
                                "{}/chain{map}: word {idx} faulty above {mv} mV but \
                                 clean at {mv} mV — maps do not nest",
                                model.name(),
                            ),
                        ));
                    }
                }
                prev = Some(fmap.clone());
                points.push(sample_point(mv, fmap, &streams));
            }
            for pair in points.windows(2) {
                let (hi, lo) = (&pair[0], &pair[1]);
                for (a, b) in hi.schemes.iter().zip(&lo.schemes) {
                    if MONOTONE_MISS_KINDS.contains(&a.name) && b.word_misses < a.word_misses {
                        checks.push(Diagnostic::deny(
                            LINT_MONOTONE,
                            Location::Image,
                            format!(
                                "{}/chain{map}: {} word misses fell from {} at {} mV \
                                 to {} at {} mV under nested maps",
                                model.name(),
                                a.name,
                                a.word_misses,
                                hi.vcc_mv,
                                b.word_misses,
                                lo.vcc_mv,
                            ),
                        ));
                    }
                    if a.name == "TS-Cache" && b.replays < a.replays {
                        checks.push(Diagnostic::deny(
                            LINT_MONOTONE,
                            Location::Image,
                            format!(
                                "{}/chain{map}: TS-Cache replays fell from {} at {} mV \
                                 to {} at {} mV under nested maps",
                                model.name(),
                                a.replays,
                                hi.vcc_mv,
                                b.replays,
                                lo.vcc_mv,
                            ),
                        ));
                    }
                }
            }
            maps.push(MapSeries { map, points });
        }
        series.push(ModelSeries { model, maps });
    }
    (series, checks)
}

fn render_json(opts: &Options, series: &[ModelSeries], checks: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{MODEL_SCHEMA}\",\n"));
    out.push_str(&format!("  \"seed\": {},\n", opts.seed));
    out.push_str(&format!("  \"stream_len\": {},\n", opts.stream_len));
    let volts: Vec<String> = opts.voltages.iter().map(u32::to_string).collect();
    out.push_str(&format!("  \"voltages_mv\": [{}],\n", volts.join(", ")));
    let benches: Vec<String> = opts
        .benchmarks
        .iter()
        .map(|b| format!("\"{}\"", b.name()))
        .collect();
    out.push_str(&format!("  \"benchmarks\": [{}],\n", benches.join(", ")));
    out.push_str("  \"models\": [\n");
    for (mi, m) in series.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"model\": \"{}\",\n", m.model.name()));
        out.push_str("      \"maps\": [\n");
        for (ji, ms) in m.maps.iter().enumerate() {
            out.push_str("        {\n");
            out.push_str(&format!("          \"map\": {},\n", ms.map));
            out.push_str("          \"points\": [\n");
            for (pi, p) in ms.points.iter().enumerate() {
                let schemes: Vec<String> = p
                    .schemes
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"scheme\": \"{}\", \"word_misses\": {}, \"replays\": {}}}",
                            s.name, s.word_misses, s.replays
                        )
                    })
                    .collect();
                out.push_str(&format!(
                    "            {{\"vcc_mv\": {}, \"faulty_words\": {}, \
                     \"faulty_fraction\": {:.6}, \"bbr_chunks\": {}, \
                     \"bbr_largest_chunk\": {}, \"ffw_mean_window\": {:.4}, \
                     \"schemes\": [{}]}}{}\n",
                    p.vcc_mv,
                    p.faulty_words,
                    p.faulty_fraction,
                    p.bbr_chunks,
                    p.bbr_largest_chunk,
                    p.ffw_mean_window,
                    schemes.join(", "),
                    if pi + 1 < ms.points.len() { "," } else { "" },
                ));
            }
            out.push_str("          ]\n");
            out.push_str(&format!(
                "        }}{}\n",
                if ji + 1 < m.maps.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if mi + 1 < series.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let rendered: Vec<String> = checks
        .iter()
        .map(|d| {
            format!(
                "    {{\"lint\": \"{}\", \"severity\": \"{}\", \"message\": {:?}}}",
                d.lint,
                d.severity.name(),
                d.message
            )
        })
        .collect();
    out.push_str(&format!("  \"checks\": [\n{}\n  ]\n", rendered.join(",\n")));
    if checks.is_empty() {
        out = out.replace("  \"checks\": [\n\n  ]\n", "  \"checks\": []\n");
    }
    out.push('}');
    out
}

fn render_tables(opts: &Options, series: &[ModelSeries]) -> String {
    let mut out = String::new();
    for m in series {
        out.push_str(&format!(
            "=== fault model: {} (maps averaged over {} chain{}) ===\n",
            m.model.name(),
            opts.maps,
            if opts.maps == 1 { "" } else { "s" },
        ));
        // Per voltage, mean over chains.
        out.push_str(&format!(
            "{:>7} {:>12} {:>10} {:>12} {:>11}",
            "mV", "faulty", "chunks", "max chunk", "ffw window"
        ));
        for (name, _) in KINDS {
            out.push_str(&format!(" {:>12}", name));
        }
        out.push('\n');
        let npoints = m.maps.first().map_or(0, |ms| ms.points.len());
        for pi in 0..npoints {
            let n = m.maps.len() as f64;
            let mean = |f: &dyn Fn(&Point) -> f64| -> f64 {
                m.maps.iter().map(|ms| f(&ms.points[pi])).sum::<f64>() / n
            };
            out.push_str(&format!(
                "{:>7} {:>12.1} {:>10.1} {:>12.1} {:>11.3}",
                m.maps[0].points[pi].vcc_mv,
                mean(&|p| p.faulty_words as f64),
                mean(&|p| p.bbr_chunks as f64),
                mean(&|p| f64::from(p.bbr_largest_chunk)),
                mean(&|p| p.ffw_mean_window),
            ));
            for (si, (name, _)) in KINDS.iter().enumerate() {
                // TS Cache never word-misses; its cost is the replays.
                let cost = if *name == "TS-Cache" {
                    mean(&|p| p.schemes[si].replays as f64)
                } else {
                    mean(&|p| p.schemes[si].word_misses as f64)
                };
                out.push_str(&format!(" {:>12.1}", cost));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out.push_str(
        "reading: word misses per scheme (TS-Cache column: checker replays), summed\n\
         over one synthetic stream per benchmark. The threshold construction matches\n\
         the aggregate marginal exactly, so correlation only redistributes the same\n\
         fault budget: correlated maps fragment the BBR address space into fewer,\n\
         lumpier chunks and leave slightly more clean FFW frames, while per-scheme\n\
         miss/replay counts stay within a few percent of i.i.d.\n",
    );
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("dvs-model: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (series, checks) = run(&opts);
    if opts.json {
        println!("{}", render_json(&opts, &series, &checks));
    } else {
        print!("{}", render_tables(&opts, &series));
        if !checks.is_empty() {
            let report = Report::new("model@invariants".to_string(), checks.clone());
            print!("{}", render_text(&[report]));
        }
    }
    if has_deny(&checks) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_rungs_merge_off_grid_points_descending() {
        let rungs = chain_rungs(&[760, 485, 400]);
        assert_eq!(rungs.first(), Some(&760));
        assert_eq!(rungs.last(), Some(&400));
        assert!(rungs.contains(&485));
        assert!(rungs.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn parse_rejects_unknown_model_and_empty_lists() {
        let bad = parse_args(&["--models".into(), "gaussian".into()]);
        assert!(bad.is_err());
        let empty = parse_args(&["--maps".into(), "0".into()]);
        assert!(empty.is_err());
    }

    #[test]
    fn sweep_is_deny_clean_under_every_model() {
        let opts = Options {
            voltages: vec![760, 480],
            benchmarks: vec![Benchmark::Qsort],
            maps: 1,
            stream_len: 200,
            ..Options::default()
        };
        let (series, checks) = run(&opts);
        assert_eq!(series.len(), FaultModel::ALL.len());
        assert!(
            !has_deny(&checks),
            "built-in nesting/monotonicity checks fired: {checks:?}"
        );
        for m in &series {
            for ms in &m.maps {
                assert_eq!(ms.points.len(), 2);
                // The 760 mV rung is defect-free under every model.
                assert_eq!(ms.points[0].faulty_words, 0);
            }
        }
    }
}
