//! Figure 2: SRAM failure probability vs supply voltage at bit / word /
//! block / array granularity, plus the 32 KB `Vccmin`.

use dvs_core::figures::fig2;

fn main() {
    let f = fig2(400, 900, 20);
    println!("Figure 2 — P_fail vs VCC (45 nm model calibrated to Table II)");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "mV", "bit", "4B word", "32B block", "32KB array"
    );
    for r in &f.rows {
        println!(
            "{:>6} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e}",
            r.vcc.get(),
            r.pfail_bit,
            r.pfail_word,
            r.pfail_block,
            r.pfail_array
        );
    }
    println!();
    println!(
        "Vccmin(32KB, 99.9% yield) = {}   (paper: 760 mV)",
        f.vccmin_32kb
    );
}
