//! Table III: per-scheme area, static power and latency overheads.

use dvs_power::table3;

fn main() {
    println!("Table III — static overheads (32 KB, 4-way, 45 nm)");
    println!(
        "{:<20} {:>12} {:>14} {:>10}",
        "scheme", "norm. area", "norm. static", "latency"
    );
    for row in table3() {
        println!(
            "{:<20} {:>11.1}% {:>13.1}% {:>8} cyc",
            row.scheme,
            row.overheads.normalized_area * 100.0,
            row.overheads.normalized_static_power * 100.0,
            row.overheads.latency_cycles
        );
    }
}
