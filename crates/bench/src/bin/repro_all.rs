//! Regenerates every table and figure in one process, sharing one
//! evaluator so the Monte-Carlo cells are simulated exactly once — and,
//! via the on-disk result store, at most once across *processes*.

use dvs_bench::{evaluator, fmt_ci, parse_args, render_histogram};
use dvs_core::figures::{
    default_benchmarks, default_voltages, fig10, fig11, fig12, fig2, fig3, fig6,
};
use dvs_core::DvfsPoint;
use dvs_power::fo4::{ffw_timeline, DATA_ARRAY_COLUMN_MUX_FO4, REMAP_READY_FO4};
use dvs_power::table3;
use dvs_sram::MilliVolts;
use dvs_workloads::Benchmark;

fn main() {
    let opts = parse_args();

    println!("=== Table II ===");
    for p in DvfsPoint::table2() {
        println!(
            "{:>6} mV {:>6} MHz  P_fail={:.2e}",
            p.vcc.get(),
            p.freq_mhz,
            p.pfail_bit
        );
    }

    println!();
    println!("=== Table III ===");
    for row in table3() {
        println!(
            "{:<20} area {:>6.1}%  static {:>6.1}%  latency +{} cyc",
            row.scheme,
            row.overheads.normalized_area * 100.0,
            row.overheads.normalized_static_power * 100.0,
            row.overheads.latency_cycles
        );
    }

    println!();
    println!("=== Figure 2 ===");
    let f2 = fig2(400, 800, 40);
    println!("{:>6} {:>11} {:>11} {:>11}", "mV", "bit", "word", "block");
    for r in &f2.rows {
        println!(
            "{:>6} {:>11.2e} {:>11.2e} {:>11.2e}",
            r.vcc.get(),
            r.pfail_bit,
            r.pfail_word,
            r.pfail_block
        );
    }
    println!("Vccmin(32KB, 99.9%) = {}", f2.vccmin_32kb);

    println!();
    println!("=== Figure 3 ===");
    for e in fig3(opts.cfg.seed, opts.cfg.trace_instrs.max(200_000)) {
        println!(
            "{:>16}: spatial {:>5.1}%  reuse {:>5.1}%",
            e.benchmark.name(),
            e.mean_spatial * 100.0,
            e.mean_reuse * 100.0
        );
    }

    println!();
    println!("=== Figure 6 (basicmath @ 400 mV) ===");
    let f6 = fig6(
        Benchmark::Basicmath,
        MilliVolts::new(400),
        opts.cfg.maps.min(16),
        opts.cfg.trace_instrs.max(400_000),
        100_000,
        opts.cfg.seed,
    );
    let mut caps = f6.capacity_fractions.clone();
    caps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "fault-free {:.1}% of the cache; interval capacity median {:.1}%, max {:.1}%",
        f6.fault_free_fraction * 100.0,
        caps[caps.len() / 2] * 100.0,
        caps[caps.len() - 1] * 100.0
    );
    let hist: Vec<f64> = f6.block_size_hist.iter().map(|&(_, p)| p).collect();
    print!("{}", render_histogram("block sizes (1..16 words)", &hist));
    let hist: Vec<f64> = f6.chunk_size_hist.iter().map(|&(_, p)| p).collect();
    print!("{}", render_histogram("chunk sizes (1..16+ words)", &hist));

    println!();
    println!("=== Figure 9 ===");
    for s in ffw_timeline() {
        println!(
            "{:<18} {:<24} {:>6.1} .. {:>6.1} FO4",
            format!("{:?}", s.path),
            s.name,
            s.start_fo4,
            s.end_fo4()
        );
    }
    println!("remap {REMAP_READY_FO4} FO4 <= column mux {DATA_ARRAY_COLUMN_MUX_FO4} FO4 -> 0-cycle overhead");

    let mut eval = evaluator(&opts);
    if let Some(store) = eval.store() {
        eprintln!("\nresult store: {}", store.dir().display());
    }
    eval.set_progress(|p| {
        eprintln!(
            "  [{}/{}] {} ({} trials computed)",
            p.cells_done, p.cells_total, p.cell, p.trials_computed
        );
    });
    let benches = default_benchmarks();
    let volts = default_voltages();
    eprintln!(
        "running the Monte-Carlo grid: 6 schemes x {} voltages x {} benchmarks x {} maps x {} instrs",
        volts.len(),
        benches.len(),
        opts.cfg.maps,
        opts.cfg.trace_instrs
    );

    for (title, cells) in [
        (
            "Figure 10 (normalized runtime)",
            fig10(&mut eval, &benches, &volts),
        ),
        (
            "Figure 11 (L2 accesses / 1000 instructions)",
            fig11(&mut eval, &benches, &volts),
        ),
        (
            "Figure 12 (normalized EPI, geomean)",
            fig12(&mut eval, &benches, &volts),
        ),
    ] {
        println!();
        println!("=== {title} ===");
        print!("{:<14}", "scheme");
        for v in &volts {
            print!(" {:>14}", format!("{v}"));
        }
        println!();
        for chunk in cells.chunks(volts.len()) {
            print!("{:<14}", chunk[0].scheme.name());
            for c in chunk {
                if title.contains("EPI") {
                    print!(" {:>14.3}", c.geomean);
                } else {
                    print!(" {:>14}", fmt_ci(&c.summary));
                }
            }
            println!();
        }
    }

    // Per-cell failure report: a cell whose every trial failed its BBR
    // link is dropped from the series above, not fatal to the campaign.
    let failures = eval.failures();
    if !failures.is_empty() {
        println!();
        println!("=== cells without data ({}) ===", failures.len());
        for (_, err) in &failures {
            println!("  {err}");
        }
    }

    let stats = eval.stats();
    println!();
    println!(
        "engine: computed={} from_store={} cells_from_store={} link_failures={} \
         trials/sec={:.0} link={:.1}s sim={:.1}s wall={:.1}s",
        stats.trials_computed,
        stats.trials_from_store,
        stats.cells_from_store,
        stats.link_failures,
        stats.trials_per_sec(),
        stats.link_nanos as f64 / 1e9,
        stats.sim_nanos as f64 / 1e9,
        stats.wall_nanos as f64 / 1e9,
    );
}
