//! Characterization of the ten synthetic benchmarks: code size, dynamic
//! instruction mix, data footprint, branch behaviour — the numbers that
//! justify the DESIGN.md calibration (substitution 2).

use dvs_bench::parse_args;
use dvs_cpu::{simulate, CoreConfig, MemSystem};
use dvs_schemes::{L1Cache, SchemeKind};
use dvs_sram::{CacheGeometry, FaultMap};
use dvs_workloads::{locality, Benchmark, Layout, OpClass};

fn main() {
    let opts = parse_args();
    let n = opts.cfg.trace_instrs.max(100_000);
    let geom = CacheGeometry::dsn_l1();
    println!(
        "{:>16} {:>7} {:>7} {:>6} {:>6} {:>6} {:>8} {:>8} {:>6} {:>7}",
        "benchmark",
        "blocks",
        "words",
        "load%",
        "store%",
        "br%",
        "spatial%",
        "reuse%",
        "IPC",
        "mis%"
    );
    for b in Benchmark::ALL {
        let wl = b.build(opts.cfg.seed);
        let layout = Layout::sequential(wl.program());
        let (mut loads, mut stores, mut branches) = (0u64, 0u64, 0u64);
        for op in wl.trace(&layout, 0).take(n) {
            match op.class {
                OpClass::Load => loads += 1,
                OpClass::Store => stores += 1,
                OpClass::Branch => branches += 1,
                _ => {}
            }
        }
        let report = locality::measure(
            wl.trace(&layout, 0).take(n),
            locality::PAPER_INTERVAL_INSTRS,
        );
        let mem = MemSystem::new(
            L1Cache::new(SchemeKind::Conventional, FaultMap::fault_free(&geom)),
            L1Cache::new(SchemeKind::Conventional, FaultMap::fault_free(&geom)),
            1607,
        );
        let r = simulate(&CoreConfig::dsn2016(), mem, wl.trace(&layout, 0).take(n));
        let pct = |x: u64| x as f64 * 100.0 / n as f64;
        println!(
            "{:>16} {:>7} {:>7} {:>5.1} {:>5.1} {:>6.1} {:>8.1} {:>8.1} {:>6.2} {:>6.1}",
            b.name(),
            wl.program().num_blocks(),
            wl.program().total_footprint_words(),
            pct(loads),
            pct(stores),
            pct(branches),
            report.mean_spatial() * 100.0,
            report.mean_reuse() * 100.0,
            r.ipc(),
            r.mispredict_rate() * 100.0
        );
    }
}
