//! Figure 9: FO4 timeline of each critical path in the FFW data cache.

use dvs_power::fo4::{ffw_timeline, DATA_ARRAY_COLUMN_MUX_FO4, REMAP_READY_FO4};

fn main() {
    println!("Figure 9 — critical-path timeline of the 32 KB FFW data cache (FO4 delays)");
    println!("{:<18} {:<24} {:>8} {:>8}", "path", "stage", "start", "end");
    for s in ffw_timeline() {
        println!(
            "{:<18} {:<24} {:>8.1} {:>8.1}",
            format!("{:?}", s.path),
            s.name,
            s.start_fo4,
            s.end_fo4()
        );
    }
    println!();
    println!(
        "remap ready at {REMAP_READY_FO4} FO4 <= data-array column MUX at {DATA_ARRAY_COLUMN_MUX_FO4} FO4"
    );
    println!("=> the FFW adds ZERO cycles to the L1 hit latency (paper Section VI-A.3)");
}
