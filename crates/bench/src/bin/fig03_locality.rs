//! Figure 3: normalized histograms of spatial locality and word reuse
//! rate for the ten benchmarks.

use dvs_bench::{parse_args, render_histogram};
use dvs_core::figures::fig3;

fn main() {
    let opts = parse_args();
    let instrs = opts.cfg.trace_instrs.max(200_000);
    println!("Figure 3 — D-cache spatial locality / word reuse (10k-instruction intervals)");
    println!("{:>16} {:>10} {:>10}", "benchmark", "spatial", "reuse");
    let entries = fig3(opts.cfg.seed, instrs);
    for e in &entries {
        println!(
            "{:>16} {:>9.1}% {:>9.1}%",
            e.benchmark.name(),
            e.mean_spatial * 100.0,
            e.mean_reuse * 100.0
        );
    }
    println!();
    for e in &entries {
        println!("{}:", e.benchmark.name());
        print!("{}", render_histogram("spatial locality", &e.spatial_hist));
        print!("{}", render_histogram("word reuse rate", &e.reuse_hist));
    }
}
