//! Table I: the simulated processor configuration.

use dvs_cache::LatencyConfig;
use dvs_cpu::CoreConfig;
use dvs_sram::CacheGeometry;

fn main() {
    let c = CoreConfig::dsn2016();
    let lat = LatencyConfig::dsn();
    println!("Table I — processor configuration");
    println!("(a) Core");
    println!(
        "  microarchitecture     {}-way superscalar (scoreboard timing model)",
        c.width
    );
    println!("  clock speed           1.9 GHz class (1607 MHz at 760 mV, Table II)");
    println!(
        "  functional units      {} INT ALU, {} FP ALU, {} INT MULT, {} FP MULT",
        c.int_alu_units, c.fp_alu_units, c.int_mult_units, c.fp_mult_units
    );
    println!("  reorder buffer        {} entries", c.rob_entries);
    println!("  load/store queue      {} entries", c.lsq_entries);
    println!(
        "  branch history table  {} entries (bimodal)",
        c.bht_entries
    );
    println!(
        "  branch target buffer  {} entries, {}-way",
        c.btb_entries, c.btb_ways
    );
    println!("(b) Memory hierarchy");
    println!(
        "  L1 I-cache            {}, LRU, {} cycles",
        CacheGeometry::dsn_l1(),
        lat.l1_hit_cycles
    );
    println!(
        "  L1 D-cache            {}, LRU, {} cycles, write-through",
        CacheGeometry::dsn_l1(),
        lat.l1_hit_cycles
    );
    println!(
        "  unified L2            {}, LRU, {} cycles, write-back",
        CacheGeometry::dsn_l2(),
        lat.l2_hit_cycles
    );
    println!(
        "  main memory           {} ns fixed wall-clock",
        lat.dram_ns
    );
}
