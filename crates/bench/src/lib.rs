//! Shared plumbing for the figure-reproduction binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md` for the index) and prints the series as aligned text. The
//! common command-line knobs:
//!
//! * `--maps N` — Monte-Carlo fault maps per operating point;
//! * `--instrs N` — dynamic instructions per trial;
//! * `--seed N` — root seed;
//! * `--paper` — use the paper-scale protocol (slow);
//! * `--store DIR` / `--no-store` — where completed Monte-Carlo cells are
//!   persisted and reloaded across runs (default
//!   `target/dvs-result-store`, overridable via `DVS_RESULT_STORE`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use dvs_core::{EvalConfig, Evaluator, ResultStore};

pub mod baseline;
pub mod profile;

/// Parsed command-line options for the figure binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Evaluation-scale configuration.
    pub cfg: EvalConfig,
    /// Print per-benchmark rows instead of the pooled aggregate
    /// (the paper's figures group bars per benchmark).
    pub split: bool,
    /// Persist/reload Monte-Carlo cells on disk (`--no-store` disables).
    pub store: bool,
    /// Store directory override (`--store DIR`); `None` means the
    /// default ([`ResultStore::default_dir`]).
    pub store_dir: Option<PathBuf>,
}

/// Parses the common flags from `std::env::args`.
///
/// # Panics
///
/// Panics with a usage message on unknown flags or malformed values.
pub fn parse_args() -> Options {
    let mut cfg = EvalConfig::standard();
    let mut split = false;
    let mut store = true;
    let mut store_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects an integer value"))
        };
        match arg.as_str() {
            "--maps" => cfg.maps = take("--maps"),
            "--instrs" => cfg.trace_instrs = take("--instrs") as usize,
            "--seed" => cfg.seed = take("--seed"),
            "--threads" => cfg.threads = take("--threads") as usize,
            "--paper" => {
                cfg = EvalConfig {
                    seed: cfg.seed,
                    ..EvalConfig::paper_scale()
                }
            }
            "--split" => split = true,
            "--no-store" => store = false,
            "--store" => {
                store_dir =
                    Some(PathBuf::from(args.next().unwrap_or_else(|| {
                        panic!("--store expects a directory path")
                    })));
            }
            "--help" | "-h" => {
                println!(
                    "options: [--maps N] [--instrs N] [--seed N] [--threads N] [--paper] \
                     [--split] [--store DIR] [--no-store]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    Options {
        cfg,
        split,
        store,
        store_dir,
    }
}

/// Builds the evaluator the options describe: store-backed unless
/// `--no-store` was given. A store that cannot be opened degrades to
/// recomputation with a warning, never to an abort.
pub fn evaluator(opts: &Options) -> Evaluator {
    let eval = Evaluator::new(opts.cfg);
    if !opts.store {
        return eval;
    }
    let dir = opts
        .store_dir
        .clone()
        .unwrap_or_else(ResultStore::default_dir);
    match ResultStore::open(&dir) {
        Ok(store) => eval.with_store(store),
        Err(e) => {
            eprintln!(
                "warning: result store {} unavailable ({e}); recomputing",
                dir.display()
            );
            eval
        }
    }
}

/// Renders a unit-interval histogram as a text bar chart.
pub fn render_histogram(title: &str, hist: &[f64]) -> String {
    let mut out = format!("  {title}\n");
    let bins = hist.len();
    for (i, &frac) in hist.iter().enumerate() {
        let lo = i as f64 / bins as f64;
        let hi = (i + 1) as f64 / bins as f64;
        let bar = "#".repeat((frac * 50.0).round() as usize);
        out.push_str(&format!(
            "    [{lo:.1}-{hi:.1})  {pct:5.1}% {bar}\n",
            pct = frac * 100.0
        ));
    }
    out
}

/// Formats a mean ± 95 % CI pair.
pub fn fmt_ci(s: &dvs_sram::stats::Summary) -> String {
    format!("{:7.3} ±{:.3}", s.mean, s.ci95_half)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_sram::stats::Summary;

    #[test]
    fn histogram_renders_each_bin() {
        let out = render_histogram("t", &[0.5, 0.5]);
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("50.0%"));
    }

    #[test]
    fn ci_formatting() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        let txt = fmt_ci(&s);
        assert!(txt.contains("2.000"));
        assert!(txt.contains('±'));
    }
}
