//! The `dvs-profile` engine: one Monte-Carlo sweep per operating point
//! with a [`MetricsRegistry`] attached, rendered as a per-subsystem
//! breakdown table or as machine-readable JSON.
//!
//! Each voltage section runs the selected benchmarks under one scheme
//! through a fresh [`Evaluator`] observed by its own registry, plus a
//! BIST demonstration pass ([`dvs_sram::bist::march_test_recorded`]) over
//! an L1-sized array injected at that point's failure rate. The
//! deterministic half of every section (counters, value histograms)
//! depends only on the configuration seed; wall-clock timings live under
//! the JSON `"volatile"` key and are omitted with `--no-timings`.

use std::fmt::Write as _;
use std::sync::Arc;

use dvs_core::{DvfsPoint, EngineStats, EvalConfig, Evaluator, ExperimentPlan, Scheme};
use dvs_obs::{json, MetricsRegistry, MetricsSnapshot};
use dvs_sram::{bist, CacheGeometry, MilliVolts, SramArray};
use dvs_workloads::Benchmark;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Schema identifier embedded in the JSON output; bump on breaking
/// layout changes.
pub const PROFILE_SCHEMA: &str = "dvs-profile/1";

/// Parsed `dvs-profile` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileOptions {
    /// Evaluation-scale configuration (maps, instructions, seed, threads).
    pub cfg: EvalConfig,
    /// Benchmarks profiled at every operating point.
    pub benchmarks: Vec<Benchmark>,
    /// Operating points, one report section each.
    pub voltages: Vec<MilliVolts>,
    /// Scheme under profile (default [`Scheme::FfwBbr`], the paper's
    /// headline configuration — it exercises linker, BIST and cache).
    pub scheme: Scheme,
    /// Emit JSON instead of the text breakdown.
    pub json: bool,
    /// Include volatile wall-clock sections in the JSON output.
    pub include_timings: bool,
    /// Re-parse the JSON output and reject NaN/negative numbers.
    pub selfcheck: bool,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            cfg: EvalConfig::quick(),
            benchmarks: Benchmark::ALL.to_vec(),
            voltages: [760, 560, 520, 480, 440, 400]
                .into_iter()
                .map(MilliVolts::new)
                .collect(),
            scheme: Scheme::FfwBbr,
            json: false,
            include_timings: true,
            selfcheck: false,
        }
    }
}

/// One operating point's worth of profile data.
#[derive(Debug, Clone)]
pub struct ProfileSection {
    /// The operating point.
    pub vcc: MilliVolts,
    /// Everything the registry recorded while profiling it.
    pub snapshot: MetricsSnapshot,
    /// The engine's own counters for this section (trials, link/sim/wall
    /// time) — the source of the per-section `trials_per_sec`.
    pub stats: EngineStats,
}

/// A full profile: one section per requested voltage.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// The options the profile ran under.
    pub opts: ProfileOptions,
    /// Per-voltage sections, in request order.
    pub sections: Vec<ProfileSection>,
}

/// Renders one engine snapshot as a `throughput` JSON object: trial
/// counts in the deterministic half, wall time and trials/sec (when
/// timings are requested) under the `"volatile"` key so golden
/// comparisons stay stable.
fn throughput_json(stats: &EngineStats, include_timings: bool) -> String {
    let mut out = format!(
        "{{\"trials_computed\":{},\"link_failures\":{},\"invariant_violations\":{}",
        stats.trials_computed, stats.link_failures, stats.invariant_violations,
    );
    if include_timings {
        let _ = write!(
            out,
            ",\"volatile\":{{\"wall_nanos\":{},\"trials_per_sec\":{:.3}}}",
            stats.wall_nanos,
            stats.trials_per_sec(),
        );
    }
    out.push('}');
    out
}

/// Field-wise difference of two engine snapshots (the counters are
/// monotonic, so this recovers one section's contribution).
fn stats_delta(after: EngineStats, before: EngineStats) -> EngineStats {
    EngineStats {
        trials_computed: after.trials_computed - before.trials_computed,
        trials_from_store: after.trials_from_store - before.trials_from_store,
        cells_from_store: after.cells_from_store - before.cells_from_store,
        link_failures: after.link_failures - before.link_failures,
        invariant_violations: after.invariant_violations - before.invariant_violations,
        link_nanos: after.link_nanos - before.link_nanos,
        sim_nanos: after.sim_nanos - before.sim_nanos,
        wall_nanos: after.wall_nanos - before.wall_nanos,
    }
}

/// Runs the profile: for each voltage, a BIST pass over an L1-sized
/// array at that point's failure rate, then every benchmark through an
/// observed evaluator. Cells that fail to link or validate still
/// contribute their engine counters; they never abort the profile.
///
/// One evaluator is shared across the sections (each observed by its own
/// registry), so per-benchmark artifacts and trace templates are built
/// once for the whole sweep instead of once per voltage.
pub fn run_profile(opts: &ProfileOptions) -> ProfileReport {
    let geometry = CacheGeometry::dsn_l1();
    let mut eval = Evaluator::new(opts.cfg);
    let sections = opts
        .voltages
        .iter()
        .map(|&vcc| {
            let registry = Arc::new(MetricsRegistry::new());

            // BIST demonstration: march an L1-sized array injected at
            // this point's per-bit failure rate.
            let point = DvfsPoint::at(vcc);
            let mut array = SramArray::new(geometry.total_words());
            let mut rng = StdRng::seed_from_u64(opts.cfg.seed ^ u64::from(vcc.get()));
            array.inject_random(point.pfail_bit, &mut rng);
            let _ = bist::march_test_recorded(&mut array, registry.as_ref());

            eval.observe(registry.clone());
            let before = eval.stats();
            let mut plan = ExperimentPlan::new();
            for &b in &opts.benchmarks {
                plan.add(b, opts.scheme, vcc);
            }
            let _ = eval.run_plan(&plan);

            ProfileSection {
                vcc,
                snapshot: registry.snapshot(),
                stats: stats_delta(eval.stats(), before),
            }
        })
        .collect();
    ProfileReport {
        opts: opts.clone(),
        sections,
    }
}

impl ProfileReport {
    /// Renders the report as JSON (`PROFILE_SCHEMA` layout): a `config`
    /// echo plus one `sections` entry per voltage, each wrapping its
    /// snapshot's JSON. Deterministic for a fixed seed when
    /// `include_timings` is false.
    pub fn to_json(&self, include_timings: bool) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{}\",\"config\":{{\"scheme\":\"{}\",\"maps\":{},\"trace_instrs\":{},\"seed\":{},\"benchmarks\":[",
            json::json_escape(PROFILE_SCHEMA),
            json::json_escape(self.opts.scheme.name()),
            self.opts.cfg.maps,
            self.opts.cfg.trace_instrs,
            self.opts.cfg.seed,
        );
        for (i, b) in self.opts.benchmarks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json::json_escape(b.name()));
        }
        out.push_str("]},\"sections\":[");
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"vcc_mv\":{},\"throughput\":{},\"metrics\":{}}}",
                s.vcc.get(),
                throughput_json(&s.stats, include_timings),
                s.snapshot.to_json(include_timings)
            );
        }
        let _ = write!(
            out,
            "],\"throughput\":{}}}",
            throughput_json(&self.total_stats(), include_timings)
        );
        out
    }

    /// Sum of the per-section engine snapshots: the whole sweep's trial
    /// counts and wall time.
    pub fn total_stats(&self) -> EngineStats {
        self.sections
            .iter()
            .fold(EngineStats::default(), |acc, s| EngineStats {
                trials_computed: acc.trials_computed + s.stats.trials_computed,
                trials_from_store: acc.trials_from_store + s.stats.trials_from_store,
                cells_from_store: acc.cells_from_store + s.stats.cells_from_store,
                link_failures: acc.link_failures + s.stats.link_failures,
                invariant_violations: acc.invariant_violations + s.stats.invariant_violations,
                link_nanos: acc.link_nanos + s.stats.link_nanos,
                sim_nanos: acc.sim_nanos + s.stats.sim_nanos,
                wall_nanos: acc.wall_nanos + s.stats.wall_nanos,
            })
    }

    /// Whole-sweep computed-trial throughput (the perf-smoke headline).
    pub fn trials_per_sec(&self) -> f64 {
        self.total_stats().trials_per_sec()
    }

    /// Renders the report for humans: one block per voltage with a
    /// per-subsystem breakdown (wall-clock share plus headline counters)
    /// followed by the cache-latency histograms.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "dvs-profile — scheme {}, {} maps x {} instrs, seed {}",
            self.opts.scheme.name(),
            self.opts.cfg.maps,
            self.opts.cfg.trace_instrs,
            self.opts.cfg.seed
        );
        for s in &self.sections {
            let snap = &s.snapshot;
            let _ = writeln!(
                out,
                "\n=== {} mV ===  ({} trials, {:.1} trials/s)",
                s.vcc.get(),
                s.stats.trials_computed,
                s.stats.trials_per_sec()
            );
            let trial_total = snap.timer_total_nanos("engine.trial_nanos");
            let rows: [(&str, u64, String); 5] = [
                (
                    "engine",
                    trial_total,
                    format!(
                        "trials={} link_failed={} invalid={}",
                        snap.counter("engine.trials.computed"),
                        snap.counter("engine.trials.link_failed"),
                        snap.counter("engine.trials.invalid")
                    ),
                ),
                (
                    "cpu/sim",
                    snap.timer_total_nanos("engine.sim_nanos"),
                    format!(
                        "instrs={} cycles={} mispredicts={}",
                        snap.counter("cpu.instructions"),
                        snap.counter("cpu.cycles"),
                        snap.counter("cpu.mispredicts")
                    ),
                ),
                (
                    "linker",
                    snap.timer_total_nanos("linker.link_nanos"),
                    format!(
                        "links={} blocks={} jumps_elided={}",
                        snap.counter("linker.links"),
                        snap.counter("linker.blocks_placed"),
                        snap.counter("linker.jumps_elided")
                    ),
                ),
                (
                    "sram/faultmap",
                    snap.timer_total_nanos("sram.faultmap.sample_nanos"),
                    format!(
                        "maps={} faulty_words={}",
                        snap.counter("sram.faultmap.samples"),
                        snap.counter("sram.faultmap.faulty_words")
                    ),
                ),
                (
                    "sram/bist",
                    snap.timer_total_nanos("sram.bist.march_nanos"),
                    format!(
                        "words={} faulty={}",
                        snap.counter("sram.bist.words_tested"),
                        snap.counter("sram.bist.faulty_words")
                    ),
                ),
            ];
            out.push_str("  subsystem      time(ms)  share  detail\n");
            for (name, nanos, detail) in rows {
                let share = if trial_total == 0 {
                    0.0
                } else {
                    100.0 * nanos as f64 / trial_total as f64
                };
                let _ = writeln!(
                    out,
                    "  {name:<13} {:>9.2} {share:>5.1}%  {detail}",
                    nanos as f64 / 1e6
                );
            }
            if let Some(h) = snap.values.get("sram.faultmap.faulty_words") {
                let _ = writeln!(
                    out,
                    "  faulty words/map p50/p95/max = {}/{}/{}",
                    h.p50, h.p95, h.max
                );
            }
            out.push_str("  cache:\n");
            for level in ["l1i", "l1d", "l2", "dram"] {
                let acc = snap.counter(&format!("cache.{level}.accesses"));
                let miss = snap.counter(&format!("cache.{level}.misses"));
                let line = snap
                    .values
                    .get(&format!("cache.{level}.access_cycles"))
                    .map_or_else(String::new, |h| {
                        format!("  cycles p50/p95/max = {}/{}/{}", h.p50, h.p95, h.max)
                    });
                let _ = writeln!(out, "    {level:<5} accesses={acc} misses={miss}{line}");
            }
        }
        let total = self.total_stats();
        let _ = writeln!(
            out,
            "\ntotal: {} trials in {:.2} s — {:.1} trials/s",
            total.trials_computed,
            total.wall_nanos as f64 / 1e9,
            total.trials_per_sec()
        );
        out
    }

    /// Validates the JSON rendering: well-formed, finite, non-negative
    /// numbers everywhere, the right schema tag, and non-empty counter
    /// sections. This is `--selfcheck` and the CI profile-smoke gate.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let rendered = self.to_json(true);
        let value = json::Value::parse(&rendered)?;
        value.check_numbers_finite_nonneg()?;
        if value.get("schema").and_then(json::Value::as_str) != Some(PROFILE_SCHEMA) {
            return Err(format!("schema tag is not {PROFILE_SCHEMA}"));
        }
        let sections = value
            .get("sections")
            .and_then(json::Value::as_arr)
            .ok_or("missing sections array")?;
        if sections.len() != self.sections.len() {
            return Err("section count mismatch".into());
        }
        for (i, section) in sections.iter().enumerate() {
            let counters = section
                .get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(json::Value::as_obj)
                .ok_or_else(|| format!("section {i}: missing counters object"))?;
            if counters.is_empty() {
                return Err(format!("section {i}: empty counters"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ProfileOptions {
        let mut opts = ProfileOptions::default();
        opts.cfg.maps = 2;
        opts.cfg.trace_instrs = 4000;
        opts.benchmarks = vec![Benchmark::Crc32];
        opts.voltages = vec![MilliVolts::new(760), MilliVolts::new(400)];
        opts
    }

    #[test]
    fn profile_reports_nonzero_cache_and_engine_counters_per_voltage() {
        let report = run_profile(&tiny());
        assert_eq!(report.sections.len(), 2);
        for s in &report.sections {
            assert!(s.snapshot.counter("engine.trials.computed") > 0);
            assert!(s.snapshot.counter("cache.l1i.accesses") > 0);
            assert!(s.snapshot.counter("cache.l1d.accesses") > 0);
            assert!(s.snapshot.counter("cpu.instructions") > 0);
            assert!(s.snapshot.counter("sram.bist.words_tested") > 0);
            assert!(s.snapshot.values.contains_key("cache.l1i.access_cycles"));
        }
        // 400 mV injects real faults; 760 mV is yield-clean.
        assert_eq!(
            report.sections[0]
                .snapshot
                .counter("sram.bist.faulty_words"),
            0
        );
        assert!(
            report.sections[1]
                .snapshot
                .counter("sram.bist.faulty_words")
                > 0
        );
    }

    #[test]
    fn json_rendering_validates_and_strips_timings_deterministically() {
        let report = run_profile(&tiny());
        report.validate().expect("self-check");
        let lean = report.to_json(false);
        assert!(!lean.contains("volatile"));
        let full = report.to_json(true);
        assert!(full.contains("\"volatile\""));
        // Deterministic half is identical across runs.
        let again = run_profile(&tiny());
        assert_eq!(lean, again.to_json(false));
    }

    #[test]
    fn text_rendering_mentions_every_subsystem() {
        let report = run_profile(&tiny());
        let text = report.to_text();
        for needle in [
            "engine",
            "linker",
            "sram/bist",
            "sram/faultmap",
            "l1d",
            "dram",
            "760 mV",
            "400 mV",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
