//! Checked-in throughput baseline for the `perf-smoke` CI gate.
//!
//! `dvs-profile --bless-baseline` writes the current sweep's
//! configuration and measured trials/sec to `BENCH_baseline.json`;
//! `--check-baseline` re-runs the same sweep and fails when throughput
//! regressed by more than [`DEFAULT_TOLERANCE`]. The config echo is
//! compared first, so a baseline blessed for a different sweep shape is
//! an error, never a silently meaningless comparison.
//!
//! Throughput is machine-dependent, so the committed baseline documents
//! the reference machine's numbers; CI re-blesses on hardware changes
//! (see `EXPERIMENTS.md`).

use std::fmt::Write as _;
use std::path::Path;

use dvs_obs::json::{self, Value};

use crate::profile::ProfileReport;

/// Schema identifier embedded in the baseline file. `/2` added the
/// fault-model name to the config block (seed schema v3 made the model
/// part of every result's identity, so a baseline blessed under one
/// model must never gate a sweep run under another).
pub const BASELINE_SCHEMA: &str = "dvs-bench-baseline/2";

/// Default baseline location, relative to the repository root.
pub const DEFAULT_BASELINE_PATH: &str = "BENCH_baseline.json";

/// Allowed fractional throughput regression before the check fails.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// The persisted baseline: the sweep's shape plus its measured
/// throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Scheme name of the profiled configuration.
    pub scheme: String,
    /// Fault-model backend name (`iid`, `rowcol`, `clustered`).
    pub model: String,
    /// Fault maps per cell.
    pub maps: u64,
    /// Dynamic instructions per trial.
    pub trace_instrs: u64,
    /// Root seed.
    pub seed: u64,
    /// Worker threads (throughput scales with it, so it is part of the
    /// comparison key).
    pub threads: u64,
    /// Benchmark names, in sweep order.
    pub benchmarks: Vec<String>,
    /// Operating points in millivolts, in sweep order.
    pub voltages_mv: Vec<u64>,
    /// Trials the sweep computed.
    pub trials_computed: u64,
    /// The headline number: computed trials per wall-clock second.
    pub trials_per_sec: f64,
}

impl Baseline {
    /// Captures a baseline from a finished profile run.
    pub fn from_report(report: &ProfileReport) -> Self {
        let total = report.total_stats();
        Baseline {
            scheme: report.opts.scheme.name().to_string(),
            model: report.opts.cfg.fault_model.name().to_string(),
            maps: report.opts.cfg.maps,
            trace_instrs: report.opts.cfg.trace_instrs as u64,
            seed: report.opts.cfg.seed,
            threads: report.opts.cfg.threads as u64,
            benchmarks: report
                .opts
                .benchmarks
                .iter()
                .map(|b| b.name().to_string())
                .collect(),
            voltages_mv: report
                .opts
                .voltages
                .iter()
                .map(|v| u64::from(v.get()))
                .collect(),
            trials_computed: total.trials_computed,
            trials_per_sec: report.trials_per_sec(),
        }
    }

    /// Renders the baseline as a stable, human-reviewable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"schema\": \"{}\",\n  \"config\": {{\n    \"scheme\": \"{}\",\n    \
             \"model\": \"{}\",\n    \"maps\": {},\n    \"trace_instrs\": {},\n    \
             \"seed\": {},\n    \"threads\": {},\n    \"benchmarks\": [",
            json::json_escape(BASELINE_SCHEMA),
            json::json_escape(&self.scheme),
            json::json_escape(&self.model),
            self.maps,
            self.trace_instrs,
            self.seed,
            self.threads,
        );
        for (i, b) in self.benchmarks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", json::json_escape(b));
        }
        out.push_str("],\n    \"voltages_mv\": [");
        for (i, v) in self.voltages_mv.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{v}");
        }
        let _ = write!(
            out,
            "]\n  }},\n  \"trials_computed\": {},\n  \"trials_per_sec\": {:.3}\n}}",
            self.trials_computed, self.trials_per_sec,
        );
        out
    }

    /// Parses a baseline document.
    ///
    /// # Errors
    ///
    /// A description of the first malformed or missing field.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let value = Value::parse(raw.trim())?;
        if value.get("schema").and_then(Value::as_str) != Some(BASELINE_SCHEMA) {
            return Err(format!("baseline schema is not {BASELINE_SCHEMA}"));
        }
        let config = value.get("config").ok_or("missing config object")?;
        let num = |v: &Value, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| format!("missing numeric field {key}"))
        };
        let strs = |v: &Value, key: &str| -> Result<Vec<String>, String> {
            v.get(key)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("missing array {key}"))?
                .iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("non-string entry in {key}"))
                })
                .collect()
        };
        Ok(Baseline {
            scheme: config
                .get("scheme")
                .and_then(Value::as_str)
                .ok_or("missing config.scheme")?
                .to_string(),
            model: config
                .get("model")
                .and_then(Value::as_str)
                .ok_or("missing config.model")?
                .to_string(),
            maps: num(config, "maps")?,
            trace_instrs: num(config, "trace_instrs")?,
            seed: num(config, "seed")?,
            threads: num(config, "threads")?,
            benchmarks: strs(config, "benchmarks")?,
            voltages_mv: config
                .get("voltages_mv")
                .and_then(Value::as_arr)
                .ok_or("missing config.voltages_mv")?
                .iter()
                .map(|e| {
                    e.as_f64()
                        .map(|n| n as u64)
                        .ok_or_else(|| "non-numeric voltage".to_string())
                })
                .collect::<Result<_, _>>()?,
            trials_computed: num(&value, "trials_computed")?,
            trials_per_sec: value
                .get("trials_per_sec")
                .and_then(Value::as_f64)
                .ok_or("missing trials_per_sec")?,
        })
    }

    /// Loads a baseline from `path`.
    ///
    /// # Errors
    ///
    /// The filesystem error or parse failure, rendered for humans.
    pub fn load(path: &Path) -> Result<Self, String> {
        let raw = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Baseline::parse(&raw).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Whether `report` ran the same sweep shape this baseline was
    /// blessed for.
    fn config_matches(&self, other: &Baseline) -> Result<(), String> {
        let fields: [(&str, String, String); 8] = [
            ("scheme", self.scheme.clone(), other.scheme.clone()),
            ("model", self.model.clone(), other.model.clone()),
            ("maps", self.maps.to_string(), other.maps.to_string()),
            (
                "trace_instrs",
                self.trace_instrs.to_string(),
                other.trace_instrs.to_string(),
            ),
            ("seed", self.seed.to_string(), other.seed.to_string()),
            (
                "threads",
                self.threads.to_string(),
                other.threads.to_string(),
            ),
            (
                "benchmarks",
                format!("{:?}", self.benchmarks),
                format!("{:?}", other.benchmarks),
            ),
            (
                "voltages_mv",
                format!("{:?}", self.voltages_mv),
                format!("{:?}", other.voltages_mv),
            ),
        ];
        for (name, baseline, current) in fields {
            if baseline != current {
                return Err(format!(
                    "baseline config mismatch on {name}: baseline {baseline}, \
                     current run {current}; re-bless with --bless-baseline"
                ));
            }
        }
        Ok(())
    }

    /// Compares `report` against this baseline.
    ///
    /// # Errors
    ///
    /// A config mismatch, a trial-count change, or a throughput
    /// regression beyond `tolerance` (fractional, e.g. 0.10 for 10%).
    pub fn check(&self, report: &ProfileReport, tolerance: f64) -> Result<String, String> {
        let current = Baseline::from_report(report);
        self.config_matches(&current)?;
        if current.trials_computed != self.trials_computed {
            return Err(format!(
                "trial count changed: baseline computed {} trials, current run {} \
                 — results drifted, not just speed; re-bless after verifying",
                self.trials_computed, current.trials_computed,
            ));
        }
        let floor = self.trials_per_sec * (1.0 - tolerance);
        if current.trials_per_sec < floor {
            return Err(format!(
                "throughput regressed beyond {:.0}%: baseline {:.1} trials/s, \
                 current {:.1} trials/s (floor {floor:.1})",
                tolerance * 100.0,
                self.trials_per_sec,
                current.trials_per_sec,
            ));
        }
        Ok(format!(
            "throughput ok: {:.1} trials/s vs baseline {:.1} (floor {floor:.1})",
            current.trials_per_sec, self.trials_per_sec,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{run_profile, ProfileOptions};
    use dvs_sram::MilliVolts;
    use dvs_workloads::Benchmark;

    fn tiny_report() -> ProfileReport {
        let mut opts = ProfileOptions::default();
        opts.cfg.maps = 2;
        opts.cfg.trace_instrs = 4000;
        opts.benchmarks = vec![Benchmark::Crc32];
        opts.voltages = vec![MilliVolts::new(760), MilliVolts::new(400)];
        run_profile(&opts)
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let report = tiny_report();
        let mut baseline = Baseline::from_report(&report);
        assert!(baseline.trials_computed > 0);
        assert!(baseline.trials_per_sec > 0.0);
        // `to_json` renders trials/sec with three decimals, so the
        // round trip is exact only after the same rounding.
        baseline.trials_per_sec = (baseline.trials_per_sec * 1000.0).round() / 1000.0;
        let parsed = Baseline::parse(&baseline.to_json()).expect("round trip");
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn check_accepts_same_run_and_rejects_regression_and_mismatch() {
        let report = tiny_report();
        let mut baseline = Baseline::from_report(&report);
        // The same run is never slower than itself.
        baseline
            .check(&report, DEFAULT_TOLERANCE)
            .expect("self-check");
        // A baseline 100x faster than reality trips the gate.
        baseline.trials_per_sec *= 100.0;
        let err = baseline.check(&report, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        // A different sweep shape is a config error, not a comparison.
        baseline.trials_per_sec /= 100.0;
        baseline.maps += 1;
        let err = baseline.check(&report, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("config mismatch"), "{err}");
        // So is a different fault model: throughput under `clustered`
        // says nothing about throughput under `iid`.
        baseline.maps -= 1;
        baseline.model = "clustered".to_string();
        let err = baseline.check(&report, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("mismatch on model"), "{err}");
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"schema\":\"wrong/1\"}").is_err());
        // Pre-model schema/1 documents must re-bless, not half-parse.
        assert!(Baseline::parse("{\"schema\":\"dvs-bench-baseline/1\"}").is_err());
    }
}
