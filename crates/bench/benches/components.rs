//! Criterion micro-benchmarks of the simulator's hot paths: one group per
//! substrate, so regressions in any layer of the reproduction are caught.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dvs_cpu::{simulate, CoreConfig, MemSystem};
use dvs_linker::{adaptive_max_block_words, bbr_transform, BbrLinker};
use dvs_obs::MetricsRegistry;
use dvs_schemes::ffw::remap_word_offset;
use dvs_schemes::{L1Cache, SchemeKind};
use dvs_sram::{bist, CacheGeometry, FaultMap, MilliVolts, PfailModel, SramArray};
use dvs_workloads::{locality, Benchmark, Layout};

fn geom() -> CacheGeometry {
    CacheGeometry::dsn_l1()
}

fn bench_sram(c: &mut Criterion) {
    let mut g = c.benchmark_group("sram");
    let p_word = PfailModel::dsn45().pfail_word(MilliVolts::new(400));
    g.bench_function("faultmap_sample_32kb", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| FaultMap::sample(&geom(), p_word, &mut rng));
    });
    g.bench_function("march_bist_32kb", |b| {
        b.iter_batched(
            || {
                let mut a = SramArray::new(geom().total_words());
                a.inject_random(1e-3, &mut StdRng::seed_from_u64(2));
                a
            },
            |mut a| bist::march_test(&mut a),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_ffw_remap(c: &mut Criterion) {
    c.bench_function("ffw_remap_word_offset", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for fault in 0u32..64 {
                for word in 0..8 {
                    if let Some(s) = remap_word_offset(0b0111_1100, fault, word) {
                        acc = acc.wrapping_add(s);
                    }
                }
            }
            acc
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("l1_cache");
    g.throughput(Throughput::Elements(10_000));
    for kind in [SchemeKind::Conventional, SchemeKind::Ffw, SchemeKind::fba()] {
        let p_word = PfailModel::dsn45().pfail_word(MilliVolts::new(400));
        let fmap = FaultMap::sample(&geom(), p_word, &mut StdRng::seed_from_u64(3));
        g.bench_function(format!("read_10k_{kind}"), |b| {
            b.iter_batched(
                || (L1Cache::new(kind, fmap.clone()), dvs_cache::L2Cache::dsn()),
                |(mut l1, mut l2)| {
                    for i in 0..10_000u64 {
                        l1.read(dvs_cache::Addr::new((i * 36) % 65_536), &mut l2);
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_linker(c: &mut Criterion) {
    let mut g = c.benchmark_group("bbr");
    let wl = Benchmark::Basicmath.build(1);
    let p_word = PfailModel::dsn45().pfail_word(MilliVolts::new(400));
    let transformed = bbr_transform(wl.program(), adaptive_max_block_words(p_word));
    g.bench_function("transform_basicmath", |b| {
        b.iter(|| bbr_transform(wl.program(), adaptive_max_block_words(p_word)));
    });
    g.bench_function("link_basicmath_400mv", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let fmap = FaultMap::sample(&geom(), p_word, &mut StdRng::seed_from_u64(seed));
            BbrLinker::new(geom()).link(&transformed, &fmap)
        });
    });
    g.finish();
}

fn bench_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu");
    let n = 50_000usize;
    g.throughput(Throughput::Elements(n as u64));
    let wl = Benchmark::Qsort.build(1);
    let layout = Layout::sequential(wl.program());
    g.bench_function("simulate_50k_instructions", |b| {
        b.iter(|| {
            let mem = MemSystem::new(
                L1Cache::new(SchemeKind::Conventional, FaultMap::fault_free(&geom())),
                L1Cache::new(SchemeKind::Conventional, FaultMap::fault_free(&geom())),
                1607,
            );
            simulate(&CoreConfig::dsn2016(), mem, wl.trace(&layout, 0).take(n))
        });
    });
    // A/B pair for the observability overhead budget (< 2 % disabled):
    // the same simulation with no recorder vs a live registry. Compare
    // `simulate_50k_instructions` against `simulate_50k_recorded`.
    g.bench_function("simulate_50k_recorded", |b| {
        let registry = Arc::new(MetricsRegistry::new());
        b.iter(|| {
            let mem = MemSystem::new(
                L1Cache::new(SchemeKind::Conventional, FaultMap::fault_free(&geom())),
                L1Cache::new(SchemeKind::Conventional, FaultMap::fault_free(&geom())),
                1607,
            )
            .with_recorder(registry.clone());
            simulate(&CoreConfig::dsn2016(), mem, wl.trace(&layout, 0).take(n))
        });
    });
    g.bench_function("trace_generation_50k", |b| {
        b.iter(|| wl.trace(&layout, 0).take(n).count());
    });
    g.bench_function("locality_measure_50k", |b| {
        b.iter(|| locality::measure(wl.trace(&layout, 0).take(n), 10_000));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sram,
    bench_ffw_remap,
    bench_cache,
    bench_linker,
    bench_cpu
);
criterion_main!(benches);
