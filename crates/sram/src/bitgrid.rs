//! Compact fixed-size bitset used for fault maps and SRAM bit storage.

use serde::{Deserialize, Serialize};

/// A densely packed, fixed-length bit vector.
///
/// `BitGrid` is the storage substrate for [`crate::FaultMap`] (one bit per
/// cache word) and [`crate::SramArray`] (one bit per SRAM cell). It is a
/// deliberately small abstraction: fixed length, O(1) get/set, population
/// count, and iteration over set bits.
///
/// # Example
///
/// ```rust
/// use dvs_sram::BitGrid;
///
/// let mut g = BitGrid::new(100);
/// g.set(3, true);
/// g.set(99, true);
/// assert!(g.get(3));
/// assert!(!g.get(4));
/// assert_eq!(g.count_ones(), 2);
/// assert_eq!(g.iter_ones().collect::<Vec<_>>(), vec![3, 99]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitGrid {
    len: usize,
    words: Vec<u64>,
}

impl BitGrid {
    /// Creates a grid of `len` bits, all cleared.
    pub fn new(len: usize) -> Self {
        BitGrid {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Number of bits in the grid.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the grid holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / 64] >> (idx % 64) & 1 == 1
    }

    /// Writes bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let mask = 1u64 << (idx % 64);
        if value {
            self.words[idx / 64] |= mask;
        } else {
            self.words[idx / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Reference per-bit population count, retained as the oracle the
    /// word-level implementation is checked against.
    pub fn count_ones_reference(&self) -> usize {
        (0..self.len).filter(|&i| self.get(i)).count()
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            grid: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The raw 64-bit storage words, little-endian within each word (bit
    /// `i` of the grid is bit `i % 64` of word `i / 64`). Bits at or past
    /// `len` in the last word are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reads `len` consecutive bits starting at `start` as one word: bit
    /// `k` of the result is grid bit `start + k`. The window may straddle
    /// a storage-word boundary.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or the window runs past the end of the grid.
    pub fn extract(&self, start: usize, len: usize) -> u64 {
        assert!(len <= 64, "extract window {len} wider than 64 bits");
        assert!(
            start + len <= self.len,
            "window {start}+{len} out of range {}",
            self.len
        );
        if len == 0 {
            return 0;
        }
        let word = start / 64;
        let off = start % 64;
        let mut out = self.words[word] >> off;
        if off != 0 && word + 1 < self.words.len() {
            out |= self.words[word + 1] << (64 - off);
        }
        if len == 64 {
            out
        } else {
            out & ((1u64 << len) - 1)
        }
    }

    /// Index of the first set bit at or after `idx`, skipping clean
    /// storage words 64 bits at a time. Returns `None` when no set bit
    /// remains (including `idx >= len`).
    pub fn next_one_at_or_after(&self, idx: usize) -> Option<usize> {
        if idx >= self.len {
            return None;
        }
        let mut word = idx / 64;
        let mut current = self.words[word] & (!0u64 << (idx % 64));
        loop {
            if current != 0 {
                let found = word * 64 + current.trailing_zeros() as usize;
                return (found < self.len).then_some(found);
            }
            word += 1;
            current = *self.words.get(word)?;
        }
    }

    /// Index of the last set bit at or before `idx` (clamped to the grid),
    /// skipping clean storage words 64 bits at a time.
    pub fn prev_one_at_or_before(&self, idx: usize) -> Option<usize> {
        let idx = idx.min(self.len.checked_sub(1)?);
        let mut word = idx / 64;
        let keep = 63 - (idx % 64);
        let mut current = (self.words[word] << keep) >> keep;
        loop {
            if current != 0 {
                return Some(word * 64 + 63 - current.leading_zeros() as usize);
            }
            if word == 0 {
                return None;
            }
            word -= 1;
            current = self.words[word];
        }
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

/// Iterator over set-bit indices of a [`BitGrid`], produced by
/// [`BitGrid::iter_ones`].
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    grid: &'a BitGrid,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * 64 + bit;
                // Bits past `len` in the last word are never set, but guard
                // anyway so corruption cannot yield out-of-range indices.
                if idx < self.grid.len {
                    return Some(idx);
                }
                return None;
            }
            self.word_idx += 1;
            self.current = *self.grid.words.get(self.word_idx)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_grid_is_clear() {
        let g = BitGrid::new(130);
        assert_eq!(g.len(), 130);
        assert_eq!(g.count_ones(), 0);
        assert!(!g.get(0));
        assert!(!g.get(129));
    }

    #[test]
    fn set_and_clear_single_bit() {
        let mut g = BitGrid::new(65);
        g.set(64, true);
        assert!(g.get(64));
        g.set(64, false);
        assert!(!g.get(64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let g = BitGrid::new(10);
        let _ = g.get(10);
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let mut g = BitGrid::new(200);
        for idx in [0, 63, 64, 127, 128, 199] {
            g.set(idx, true);
        }
        assert_eq!(
            g.iter_ones().collect::<Vec<_>>(),
            vec![0, 63, 64, 127, 128, 199]
        );
    }

    #[test]
    fn clear_resets_everything() {
        let mut g = BitGrid::new(70);
        g.set(1, true);
        g.set(69, true);
        g.clear();
        assert_eq!(g.count_ones(), 0);
    }

    #[test]
    fn empty_grid() {
        let g = BitGrid::new(0);
        assert!(g.is_empty());
        assert_eq!(g.iter_ones().count(), 0);
    }

    /// Every single-bit position in a grid that is not a whole number of
    /// words: the word-level count/iterate/seek paths must agree with the
    /// per-bit reference at every position, in particular on both sides of
    /// each 64-bit storage-word boundary.
    #[test]
    fn word_level_queries_match_reference_at_every_position() {
        let len = 197; // 3 words + 5 trailing bits
        for i in 0..len {
            let mut g = BitGrid::new(len);
            g.set(i, true);
            assert_eq!(g.count_ones(), 1, "bit {i}");
            assert_eq!(g.count_ones_reference(), 1, "bit {i}");
            assert_eq!(g.iter_ones().collect::<Vec<_>>(), vec![i]);
            assert_eq!(g.next_one_at_or_after(0), Some(i));
            assert_eq!(g.next_one_at_or_after(i), Some(i));
            assert_eq!(g.next_one_at_or_after(i + 1), None);
            assert_eq!(g.prev_one_at_or_before(len - 1), Some(i));
            assert_eq!(g.prev_one_at_or_before(i), Some(i));
            if i > 0 {
                assert_eq!(g.prev_one_at_or_before(i - 1), None);
            }
        }
    }

    /// Every (start, len) extraction window over a fixed mixed pattern,
    /// checked bit-for-bit against `get`. Covers windows that straddle
    /// word boundaries and windows clipped at the end of the grid.
    #[test]
    fn extract_matches_per_bit_reference_for_all_windows() {
        let len = 200;
        let mut g = BitGrid::new(len);
        for i in 0..len {
            // Deterministic pattern with runs and isolated bits in
            // every storage word.
            if (i * 0x9E37) % 7 < 3 {
                g.set(i, true);
            }
        }
        for start in 0..len {
            for window in 0..=64.min(len - start) {
                let mut want = 0u64;
                for k in 0..window {
                    if g.get(start + k) {
                        want |= 1 << k;
                    }
                }
                assert_eq!(g.extract(start, window), want, "start={start} len={window}");
            }
        }
    }

    #[test]
    fn seek_helpers_handle_dense_patterns() {
        let mut g = BitGrid::new(130);
        for idx in [0, 1, 63, 64, 65, 127, 128, 129] {
            g.set(idx, true);
        }
        assert_eq!(g.next_one_at_or_after(2), Some(63));
        assert_eq!(g.next_one_at_or_after(66), Some(127));
        assert_eq!(g.prev_one_at_or_before(126), Some(65));
        assert_eq!(g.prev_one_at_or_before(62), Some(1));
        assert_eq!(g.words().len(), 3);
        assert_eq!(g.extract(63, 3), 0b111);
    }

    #[test]
    fn empty_grid_word_queries() {
        let g = BitGrid::new(0);
        assert_eq!(g.next_one_at_or_after(0), None);
        assert_eq!(g.prev_one_at_or_before(0), None);
        assert_eq!(g.extract(0, 0), 0);
    }

    proptest! {
        #[test]
        fn count_matches_inserted(indices in proptest::collection::btree_set(0usize..500, 0..100)) {
            let mut g = BitGrid::new(500);
            for &i in &indices {
                g.set(i, true);
            }
            prop_assert_eq!(g.count_ones(), indices.len());
            prop_assert_eq!(g.iter_ones().collect::<Vec<_>>(),
                            indices.iter().copied().collect::<Vec<_>>());
        }

        #[test]
        fn set_then_get_roundtrip(idx in 0usize..300, value: bool) {
            let mut g = BitGrid::new(300);
            g.set(idx, value);
            prop_assert_eq!(g.get(idx), value);
        }

        #[test]
        fn seek_and_count_match_reference_on_random_patterns(
            len in 1usize..300,
            indices in proptest::collection::btree_set(0usize..300, 0..80),
            probe in 0usize..300,
        ) {
            let mut g = BitGrid::new(len);
            let ones: Vec<usize> = indices.iter().copied().filter(|&i| i < len).collect();
            for &i in &ones {
                g.set(i, true);
            }
            prop_assert_eq!(g.count_ones(), g.count_ones_reference());
            prop_assert_eq!(g.iter_ones().collect::<Vec<_>>(), ones.clone());
            let next = ones.iter().copied().find(|&i| i >= probe);
            prop_assert_eq!(g.next_one_at_or_after(probe), next);
            let clamped = probe.min(len - 1);
            let prev = ones.iter().copied().rev().find(|&i| i <= clamped);
            prop_assert_eq!(g.prev_one_at_or_before(probe), prev);
        }
    }
}
