//! Compact fixed-size bitset used for fault maps and SRAM bit storage.

use serde::{Deserialize, Serialize};

/// A densely packed, fixed-length bit vector.
///
/// `BitGrid` is the storage substrate for [`crate::FaultMap`] (one bit per
/// cache word) and [`crate::SramArray`] (one bit per SRAM cell). It is a
/// deliberately small abstraction: fixed length, O(1) get/set, population
/// count, and iteration over set bits.
///
/// # Example
///
/// ```rust
/// use dvs_sram::BitGrid;
///
/// let mut g = BitGrid::new(100);
/// g.set(3, true);
/// g.set(99, true);
/// assert!(g.get(3));
/// assert!(!g.get(4));
/// assert_eq!(g.count_ones(), 2);
/// assert_eq!(g.iter_ones().collect::<Vec<_>>(), vec![3, 99]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitGrid {
    len: usize,
    words: Vec<u64>,
}

impl BitGrid {
    /// Creates a grid of `len` bits, all cleared.
    pub fn new(len: usize) -> Self {
        BitGrid {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Number of bits in the grid.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the grid holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / 64] >> (idx % 64) & 1 == 1
    }

    /// Writes bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let mask = 1u64 << (idx % 64);
        if value {
            self.words[idx / 64] |= mask;
        } else {
            self.words[idx / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            grid: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

/// Iterator over set-bit indices of a [`BitGrid`], produced by
/// [`BitGrid::iter_ones`].
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    grid: &'a BitGrid,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * 64 + bit;
                // Bits past `len` in the last word are never set, but guard
                // anyway so corruption cannot yield out-of-range indices.
                if idx < self.grid.len {
                    return Some(idx);
                }
                return None;
            }
            self.word_idx += 1;
            self.current = *self.grid.words.get(self.word_idx)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_grid_is_clear() {
        let g = BitGrid::new(130);
        assert_eq!(g.len(), 130);
        assert_eq!(g.count_ones(), 0);
        assert!(!g.get(0));
        assert!(!g.get(129));
    }

    #[test]
    fn set_and_clear_single_bit() {
        let mut g = BitGrid::new(65);
        g.set(64, true);
        assert!(g.get(64));
        g.set(64, false);
        assert!(!g.get(64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let g = BitGrid::new(10);
        let _ = g.get(10);
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let mut g = BitGrid::new(200);
        for idx in [0, 63, 64, 127, 128, 199] {
            g.set(idx, true);
        }
        assert_eq!(
            g.iter_ones().collect::<Vec<_>>(),
            vec![0, 63, 64, 127, 128, 199]
        );
    }

    #[test]
    fn clear_resets_everything() {
        let mut g = BitGrid::new(70);
        g.set(1, true);
        g.set(69, true);
        g.clear();
        assert_eq!(g.count_ones(), 0);
    }

    #[test]
    fn empty_grid() {
        let g = BitGrid::new(0);
        assert!(g.is_empty());
        assert_eq!(g.iter_ones().count(), 0);
    }

    proptest! {
        #[test]
        fn count_matches_inserted(indices in proptest::collection::btree_set(0usize..500, 0..100)) {
            let mut g = BitGrid::new(500);
            for &i in &indices {
                g.set(i, true);
            }
            prop_assert_eq!(g.count_ones(), indices.len());
            prop_assert_eq!(g.iter_ones().collect::<Vec<_>>(),
                            indices.iter().copied().collect::<Vec<_>>());
        }

        #[test]
        fn set_then_get_roundtrip(idx in 0usize..300, value: bool) {
            let mut g = BitGrid::new(300);
            g.set(idx, value);
            prop_assert_eq!(g.get(idx), value);
        }
    }
}
