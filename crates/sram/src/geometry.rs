//! Cache data-array geometry shared by the fault map, cache simulator and
//! linker.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::BYTES_PER_WORD;

/// Error returned when a [`CacheGeometry`] is internally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometryError {
    message: String,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache geometry: {}", self.message)
    }
}

impl std::error::Error for GeometryError {}

impl GeometryError {
    fn new(message: impl Into<String>) -> Self {
        GeometryError {
            message: message.into(),
        }
    }
}

/// Shape of a cache data array: capacity, associativity and block size.
///
/// The paper's L1 caches are 32 KB, 4-way, with 32-byte blocks and 32-bit
/// words (Table I), i.e. 8 words per block and 256 sets.
///
/// # Example
///
/// ```rust
/// use dvs_sram::CacheGeometry;
///
/// let geom = CacheGeometry::new(32 * 1024, 4, 32)?;
/// assert_eq!(geom.sets(), 256);
/// assert_eq!(geom.words_per_block(), 8);
/// assert_eq!(geom.total_words(), 8192);
/// # Ok::<(), dvs_sram::GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    capacity_bytes: u32,
    ways: u32,
    block_bytes: u32,
    sets: u32,
}

impl CacheGeometry {
    /// Creates a geometry from capacity, associativity and block size.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] unless the capacity, block size and way
    /// count are nonzero powers of two, the block holds at least one 4-byte
    /// word, and the capacity divides evenly into `ways × block` lines.
    pub fn new(capacity_bytes: u32, ways: u32, block_bytes: u32) -> Result<Self, GeometryError> {
        for (name, v) in [
            ("capacity", capacity_bytes),
            ("ways", ways),
            ("block size", block_bytes),
        ] {
            if v == 0 || !v.is_power_of_two() {
                return Err(GeometryError::new(format!(
                    "{name} must be a nonzero power of two, got {v}"
                )));
            }
        }
        if block_bytes < BYTES_PER_WORD {
            return Err(GeometryError::new(format!(
                "block size {block_bytes} smaller than one {BYTES_PER_WORD}-byte word"
            )));
        }
        let way_bytes = ways
            .checked_mul(block_bytes)
            .ok_or_else(|| GeometryError::new("ways × block overflows"))?;
        if capacity_bytes < way_bytes {
            return Err(GeometryError::new(format!(
                "capacity {capacity_bytes} B smaller than one line per way ({way_bytes} B)"
            )));
        }
        let sets = capacity_bytes / way_bytes;
        Ok(CacheGeometry {
            capacity_bytes,
            ways,
            block_bytes,
            sets,
        })
    }

    /// The paper's L1 configuration: 32 KB, 4-way, 32 B blocks (Table I).
    pub fn dsn_l1() -> Self {
        CacheGeometry::new(32 * 1024, 4, 32).expect("paper L1 geometry is valid")
    }

    /// The paper's L2 configuration: 512 KB, 8-way, 32 B blocks (Table I).
    pub fn dsn_l2() -> Self {
        CacheGeometry::new(512 * 1024, 8, 32).expect("paper L2 geometry is valid")
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        self.capacity_bytes
    }

    /// Associativity (number of ways).
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Block (cache line) size in bytes.
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Number of 4-byte words per block.
    pub fn words_per_block(&self) -> u32 {
        self.block_bytes / BYTES_PER_WORD
    }

    /// Total number of cache lines (sets × ways).
    pub fn total_lines(&self) -> u32 {
        self.sets * self.ways
    }

    /// Total number of 4-byte words in the data array.
    pub fn total_words(&self) -> u32 {
        self.total_lines() * self.words_per_block()
    }

    /// Total number of data bits (excluding tags).
    pub fn total_bits(&self) -> u64 {
        u64::from(self.capacity_bytes) * 8
    }

    /// Number of set-index bits (`log2(sets)`).
    pub fn index_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }

    /// Number of block-offset bits (`log2(block_bytes)`).
    pub fn offset_bits(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB {}-way {}B-block",
            self.capacity_bytes / 1024,
            self.ways,
            self.block_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry() {
        let g = CacheGeometry::dsn_l1();
        assert_eq!(g.sets(), 256);
        assert_eq!(g.ways(), 4);
        assert_eq!(g.words_per_block(), 8);
        assert_eq!(g.total_lines(), 1024);
        assert_eq!(g.total_words(), 8192);
        assert_eq!(g.total_bits(), 262_144);
        assert_eq!(g.index_bits(), 8);
        assert_eq!(g.offset_bits(), 5);
    }

    #[test]
    fn paper_l2_geometry() {
        let g = CacheGeometry::dsn_l2();
        assert_eq!(g.sets(), 2048);
        assert_eq!(g.ways(), 8);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(CacheGeometry::new(3000, 4, 32).is_err());
        assert!(CacheGeometry::new(32 * 1024, 3, 32).is_err());
        assert!(CacheGeometry::new(32 * 1024, 4, 24).is_err());
    }

    #[test]
    fn rejects_zero() {
        assert!(CacheGeometry::new(0, 4, 32).is_err());
        assert!(CacheGeometry::new(32 * 1024, 0, 32).is_err());
    }

    #[test]
    fn rejects_block_smaller_than_word() {
        assert!(CacheGeometry::new(32 * 1024, 4, 2).is_err());
    }

    #[test]
    fn rejects_capacity_below_one_line_per_way() {
        assert!(CacheGeometry::new(64, 4, 32).is_err());
    }

    #[test]
    fn direct_mapped_is_valid() {
        let g = CacheGeometry::new(1024, 1, 32).unwrap();
        assert_eq!(g.sets(), 32);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(CacheGeometry::dsn_l1().to_string(), "32KB 4-way 32B-block");
    }

    #[test]
    fn error_display_mentions_cause() {
        let err = CacheGeometry::new(3000, 4, 32).unwrap_err();
        assert!(err.to_string().contains("power of two"));
    }
}
