//! Pluggable spatial fault models behind the Monte-Carlo generator.
//!
//! Every conclusion the repro draws rests, by default, on i.i.d. word
//! failures — but measured reduced-voltage SRAM faults are spatially
//! correlated: whole rows and columns are weak (shared wordline / bitline
//! periphery) and defects cluster around process-variation hotspots
//! (MoRS; see PAPERS.md). A [`FaultModel`] picks the spatial structure
//! while leaving the *rate* alone: at failure probability `p` every
//! backend produces maps whose expected faulty-word fraction is exactly
//! `p` — correlation changes structure, not rate.
//!
//! # Construction
//!
//! All backends share one mechanism. From the chain seed alone, a model
//! derives
//!
//! * a per-word **multiplier** `m_i ≥ 1` (weak words get larger values),
//!   a pure function of `(model, geometry, seed)` — rung-independent, so
//!   the same die keeps the same weak structure down the whole voltage
//!   ladder; and
//! * a per-word **uniform** `u_i ∈ [0, 1)` hashed from the seed.
//!
//! Word `i` is faulty at probability `p` iff `u_i < min(1, m_i · t(p))`,
//! where the threshold `t(p)` solves `mean_i min(1, m_i · t) = p`
//! exactly ([`threshold_for`]). Because `t(p)` is monotone in `p` and the
//! uniforms are fixed, the fault set at a lower rung is a superset of
//! every higher rung's — voltage-ladder nesting holds *by construction*,
//! with no per-rung re-seeding to get wrong. The i.i.d. backend bypasses
//! all of this and keeps the original geometric skip-sampler stream, so
//! pre-existing maps replay bit-identically.

use serde::{Deserialize, Serialize};

use crate::CacheGeometry;

/// Domain-separation tags for the per-model hash streams. Distinct tags
/// keep row weakness, column weakness, cluster centers and per-word
/// uniforms statistically unrelated even though they share one seed.
const STREAM_ROWS: u64 = 0x6D6F_6465_6C2D_726F; // "model-ro"
const STREAM_COLS: u64 = 0x6D6F_6465_6C2D_636F; // "model-co"
const STREAM_CENTERS: u64 = 0x6D6F_6465_6C2D_6365; // "model-ce"
const STREAM_BITS: u64 = 0x6D6F_6465_6C2D_6269; // "model-bi"

/// SplitMix64-style avalanche of two words; the basis of every derived
/// stream so that nearby seeds and indices decorrelate.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash word onto `[0, 1)` with 53 bits of precision.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Fixed-point milli factor as a float, floored at 1× so multipliers can
/// never *reduce* a word's failure probability below the i.i.d. rate.
fn factor(milli: u32) -> f64 {
    (f64::from(milli) / 1000.0).max(1.0)
}

/// Spatial structure of Monte-Carlo fault maps.
///
/// Parameters are integer fixed-point (`ppm` fractions, `milli` factors)
/// so the model is `Eq + Hash` and can sit inside `EvalConfig` and the
/// result-store key (seed schema v3): two cells computed under different
/// models can never alias one store file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultModel {
    /// Independent word failures — the paper's Section V protocol and
    /// this repo's historical behavior. Bit-identical to the pre-model
    /// sampler for the same seed.
    #[default]
    Iid,
    /// Row/column weakness: each physical row (cache frame) and each
    /// column (word offset within a block) is independently weak with
    /// the given ppm fraction; weak lines multiply their words' failure
    /// odds by the given milli factor (both factors stack).
    RowColumn {
        /// Fraction of weak rows, in parts per million.
        weak_row_ppm: u32,
        /// Failure-odds multiplier of a weak row, in thousandths (≥ 1000).
        row_factor_milli: u32,
        /// Fraction of weak columns, in parts per million.
        weak_col_ppm: u32,
        /// Failure-odds multiplier of a weak column, in thousandths (≥ 1000).
        col_factor_milli: u32,
    },
    /// Cluster hotspots: `centers` seed points on the (frame, word)
    /// torus; a word's multiplier peaks at `factor_milli` on a center
    /// and halves per step of toroidal Chebyshev distance, reaching 1×
    /// beyond `radius`.
    Clustered {
        /// Number of cluster centers drawn from the chain seed.
        centers: u32,
        /// Peak failure-odds multiplier at a center, in thousandths (≥ 1000).
        factor_milli: u32,
        /// Chebyshev distance beyond which the multiplier is exactly 1×.
        radius: u32,
    },
}

impl FaultModel {
    /// The three canonical backends, in CLI order.
    pub const ALL: [FaultModel; 3] = [
        FaultModel::Iid,
        FaultModel::row_column(),
        FaultModel::clustered(),
    ];

    /// The canonical row/column preset: 6 % of rows are 6× weak, 12 % of
    /// columns are 3× weak (MoRS-flavored defaults, not calibration).
    pub const fn row_column() -> Self {
        FaultModel::RowColumn {
            weak_row_ppm: 60_000,
            row_factor_milli: 6_000,
            weak_col_ppm: 120_000,
            col_factor_milli: 3_000,
        }
    }

    /// The canonical clustered preset: 12 hotspots, 12× peak, radius 3.
    pub const fn clustered() -> Self {
        FaultModel::Clustered {
            centers: 12,
            factor_milli: 12_000,
            radius: 3,
        }
    }

    /// Short backend name: `iid`, `rowcol` or `clustered`.
    pub fn name(&self) -> &'static str {
        match self {
            FaultModel::Iid => "iid",
            FaultModel::RowColumn { .. } => "rowcol",
            FaultModel::Clustered { .. } => "clustered",
        }
    }

    /// Parses a backend name into its canonical preset.
    pub fn parse(s: &str) -> Option<FaultModel> {
        match s {
            "iid" => Some(FaultModel::Iid),
            "rowcol" => Some(FaultModel::row_column()),
            "clustered" => Some(FaultModel::clustered()),
            _ => None,
        }
    }

    /// Whether this is the i.i.d. backend (the skip-sampler fast path).
    pub fn is_iid(&self) -> bool {
        matches!(self, FaultModel::Iid)
    }

    /// Per-word failure-odds multipliers for one simulated die, derived
    /// purely from `(self, geometry, seed)`. All entries are ≥ 1 and the
    /// layout is the fault map's linear word order (`frame * wpb + word`).
    pub fn multipliers(&self, geometry: &CacheGeometry, seed: u64) -> Vec<f64> {
        let n = geometry.total_words() as usize;
        let wpb = geometry.words_per_block() as usize;
        match *self {
            FaultModel::Iid => vec![1.0; n],
            FaultModel::RowColumn {
                weak_row_ppm,
                row_factor_milli,
                weak_col_ppm,
                col_factor_milli,
            } => {
                let rows = geometry.total_lines() as usize;
                let row_seed = mix(seed, STREAM_ROWS);
                let col_seed = mix(seed, STREAM_COLS);
                let row_p = f64::from(weak_row_ppm) / 1e6;
                let col_p = f64::from(weak_col_ppm) / 1e6;
                let row_m = factor(row_factor_milli);
                let col_m = factor(col_factor_milli);
                let weak_row: Vec<bool> = (0..rows)
                    .map(|r| unit(mix(row_seed, r as u64 + 1)) < row_p)
                    .collect();
                let weak_col: Vec<bool> = (0..wpb)
                    .map(|c| unit(mix(col_seed, c as u64 + 1)) < col_p)
                    .collect();
                (0..n)
                    .map(|i| {
                        let mut m = 1.0;
                        if weak_row[i / wpb] {
                            m *= row_m;
                        }
                        if weak_col[i % wpb] {
                            m *= col_m;
                        }
                        m
                    })
                    .collect()
            }
            FaultModel::Clustered {
                centers,
                factor_milli,
                radius,
            } => {
                let rows = geometry.total_lines() as i64;
                let cols = wpb as i64;
                let peak = factor(factor_milli);
                let center_seed = mix(seed, STREAM_CENTERS);
                // total_lines and words_per_block are powers of two, so
                // masking the hash halves draws centers uniformly.
                let pts: Vec<(i64, i64)> = (0..centers)
                    .map(|k| {
                        let h = mix(center_seed, u64::from(k) + 1);
                        (
                            ((h >> 32) & (rows as u64 - 1)) as i64,
                            (h & (cols as u64 - 1)) as i64,
                        )
                    })
                    .collect();
                (0..n as i64)
                    .map(|i| {
                        let (r, c) = (i / cols, i % cols);
                        let mut best = u32::MAX;
                        for &(cr, cc) in &pts {
                            let dr = (r - cr).abs();
                            let dc = (c - cc).abs();
                            let dr = dr.min(rows - dr) as u32;
                            let dc = dc.min(cols - dc) as u32;
                            best = best.min(dr.max(dc));
                        }
                        if best > radius {
                            1.0
                        } else {
                            1.0 + (peak - 1.0) * 0.5f64.powi(best as i32)
                        }
                    })
                    .collect()
            }
        }
    }

    /// The per-word uniforms of one simulated die (values in `[0, 1)`),
    /// hashed from the chain seed — fixed across rungs, so thresholding
    /// them at a growing `t(p)` yields nested fault sets.
    pub fn uniforms(geometry: &CacheGeometry, seed: u64) -> Vec<f64> {
        let bit_seed = mix(seed, STREAM_BITS);
        (0..geometry.total_words() as u64)
            .map(|i| unit(mix(bit_seed, i + 1)))
            .collect()
    }
}

/// Groups equal multipliers into `(multiplier, count)` classes sorted by
/// descending multiplier — the form [`threshold_for`] consumes. The
/// class count is tiny (≤ 4 for row/column, ≤ `radius + 2` for
/// clustered) because multipliers come from small exact value sets.
pub fn multiplier_classes(multipliers: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = multipliers.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("multipliers are finite"));
    let mut classes: Vec<(f64, f64)> = Vec::new();
    for m in sorted {
        match classes.last_mut() {
            Some((value, count)) if *value == m => *count += 1.0,
            _ => classes.push((m, 1.0)),
        }
    }
    classes
}

/// Solves `mean_i min(1, m_i · t) = p` for `t` over multiplier classes
/// sorted descending (all multipliers ≥ 1).
///
/// The left side is continuous, piecewise linear and increasing in `t`,
/// equal to 0 at `t = 0` and to 1 at `t = 1` (every class saturates by
/// then, since `m ≥ 1`), so a solution exists for every `p ∈ [0, 1]`.
/// Walking saturation prefixes finds the segment analytically; no
/// iteration, no tolerance-dependent convergence.
pub fn threshold_for(classes: &[(f64, f64)], p: f64) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 || classes.is_empty() {
        return 1.0;
    }
    let total: f64 = classes.iter().map(|&(_, n)| n).sum();
    let want = p * total;
    // In segment j (classes 0..j saturated): g(t) = saturated + t·weight.
    let mut saturated = 0.0;
    let mut weight: f64 = classes.iter().map(|&(m, n)| m * n).sum();
    for j in 0..=classes.len() {
        let lo = if j == 0 { 0.0 } else { 1.0 / classes[j - 1].0 };
        let hi = if j == classes.len() {
            1.0
        } else {
            1.0 / classes[j].0
        };
        if weight > 0.0 {
            let t = (want - saturated) / weight;
            if t >= lo - 1e-12 && t <= hi + 1e-12 {
                return t.clamp(0.0, 1.0);
            }
        } else if want <= saturated {
            return lo;
        }
        if j < classes.len() {
            saturated += classes[j].1;
            weight -= classes[j].0 * classes[j].1;
        }
    }
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::dsn_l1()
    }

    #[test]
    fn names_round_trip_through_parse() {
        for model in FaultModel::ALL {
            assert_eq!(FaultModel::parse(model.name()), Some(model));
        }
        assert_eq!(FaultModel::parse("bogus"), None);
    }

    #[test]
    fn default_is_iid() {
        assert!(FaultModel::default().is_iid());
        assert_eq!(FaultModel::default(), FaultModel::Iid);
    }

    #[test]
    fn multipliers_are_deterministic_and_at_least_one() {
        for model in FaultModel::ALL {
            let a = model.multipliers(&geom(), 42);
            let b = model.multipliers(&geom(), 42);
            assert_eq!(
                a,
                b,
                "{} multipliers must be pure in the seed",
                model.name()
            );
            assert_eq!(a.len(), geom().total_words() as usize);
            assert!(a.iter().all(|&m| m >= 1.0));
        }
        assert_ne!(
            FaultModel::row_column().multipliers(&geom(), 1),
            FaultModel::row_column().multipliers(&geom(), 2),
            "different seeds must draw different weak structure"
        );
    }

    #[test]
    fn iid_multipliers_are_flat() {
        assert!(FaultModel::Iid
            .multipliers(&geom(), 5)
            .iter()
            .all(|&m| m == 1.0));
    }

    #[test]
    fn row_column_weakness_spans_whole_lines() {
        let model = FaultModel::row_column();
        let m = model.multipliers(&geom(), 11);
        let wpb = geom().words_per_block() as usize;
        // Any word with multiplier above the column-only factor implies
        // the whole row shares the row factor: row weakness is per-frame.
        let rows = geom().total_lines() as usize;
        let mut weak_rows = 0;
        for r in 0..rows {
            let row = &m[r * wpb..(r + 1) * wpb];
            let row_is_weak = row.iter().any(|&v| v >= 6.0);
            if row_is_weak {
                weak_rows += 1;
                assert!(
                    row.iter().all(|&v| v >= 6.0),
                    "row weakness must cover every word of frame {r}"
                );
            }
        }
        assert!(weak_rows > 0, "preset should draw some weak rows");
    }

    #[test]
    fn clustered_multipliers_peak_and_decay() {
        let model = FaultModel::clustered();
        let m = model.multipliers(&geom(), 3);
        let peak = m.iter().cloned().fold(1.0f64, f64::max);
        assert!((peak - 12.0).abs() < 1e-12, "peak {peak}");
        let elevated = m.iter().filter(|&&v| v > 1.0).count();
        assert!(elevated > 0);
        // Hotspots are local: most of the array stays at 1×.
        assert!(elevated < m.len() / 2, "elevated {elevated}");
    }

    #[test]
    fn class_grouping_is_exact() {
        let classes = multiplier_classes(&[1.0, 6.0, 1.0, 3.0, 6.0, 18.0]);
        assert_eq!(
            classes,
            vec![(18.0, 1.0), (6.0, 2.0), (3.0, 1.0), (1.0, 2.0)]
        );
    }

    #[test]
    fn threshold_hits_the_requested_mean_exactly() {
        for model in FaultModel::ALL {
            let m = model.multipliers(&geom(), 9);
            let classes = multiplier_classes(&m);
            for p in [0.0, 1e-5, 1e-3, 0.02, 0.25, 0.7, 0.999, 1.0] {
                let t = threshold_for(&classes, p);
                let mean: f64 = m.iter().map(|&mi| (mi * t).min(1.0)).sum::<f64>() / m.len() as f64;
                assert!(
                    (mean - p).abs() < 1e-9,
                    "{}: mean {mean} != p {p} at t {t}",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn threshold_is_monotone_in_p() {
        for model in FaultModel::ALL {
            let classes = multiplier_classes(&model.multipliers(&geom(), 17));
            let mut prev = 0.0;
            for step in 0..=1000 {
                let p = f64::from(step) / 1000.0;
                let t = threshold_for(&classes, p);
                assert!(t >= prev - 1e-15, "t regressed at p={p}");
                prev = t;
            }
            assert!((threshold_for(&classes, 1.0) - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn uniforms_are_deterministic_in_unit_interval() {
        let a = FaultModel::uniforms(&geom(), 123);
        let b = FaultModel::uniforms(&geom(), 123);
        assert_eq!(a, b);
        assert!(a.iter().all(|&u| (0.0..1.0).contains(&u)));
        assert_ne!(a, FaultModel::uniforms(&geom(), 124));
    }

    #[test]
    fn serde_round_trips_every_backend() {
        use serde::{Deserialize, Serialize};
        for model in FaultModel::ALL {
            let mut s = serde::bin::Serializer::new();
            model.serialize(&mut s);
            let bytes = s.into_bytes();
            let mut d = serde::bin::Deserializer::new(&bytes);
            let back = FaultModel::deserialize(&mut d).unwrap();
            assert_eq!(back, model);
        }
    }
}
