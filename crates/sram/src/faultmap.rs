//! Word-granularity defect maps over a cache data array.

use dvs_obs::{Recorder, Span};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{BitGrid, CacheGeometry};

/// Identifies one physical cache frame (line) by set and way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FrameId {
    /// Set index.
    pub set: u32,
    /// Way index within the set.
    pub way: u32,
}

impl FrameId {
    /// Creates a frame id.
    pub const fn new(set: u32, way: u32) -> Self {
        FrameId { set, way }
    }
}

/// A map of defective 32-bit words in a cache data array at one DVFS
/// operating point.
///
/// The paper assumes BIST identifies defective words at every supported
/// operating point and records them in fault maps kept in main memory
/// (Section IV); this type is that artifact. The same map is viewed two
/// ways:
///
/// * **frame view** (`set`, `way`, `word`) — used by the FFW data cache and
///   all set-associative schemes;
/// * **linear view** (word index `0 .. total_words`) — used by the BBR
///   linker, which sees the direct-mapped instruction cache as a flat array
///   of `csize` words (Algorithm 1).
///
/// The linear line index is `way * sets + set`, mirroring the paper's
/// Figure 7 where the low tag bits select the way above the set-index bits.
///
/// # Example
///
/// ```rust
/// use dvs_sram::{CacheGeometry, FaultMap, FrameId};
/// use rand::SeedableRng;
///
/// let geom = CacheGeometry::dsn_l1();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let map = FaultMap::sample(&geom, 0.05, &mut rng);
/// let frame = FrameId::new(0, 0);
/// let pattern = map.frame_fault_pattern(frame);
/// assert_eq!(pattern.count_ones() + map.fault_free_words_in_frame(frame), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMap {
    geometry: CacheGeometry,
    words: BitGrid,
}

/// Sets each bit of `grid` with independent probability `p` using
/// geometric skip sampling: each uniform draw yields the run of clean
/// words before the next faulty one, so cost is O(faults), not O(words).
/// `on_new` is called with each index that transitions clear → set (bits
/// already set count as hits but are not reported — the thinning step of
/// [`FaultChain::advance_to`] relies on this).
pub(crate) fn skip_sample<R: Rng + ?Sized>(
    grid: &mut BitGrid,
    p: f64,
    rng: &mut R,
    mut on_new: impl FnMut(usize),
) {
    let total = grid.len();
    if p <= 0.0 || total == 0 {
        return;
    }
    if p >= 1.0 {
        for idx in 0..total {
            if !grid.get(idx) {
                grid.set(idx, true);
                on_new(idx);
            }
        }
        return;
    }
    // Gap to the next hit ~ Geometric(p): floor(ln(1-U) / ln(1-p)).
    // U ∈ [0, 1) so 1-U ∈ (0, 1] and the logarithm is finite.
    let ln_q = (1.0 - p).ln();
    let mut pos = 0usize;
    loop {
        let u: f64 = rng.gen();
        let gap = (1.0 - u).ln() / ln_q;
        if gap >= (total - pos) as f64 {
            return;
        }
        pos += gap as usize;
        if !grid.get(pos) {
            grid.set(pos, true);
            on_new(pos);
        }
        pos += 1;
        if pos >= total {
            return;
        }
    }
}

impl FaultMap {
    /// Creates an all-fault-free map (high-voltage operation).
    ///
    /// # Panics
    ///
    /// Panics if the geometry has more than 32 words per block; fault
    /// patterns are exposed as `u32` masks.
    pub fn fault_free(geometry: &CacheGeometry) -> Self {
        assert!(
            geometry.words_per_block() <= 32,
            "fault patterns are u32 masks; {} words per block unsupported",
            geometry.words_per_block()
        );
        FaultMap {
            geometry: *geometry,
            words: BitGrid::new(geometry.total_words() as usize),
        }
    }

    /// Samples a map by flipping each word faulty independently with
    /// probability `p_word` (the Monte-Carlo protocol of Section V).
    ///
    /// Implemented with geometric skip sampling: instead of one uniform
    /// draw per word, one draw yields the gap to the next faulty word, so
    /// generation cost scales with the number of faults rather than the
    /// number of words. The marginal distribution is identical to the
    /// per-word reference ([`FaultMap::sample_reference`]) but the RNG
    /// stream consumed differs; stored results are keyed under the v2
    /// seed schema (see `dvs-core`'s store `KEY_VERSION`).
    ///
    /// # Panics
    ///
    /// Panics if `p_word` is not within `[0, 1]` or the geometry exceeds 32
    /// words per block.
    pub fn sample<R: Rng + ?Sized>(geometry: &CacheGeometry, p_word: f64, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_word),
            "word failure probability {p_word} outside [0, 1]"
        );
        let mut map = FaultMap::fault_free(geometry);
        skip_sample(&mut map.words, p_word, rng, |_| {});
        map
    }

    /// The pre-skip-sampler reference: one uniform draw per word. Retained
    /// as the distributional oracle for [`FaultMap::sample`]; the two
    /// produce identically distributed maps but consume different RNG
    /// streams, so equal seeds do not give equal maps across the pair.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`FaultMap::sample`].
    pub fn sample_reference<R: Rng + ?Sized>(
        geometry: &CacheGeometry,
        p_word: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_word),
            "word failure probability {p_word} outside [0, 1]"
        );
        let mut map = FaultMap::fault_free(geometry);
        for idx in 0..geometry.total_words() as usize {
            if rng.gen::<f64>() < p_word {
                map.words.set(idx, true);
            }
        }
        map
    }

    /// [`FaultMap::sample`] with observability: records the generation
    /// wall-clock time (`sram.faultmap.sample_nanos`), the skip-sampler
    /// span (`sram.faultmap.skip_sample_nanos`), the deterministic
    /// counters `sram.faultmap.samples` / `sram.faultmap.faulty_words`,
    /// and a per-sample `sram.faultmap.faulty_words` value histogram into
    /// `recorder`. The map produced is identical to [`FaultMap::sample`]
    /// with the same RNG state.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`FaultMap::sample`].
    pub fn sample_recorded<R: Rng + ?Sized>(
        geometry: &CacheGeometry,
        p_word: f64,
        rng: &mut R,
        recorder: &dyn Recorder,
    ) -> Self {
        let map = {
            let _span = Span::enter(recorder, "sram.faultmap.sample_nanos");
            let _skip = Span::enter(recorder, "sram.faultmap.skip_sample_nanos");
            FaultMap::sample(geometry, p_word, rng)
        };
        recorder.add("sram.faultmap.samples", 1);
        recorder.add("sram.faultmap.faulty_words", map.faulty_words() as u64);
        recorder.observe("sram.faultmap.faulty_words", map.faulty_words() as u64);
        map
    }

    /// Builds a map with exactly the given linear word indices faulty.
    ///
    /// Useful for tests and for replaying BIST results.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_faulty_indices(
        geometry: &CacheGeometry,
        indices: impl IntoIterator<Item = u32>,
    ) -> Self {
        let mut map = FaultMap::fault_free(geometry);
        for idx in indices {
            map.words.set(idx as usize, true);
        }
        map
    }

    /// The geometry this map covers.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Mutable access to the packed storage, for the incremental chain
    /// sampler in [`crate::FaultChain`].
    pub(crate) fn words_mut(&mut self) -> &mut BitGrid {
        &mut self.words
    }

    /// The packed linear fault bits (one bit per word, frame-contiguous).
    pub fn word_bits(&self) -> &BitGrid {
        &self.words
    }

    fn index(&self, frame: FrameId, word: u32) -> usize {
        debug_assert!(frame.set < self.geometry.sets(), "set out of range");
        debug_assert!(frame.way < self.geometry.ways(), "way out of range");
        debug_assert!(word < self.geometry.words_per_block(), "word out of range");
        let line = frame.way * self.geometry.sets() + frame.set;
        (line * self.geometry.words_per_block() + word) as usize
    }

    /// Whether `word` of `frame` is defective.
    pub fn is_faulty(&self, frame: FrameId, word: u32) -> bool {
        self.words.get(self.index(frame, word))
    }

    /// Marks or clears a defect (used by BIST and tests).
    pub fn set_faulty(&mut self, frame: FrameId, word: u32, faulty: bool) {
        let idx = self.index(frame, word);
        self.words.set(idx, faulty);
    }

    /// The frame's fault pattern as a bitmask: bit `i` set means word `i`
    /// is defective. This is the `FMAP` entry of the paper's Figure 4.
    ///
    /// A frame's words are contiguous in the linear view, so the pattern
    /// is a single ≤32-bit window extracted from the packed storage
    /// rather than one bit query per word.
    pub fn frame_fault_pattern(&self, frame: FrameId) -> u32 {
        let base = self.index(frame, 0);
        self.words
            .extract(base, self.geometry.words_per_block() as usize) as u32
    }

    /// Reference per-bit implementation of [`FaultMap::frame_fault_pattern`],
    /// retained as the oracle the packed extraction is checked against.
    pub fn frame_fault_pattern_reference(&self, frame: FrameId) -> u32 {
        let mut pattern = 0;
        for word in 0..self.geometry.words_per_block() {
            if self.is_faulty(frame, word) {
                pattern |= 1 << word;
            }
        }
        pattern
    }

    /// Number of fault-free words remaining in a frame.
    pub fn fault_free_words_in_frame(&self, frame: FrameId) -> u32 {
        self.geometry.words_per_block() - self.frame_fault_pattern(frame).count_ones()
    }

    /// Whether a frame has no defective word at all.
    pub fn frame_is_fault_free(&self, frame: FrameId) -> bool {
        self.frame_fault_pattern(frame) == 0
    }

    /// Whether linear word `index` (0 .. `total_words`) is defective — the
    /// BBR linker's view of a direct-mapped cache.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn linear_is_faulty(&self, index: u32) -> bool {
        self.words.get(index as usize)
    }

    /// Total number of defective words.
    pub fn faulty_words(&self) -> usize {
        self.words.count_ones()
    }

    /// Fraction of words that are defective.
    pub fn faulty_fraction(&self) -> f64 {
        self.faulty_words() as f64 / self.geometry.total_words() as f64
    }

    /// Number of frames that contain at least one defective word.
    pub fn faulty_frames(&self) -> u32 {
        self.frames()
            .filter(|&f| !self.frame_is_fault_free(f))
            .count() as u32
    }

    /// Iterates over every frame id in (way-major) storage order.
    pub fn frames(&self) -> impl Iterator<Item = FrameId> + '_ {
        let sets = self.geometry.sets();
        let ways = self.geometry.ways();
        (0..ways).flat_map(move |way| (0..sets).map(move |set| FrameId { set, way }))
    }

    /// Iterates over the linear indices of all defective words.
    pub fn iter_faulty_linear(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter_ones().map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom() -> CacheGeometry {
        CacheGeometry::dsn_l1()
    }

    #[test]
    fn fault_free_map_is_clean() {
        let map = FaultMap::fault_free(&geom());
        assert_eq!(map.faulty_words(), 0);
        assert_eq!(map.faulty_frames(), 0);
        assert!(map.frame_is_fault_free(FrameId::new(255, 3)));
    }

    #[test]
    fn frame_and_linear_views_agree() {
        let g = geom();
        let mut map = FaultMap::fault_free(&g);
        let frame = FrameId::new(5, 2);
        map.set_faulty(frame, 3, true);
        let line = 2 * g.sets() + 5;
        let linear = line * g.words_per_block() + 3;
        assert!(map.linear_is_faulty(linear));
        assert_eq!(map.iter_faulty_linear().collect::<Vec<_>>(), vec![linear]);
    }

    #[test]
    fn pattern_reflects_faults() {
        let mut map = FaultMap::fault_free(&geom());
        let frame = FrameId::new(0, 0);
        map.set_faulty(frame, 0, true);
        map.set_faulty(frame, 7, true);
        assert_eq!(map.frame_fault_pattern(frame), 0b1000_0001);
        assert_eq!(map.fault_free_words_in_frame(frame), 6);
        assert!(!map.frame_is_fault_free(frame));
    }

    #[test]
    fn sample_rate_is_statistically_plausible() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(42);
        let p = 0.25;
        let map = FaultMap::sample(&g, p, &mut rng);
        let frac = map.faulty_fraction();
        // 8192 Bernoulli trials at p=0.25: ±3σ ≈ ±0.0144.
        assert!((frac - p).abs() < 0.015, "fraction {frac} too far from {p}");
    }

    #[test]
    fn sample_zero_and_one_probability() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(FaultMap::sample(&g, 0.0, &mut rng).faulty_words(), 0);
        let all = FaultMap::sample(&g, 1.0, &mut rng);
        assert_eq!(all.faulty_words(), g.total_words() as usize);
        assert_eq!(all.faulty_frames(), g.total_lines());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = geom();
        let a = FaultMap::sample(&g, 0.1, &mut StdRng::seed_from_u64(7));
        let b = FaultMap::sample(&g, 0.1, &mut StdRng::seed_from_u64(7));
        let c = FaultMap::sample(&g, 0.1, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sample_recorded_matches_sample_and_counts_faults() {
        use dvs_obs::MetricsRegistry;
        let g = geom();
        let plain = FaultMap::sample(&g, 0.1, &mut StdRng::seed_from_u64(7));
        let reg = MetricsRegistry::new();
        let recorded = FaultMap::sample_recorded(&g, 0.1, &mut StdRng::seed_from_u64(7), &reg);
        assert_eq!(plain, recorded, "recorder must not perturb sampling");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sram.faultmap.samples"), 1);
        assert_eq!(
            snap.counter("sram.faultmap.faulty_words"),
            recorded.faulty_words() as u64
        );
        let hist = &snap.values["sram.faultmap.faulty_words"];
        assert_eq!(hist.count, 1);
        assert_eq!(hist.min, recorded.faulty_words() as u64);
        assert_eq!(snap.timers["sram.faultmap.sample_nanos"].count, 1);
        assert_eq!(snap.timers["sram.faultmap.skip_sample_nanos"].count, 1);
    }

    /// The skip sampler and the per-word reference sampler must be
    /// equivalent in distribution: over many seeds, per-word fault
    /// frequencies from the two samplers agree within Monte-Carlo noise.
    #[test]
    fn skip_sampler_matches_reference_in_distribution() {
        let g = CacheGeometry::new(2 * 1024, 2, 32).unwrap(); // 512 words
        let p = 0.2;
        let trials = 400u64;
        let words = g.total_words() as usize;
        let mut hits_skip = vec![0u32; words];
        let mut hits_ref = vec![0u32; words];
        for seed in 0..trials {
            for idx in
                FaultMap::sample(&g, p, &mut StdRng::seed_from_u64(seed)).iter_faulty_linear()
            {
                hits_skip[idx as usize] += 1;
            }
            for idx in FaultMap::sample_reference(&g, p, &mut StdRng::seed_from_u64(seed))
                .iter_faulty_linear()
            {
                hits_ref[idx as usize] += 1;
            }
        }
        // Aggregate rate: 512 * 400 Bernoulli draws each, ±4σ ≈ ±0.0035.
        let rate = |hits: &[u32]| {
            hits.iter().map(|&h| u64::from(h)).sum::<u64>() as f64 / (trials as f64 * words as f64)
        };
        assert!(
            (rate(&hits_skip) - p).abs() < 0.004,
            "skip {}",
            rate(&hits_skip)
        );
        assert!(
            (rate(&hits_ref) - p).abs() < 0.004,
            "ref {}",
            rate(&hits_ref)
        );
        // Positional uniformity: no word may be systematically starved or
        // favored by the skip construction (400 trials, ±5σ ≈ ±50).
        for (idx, &h) in hits_skip.iter().enumerate() {
            let expect = trials as f64 * p;
            assert!(
                (f64::from(h) - expect).abs() < 50.0,
                "word {idx}: {h} hits vs {expect}"
            );
        }
    }

    #[test]
    fn from_faulty_indices_roundtrip() {
        let g = geom();
        let map = FaultMap::from_faulty_indices(&g, [0, 100, 8191]);
        assert_eq!(map.faulty_words(), 3);
        assert!(map.linear_is_faulty(100));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn sample_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = FaultMap::sample(&geom(), 1.5, &mut rng);
    }

    #[test]
    fn frames_iterates_all_lines() {
        let map = FaultMap::fault_free(&geom());
        assert_eq!(map.frames().count(), 1024);
    }

    proptest! {
        #[test]
        fn set_then_query_roundtrip(set in 0u32..256, way in 0u32..4, word in 0u32..8) {
            let mut map = FaultMap::fault_free(&geom());
            let frame = FrameId::new(set, way);
            map.set_faulty(frame, word, true);
            prop_assert!(map.is_faulty(frame, word));
            prop_assert_eq!(map.faulty_words(), 1);
            prop_assert_eq!(map.frame_fault_pattern(frame), 1u32 << word);
        }

        #[test]
        fn pattern_popcount_matches_counts(seed in 0u64..500) {
            let g = geom();
            let map = FaultMap::sample(&g, 0.3, &mut StdRng::seed_from_u64(seed));
            let via_patterns: u32 = map
                .frames()
                .map(|f| map.frame_fault_pattern(f).count_ones())
                .sum();
            prop_assert_eq!(via_patterns as usize, map.faulty_words());
        }

        /// Packed mask queries vs the retained per-bit reference over the
        /// three supported block widths (8/16/32 words per block).
        #[test]
        fn packed_pattern_matches_reference_across_geometries(
            block_idx in 0usize..3,
            way_idx in 0usize..3,
            seed in 0u64..200,
        ) {
            let block_bytes = [32u32, 64, 128][block_idx]; // 8/16/32 words per block
            let ways = [1u32, 2, 4][way_idx];
            let g = CacheGeometry::new(8 * 1024, ways, block_bytes).unwrap();
            let map = FaultMap::sample(&g, 0.3, &mut StdRng::seed_from_u64(seed));
            for frame in map.frames() {
                prop_assert_eq!(
                    map.frame_fault_pattern(frame),
                    map.frame_fault_pattern_reference(frame)
                );
            }
            prop_assert_eq!(map.faulty_words(), {
                let grid_ref: usize = map.frames()
                    .map(|f| map.frame_fault_pattern_reference(f).count_ones() as usize)
                    .sum();
                grid_ref
            });
        }
    }
}
