//! Word-granularity defect maps over a cache data array.

use dvs_obs::{Recorder, Span};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{BitGrid, CacheGeometry};

/// Identifies one physical cache frame (line) by set and way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FrameId {
    /// Set index.
    pub set: u32,
    /// Way index within the set.
    pub way: u32,
}

impl FrameId {
    /// Creates a frame id.
    pub const fn new(set: u32, way: u32) -> Self {
        FrameId { set, way }
    }
}

/// A map of defective 32-bit words in a cache data array at one DVFS
/// operating point.
///
/// The paper assumes BIST identifies defective words at every supported
/// operating point and records them in fault maps kept in main memory
/// (Section IV); this type is that artifact. The same map is viewed two
/// ways:
///
/// * **frame view** (`set`, `way`, `word`) — used by the FFW data cache and
///   all set-associative schemes;
/// * **linear view** (word index `0 .. total_words`) — used by the BBR
///   linker, which sees the direct-mapped instruction cache as a flat array
///   of `csize` words (Algorithm 1).
///
/// The linear line index is `way * sets + set`, mirroring the paper's
/// Figure 7 where the low tag bits select the way above the set-index bits.
///
/// # Example
///
/// ```rust
/// use dvs_sram::{CacheGeometry, FaultMap, FrameId};
/// use rand::SeedableRng;
///
/// let geom = CacheGeometry::dsn_l1();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let map = FaultMap::sample(&geom, 0.05, &mut rng);
/// let frame = FrameId::new(0, 0);
/// let pattern = map.frame_fault_pattern(frame);
/// assert_eq!(pattern.count_ones() + map.fault_free_words_in_frame(frame), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMap {
    geometry: CacheGeometry,
    words: BitGrid,
}

impl FaultMap {
    /// Creates an all-fault-free map (high-voltage operation).
    ///
    /// # Panics
    ///
    /// Panics if the geometry has more than 32 words per block; fault
    /// patterns are exposed as `u32` masks.
    pub fn fault_free(geometry: &CacheGeometry) -> Self {
        assert!(
            geometry.words_per_block() <= 32,
            "fault patterns are u32 masks; {} words per block unsupported",
            geometry.words_per_block()
        );
        FaultMap {
            geometry: *geometry,
            words: BitGrid::new(geometry.total_words() as usize),
        }
    }

    /// Samples a map by flipping each word faulty independently with
    /// probability `p_word` (the Monte-Carlo protocol of Section V).
    ///
    /// # Panics
    ///
    /// Panics if `p_word` is not within `[0, 1]` or the geometry exceeds 32
    /// words per block.
    pub fn sample<R: Rng + ?Sized>(geometry: &CacheGeometry, p_word: f64, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_word),
            "word failure probability {p_word} outside [0, 1]"
        );
        let mut map = FaultMap::fault_free(geometry);
        for idx in 0..geometry.total_words() as usize {
            if rng.gen::<f64>() < p_word {
                map.words.set(idx, true);
            }
        }
        map
    }

    /// [`FaultMap::sample`] with observability: records the generation
    /// wall-clock time (`sram.faultmap.sample_nanos`) and the
    /// deterministic counters `sram.faultmap.samples` and
    /// `sram.faultmap.faulty_words` into `recorder`. The map produced is
    /// identical to [`FaultMap::sample`] with the same RNG state.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`FaultMap::sample`].
    pub fn sample_recorded<R: Rng + ?Sized>(
        geometry: &CacheGeometry,
        p_word: f64,
        rng: &mut R,
        recorder: &dyn Recorder,
    ) -> Self {
        let map = {
            let _span = Span::enter(recorder, "sram.faultmap.sample_nanos");
            FaultMap::sample(geometry, p_word, rng)
        };
        recorder.add("sram.faultmap.samples", 1);
        recorder.add("sram.faultmap.faulty_words", map.faulty_words() as u64);
        map
    }

    /// Builds a map with exactly the given linear word indices faulty.
    ///
    /// Useful for tests and for replaying BIST results.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_faulty_indices(
        geometry: &CacheGeometry,
        indices: impl IntoIterator<Item = u32>,
    ) -> Self {
        let mut map = FaultMap::fault_free(geometry);
        for idx in indices {
            map.words.set(idx as usize, true);
        }
        map
    }

    /// The geometry this map covers.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    fn index(&self, frame: FrameId, word: u32) -> usize {
        debug_assert!(frame.set < self.geometry.sets(), "set out of range");
        debug_assert!(frame.way < self.geometry.ways(), "way out of range");
        debug_assert!(word < self.geometry.words_per_block(), "word out of range");
        let line = frame.way * self.geometry.sets() + frame.set;
        (line * self.geometry.words_per_block() + word) as usize
    }

    /// Whether `word` of `frame` is defective.
    pub fn is_faulty(&self, frame: FrameId, word: u32) -> bool {
        self.words.get(self.index(frame, word))
    }

    /// Marks or clears a defect (used by BIST and tests).
    pub fn set_faulty(&mut self, frame: FrameId, word: u32, faulty: bool) {
        let idx = self.index(frame, word);
        self.words.set(idx, faulty);
    }

    /// The frame's fault pattern as a bitmask: bit `i` set means word `i`
    /// is defective. This is the `FMAP` entry of the paper's Figure 4.
    pub fn frame_fault_pattern(&self, frame: FrameId) -> u32 {
        let mut pattern = 0;
        for word in 0..self.geometry.words_per_block() {
            if self.is_faulty(frame, word) {
                pattern |= 1 << word;
            }
        }
        pattern
    }

    /// Number of fault-free words remaining in a frame.
    pub fn fault_free_words_in_frame(&self, frame: FrameId) -> u32 {
        self.geometry.words_per_block() - self.frame_fault_pattern(frame).count_ones()
    }

    /// Whether a frame has no defective word at all.
    pub fn frame_is_fault_free(&self, frame: FrameId) -> bool {
        self.frame_fault_pattern(frame) == 0
    }

    /// Whether linear word `index` (0 .. `total_words`) is defective — the
    /// BBR linker's view of a direct-mapped cache.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn linear_is_faulty(&self, index: u32) -> bool {
        self.words.get(index as usize)
    }

    /// Total number of defective words.
    pub fn faulty_words(&self) -> usize {
        self.words.count_ones()
    }

    /// Fraction of words that are defective.
    pub fn faulty_fraction(&self) -> f64 {
        self.faulty_words() as f64 / self.geometry.total_words() as f64
    }

    /// Number of frames that contain at least one defective word.
    pub fn faulty_frames(&self) -> u32 {
        self.frames()
            .filter(|&f| !self.frame_is_fault_free(f))
            .count() as u32
    }

    /// Iterates over every frame id in (way-major) storage order.
    pub fn frames(&self) -> impl Iterator<Item = FrameId> + '_ {
        let sets = self.geometry.sets();
        let ways = self.geometry.ways();
        (0..ways).flat_map(move |way| (0..sets).map(move |set| FrameId { set, way }))
    }

    /// Iterates over the linear indices of all defective words.
    pub fn iter_faulty_linear(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter_ones().map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom() -> CacheGeometry {
        CacheGeometry::dsn_l1()
    }

    #[test]
    fn fault_free_map_is_clean() {
        let map = FaultMap::fault_free(&geom());
        assert_eq!(map.faulty_words(), 0);
        assert_eq!(map.faulty_frames(), 0);
        assert!(map.frame_is_fault_free(FrameId::new(255, 3)));
    }

    #[test]
    fn frame_and_linear_views_agree() {
        let g = geom();
        let mut map = FaultMap::fault_free(&g);
        let frame = FrameId::new(5, 2);
        map.set_faulty(frame, 3, true);
        let line = 2 * g.sets() + 5;
        let linear = line * g.words_per_block() + 3;
        assert!(map.linear_is_faulty(linear));
        assert_eq!(map.iter_faulty_linear().collect::<Vec<_>>(), vec![linear]);
    }

    #[test]
    fn pattern_reflects_faults() {
        let mut map = FaultMap::fault_free(&geom());
        let frame = FrameId::new(0, 0);
        map.set_faulty(frame, 0, true);
        map.set_faulty(frame, 7, true);
        assert_eq!(map.frame_fault_pattern(frame), 0b1000_0001);
        assert_eq!(map.fault_free_words_in_frame(frame), 6);
        assert!(!map.frame_is_fault_free(frame));
    }

    #[test]
    fn sample_rate_is_statistically_plausible() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(42);
        let p = 0.25;
        let map = FaultMap::sample(&g, p, &mut rng);
        let frac = map.faulty_fraction();
        // 8192 Bernoulli trials at p=0.25: ±3σ ≈ ±0.0144.
        assert!((frac - p).abs() < 0.015, "fraction {frac} too far from {p}");
    }

    #[test]
    fn sample_zero_and_one_probability() {
        let g = geom();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(FaultMap::sample(&g, 0.0, &mut rng).faulty_words(), 0);
        let all = FaultMap::sample(&g, 1.0, &mut rng);
        assert_eq!(all.faulty_words(), g.total_words() as usize);
        assert_eq!(all.faulty_frames(), g.total_lines());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = geom();
        let a = FaultMap::sample(&g, 0.1, &mut StdRng::seed_from_u64(7));
        let b = FaultMap::sample(&g, 0.1, &mut StdRng::seed_from_u64(7));
        let c = FaultMap::sample(&g, 0.1, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sample_recorded_matches_sample_and_counts_faults() {
        use dvs_obs::MetricsRegistry;
        let g = geom();
        let plain = FaultMap::sample(&g, 0.1, &mut StdRng::seed_from_u64(7));
        let reg = MetricsRegistry::new();
        let recorded = FaultMap::sample_recorded(&g, 0.1, &mut StdRng::seed_from_u64(7), &reg);
        assert_eq!(plain, recorded, "recorder must not perturb sampling");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sram.faultmap.samples"), 1);
        assert_eq!(
            snap.counter("sram.faultmap.faulty_words"),
            recorded.faulty_words() as u64
        );
        assert_eq!(snap.timers["sram.faultmap.sample_nanos"].count, 1);
    }

    #[test]
    fn from_faulty_indices_roundtrip() {
        let g = geom();
        let map = FaultMap::from_faulty_indices(&g, [0, 100, 8191]);
        assert_eq!(map.faulty_words(), 3);
        assert!(map.linear_is_faulty(100));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn sample_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = FaultMap::sample(&geom(), 1.5, &mut rng);
    }

    #[test]
    fn frames_iterates_all_lines() {
        let map = FaultMap::fault_free(&geom());
        assert_eq!(map.frames().count(), 1024);
    }

    proptest! {
        #[test]
        fn set_then_query_roundtrip(set in 0u32..256, way in 0u32..4, word in 0u32..8) {
            let mut map = FaultMap::fault_free(&geom());
            let frame = FrameId::new(set, way);
            map.set_faulty(frame, word, true);
            prop_assert!(map.is_faulty(frame, word));
            prop_assert_eq!(map.faulty_words(), 1);
            prop_assert_eq!(map.frame_fault_pattern(frame), 1u32 << word);
        }

        #[test]
        fn pattern_popcount_matches_counts(seed in 0u64..500) {
            let g = geom();
            let map = FaultMap::sample(&g, 0.3, &mut StdRng::seed_from_u64(seed));
            let via_patterns: u32 = map
                .frames()
                .map(|f| map.frame_fault_pattern(f).count_ones())
                .sum();
            prop_assert_eq!(via_patterns as usize, map.faulty_words());
        }
    }
}
