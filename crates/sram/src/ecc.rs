//! SECDED ECC analysis — why coding alone cannot reach 400 mV.
//!
//! The paper's related work (§III-B) observes that error-correcting codes
//! are effective against infrequent faults but that "with aggressive
//! voltage scaling, multi-bit errors become increasingly likely and
//! quickly overwhelm the capability of ECC". This module quantifies that:
//! a SECDED-protected word survives only single-bit defects, so its
//! failure probability is `P(≥ 2 defective bits)`, which still explodes
//! at `P_fail(bit) ≥ 1e-2`.

use crate::{MilliVolts, PfailModel};

/// Check bits a Hamming SECDED code needs for `data_bits` of payload:
/// the smallest `r` with `2^r ≥ data_bits + r + 1`, plus the extra parity
/// bit for double-error detection.
///
/// # Panics
///
/// Panics if `data_bits` is zero.
pub fn secded_check_bits(data_bits: u32) -> u32 {
    assert!(data_bits > 0, "need at least one data bit");
    let mut r = 1u32;
    while (1u64 << r) < u64::from(data_bits) + u64::from(r) + 1 {
        r += 1;
    }
    r + 1
}

/// Probability that a SECDED-protected word of `data_bits` is
/// *uncorrectable*: two or more of its `data + check` cells defective.
pub fn pfail_word_secded(p_bit: f64, data_bits: u32) -> f64 {
    let n = f64::from(data_bits + secded_check_bits(data_bits));
    if p_bit <= 0.0 {
        return 0.0;
    }
    if p_bit >= 1.0 {
        return 1.0;
    }
    // 1 - P(0 errors) - P(1 error), computed stably in log space.
    let q = 1.0 - p_bit;
    let p0 = (n * q.ln()).exp();
    let p1 = n * p_bit * ((n - 1.0) * q.ln()).exp();
    (1.0 - p0 - p1).max(0.0)
}

/// Minimum voltage at which a 32 KB array of SECDED-protected words meets
/// `yield_target`, under `model`'s bit-failure curve.
///
/// Compare with [`PfailModel::vccmin`]: SECDED buys some headroom over
/// the raw array but stays far above the paper's 400 mV goal.
///
/// # Panics
///
/// Panics if `yield_target` is not in `(0, 1)`.
pub fn vccmin_with_secded(
    model: &PfailModel,
    data_bits_per_word: u32,
    words: u64,
    yield_target: f64,
) -> MilliVolts {
    assert!(
        yield_target > 0.0 && yield_target < 1.0,
        "yield target must be in (0, 1)"
    );
    let (mut lo, mut hi) = (100u32, 2000u32);
    let yield_at = |mv: u32| {
        let p_word = pfail_word_secded(model.pfail_bit(MilliVolts::new(mv)), data_bits_per_word);
        if p_word >= 1.0 {
            0.0
        } else {
            (words as f64 * (-p_word).ln_1p()).exp()
        }
    };
    while lo < hi {
        let mid = (lo + hi) / 2;
        if yield_at(mid) >= yield_target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    MilliVolts::new(lo)
}

/// Storage overhead of per-word SECDED: check bits / data bits.
pub fn secded_overhead(data_bits: u32) -> f64 {
    f64::from(secded_check_bits(data_bits)) / f64::from(data_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn check_bit_counts_match_hamming() {
        // Classic SECDED sizes: (8,5), (16,6), (32,7), (64,8).
        assert_eq!(secded_check_bits(8), 5);
        assert_eq!(secded_check_bits(16), 6);
        assert_eq!(secded_check_bits(32), 7);
        assert_eq!(secded_check_bits(64), 8);
    }

    #[test]
    fn secded_overhead_for_32bit_words() {
        // 7/32 ≈ 22 % — the "extra storage for check bits" of §III-B.
        assert!((secded_overhead(32) - 7.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn secded_helps_at_moderate_rates() {
        // At p=1e-4: raw 32-bit word fails at ~3.2e-3, SECDED at ~7.6e-6.
        let raw = 1.0 - (1.0f64 - 1e-4).powi(32);
        let coded = pfail_word_secded(1e-4, 32);
        assert!(coded < raw / 100.0, "coded {coded} vs raw {raw}");
    }

    #[test]
    fn secded_is_overwhelmed_at_1e2() {
        // At p=1e-2 (400 mV) a SECDED word still fails ~6 % of the time —
        // a 32 KB array is essentially never clean.
        let coded = pfail_word_secded(1e-2, 32);
        assert!(coded > 0.04, "coded {coded}");
        let array_clean = (1.0f64 - coded).powi(8192);
        assert!(array_clean < 1e-100);
    }

    #[test]
    fn secded_vccmin_sits_between_raw_and_the_papers_goal() {
        let model = PfailModel::dsn45();
        let raw = model.vccmin(32 * 1024 * 8, 0.999);
        let coded = vccmin_with_secded(&model, 32, 8192, 0.999);
        assert!(coded < raw, "SECDED must buy some headroom");
        assert!(
            coded.get() > 500,
            "SECDED cannot reach the paper's 400 mV: got {coded}"
        );
    }

    #[test]
    fn degenerate_probabilities() {
        assert_eq!(pfail_word_secded(0.0, 32), 0.0);
        assert_eq!(pfail_word_secded(1.0, 32), 1.0);
    }

    proptest! {
        #[test]
        fn secded_never_hurts_at_plausible_rates(p in 1e-9f64..0.25) {
            // (At absurd defect rates the 7 extra check cells make the
            // coded word marginally *worse* — correctly so; the property
            // holds over the whole physically meaningful range.)
            let raw = 1.0 - (1.0 - p).powi(32);
            let coded = pfail_word_secded(p, 32);
            prop_assert!(coded <= raw + 1e-12);
            prop_assert!((0.0..=1.0).contains(&coded));
        }

        #[test]
        fn pfail_monotone_in_p(p in 1e-6f64..0.4) {
            prop_assert!(pfail_word_secded(p, 32) <= pfail_word_secded(p * 1.5, 32) + 1e-15);
        }
    }
}
