//! Summary statistics for Monte-Carlo experiments.
//!
//! The paper reports results at 95 % confidence with a 5 % margin of error
//! (Section V). This module provides the mean / standard deviation /
//! confidence-interval machinery every experiment uses, plus the geometric
//! mean used for the EPI results (Section VI-C).

use serde::{Deserialize, Serialize};

/// Two-sided 97.5 % quantiles of Student's t distribution for small degrees
/// of freedom (df = 1..=30); beyond 30 the normal 1.96 is used.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

fn t_quantile_975(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        T_975[df - 1]
    } else {
        1.96
    }
}

/// Summary of a sample: count, mean, standard deviation and the 95 %
/// confidence half-interval of the mean.
///
/// # Example
///
/// ```rust
/// use dvs_sram::stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.n, 4);
/// assert!((s.mean - 2.5).abs() < 1e-12);
/// assert!(s.ci95_half > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator); 0 for n < 2.
    pub stddev: f64,
    /// Half-width of the 95 % confidence interval of the mean (Student t).
    pub ci95_half: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let ss: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum();
            (ss / (n - 1) as f64).sqrt()
        };
        let ci95_half = if n < 2 {
            0.0
        } else {
            t_quantile_975(n - 1) * stddev / (n as f64).sqrt()
        };
        Summary {
            n,
            mean,
            stddev,
            ci95_half,
        }
    }

    /// The confidence half-interval relative to the mean — the paper's
    /// "margin of error" (they target ≤ 5 %). Returns infinity for a zero
    /// mean with nonzero spread.
    pub fn relative_margin(&self) -> f64 {
        if self.ci95_half == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            (self.ci95_half / self.mean).abs()
        }
    }

    /// Whether the sample meets the paper's 95 % confidence / 5 % margin
    /// criterion.
    pub fn meets_paper_margin(&self) -> bool {
        self.relative_margin() <= 0.05
    }

    /// Bit-exact equality of every field, including float payloads.
    ///
    /// `==` on floats treats `-0.0 == 0.0` and `NaN != NaN`; replay tests
    /// instead need to prove two summaries came from the *identical*
    /// computation, which only bit-pattern comparison can.
    pub fn bitwise_eq(&self, other: &Summary) -> bool {
        self.n == other.n
            && self.mean.to_bits() == other.mean.to_bits()
            && self.stddev.to_bits() == other.stddev.to_bits()
            && self.ci95_half.to_bits() == other.ci95_half.to_bits()
    }
}

/// Geometric mean of strictly positive samples.
///
/// Used for the EPI aggregation (Section VI-C: "The EPI results are the
/// geometric mean of EPI for all simulations").
///
/// # Panics
///
/// Panics if `samples` is empty or contains a non-positive value.
pub fn geomean(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "cannot take geomean of empty sample");
    let log_sum: f64 = samples
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive samples, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / samples.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_sample_has_zero_spread() {
        let s = Summary::of(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95_half, 0.0);
        assert!(s.meets_paper_margin());
    }

    #[test]
    fn single_sample_has_no_interval() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.ci95_half, 0.0);
    }

    #[test]
    fn known_small_sample() {
        // n=4, mean 2.5, sd = sqrt(5/3) ≈ 1.29099, t(3) = 3.182.
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-9);
        let expected_ci = 3.182 * s.stddev / 2.0;
        assert!((s.ci95_half - expected_ci).abs() < 1e-9);
    }

    #[test]
    fn large_sample_uses_normal_quantile() {
        let samples: Vec<f64> = (0..100).map(|i| f64::from(i % 10)).collect();
        let s = Summary::of(&samples);
        let expected = 1.96 * s.stddev / 10.0;
        assert!((s.ci95_half - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive samples")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn relative_margin_reflects_spread() {
        let tight = Summary::of(&[100.0, 100.1, 99.9, 100.0, 100.05, 99.95]);
        assert!(tight.meets_paper_margin());
        let loose = Summary::of(&[1.0, 100.0]);
        assert!(!loose.meets_paper_margin());
    }

    #[test]
    fn bitwise_eq_is_stricter_than_partial_eq() {
        let a = Summary::of(&[1.0, 2.0, 3.0]);
        assert!(a.bitwise_eq(&a));
        let zero_pos = Summary {
            n: 1,
            mean: 0.0,
            stddev: 0.0,
            ci95_half: 0.0,
        };
        let zero_neg = Summary {
            mean: -0.0,
            ..zero_pos
        };
        assert_eq!(zero_pos, zero_neg); // PartialEq cannot tell them apart
        assert!(!zero_pos.bitwise_eq(&zero_neg));
        let nan = Summary {
            mean: f64::NAN,
            ..zero_pos
        };
        assert!(nan.bitwise_eq(&nan)); // identical computations match
    }

    proptest! {
        #[test]
        fn mean_within_sample_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
            let s = Summary::of(&xs);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(s.mean >= lo - 1e-6 && s.mean <= hi + 1e-6);
            prop_assert!(s.stddev >= 0.0);
        }

        #[test]
        fn geomean_between_min_and_max(xs in proptest::collection::vec(1e-3f64..1e3, 1..50)) {
            let g = geomean(&xs);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(g >= lo - 1e-9 && g <= hi + 1e-9);
        }
    }
}
