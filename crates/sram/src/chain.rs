//! Incremental fault-map construction down a voltage ladder.
//!
//! The paper's Monte-Carlo protocol evaluates every scheme at every
//! voltage step for the *same* simulated die, and physically a die's
//! defect set only grows as supply voltage drops: a word that fails at
//! 760 mV still fails at 740 mV. [`FaultChain`] realizes that nesting by
//! construction — a map at probability `p2 > p1` is the `p1` map plus a
//! thinning pass that upgrades each still-clean word with conditional
//! probability `(p2 - p1) / (1 - p1)`. Marginally every word is faulty
//! with probability exactly `p2`, while the fault set at each rung is a
//! superset of every higher rung's.
//!
//! The engine anchors chains at the canonical ladder top
//! ([`LADDER_TOP_MV`]) and walks down in [`LADDER_STEP_MV`] steps to the
//! cell's operating point, so a sweep over voltages re-samples only the
//! per-step delta instead of the whole array.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::faultmap::skip_sample;
use crate::model::{multiplier_classes, threshold_for};
use crate::{CacheGeometry, FaultMap, FaultModel};

/// Highest rung of the canonical voltage ladder, in millivolts. This is
/// the paper's ~760 mV `Vccmin` anchor; maps requested at or above it
/// are sampled in one step.
pub const LADDER_TOP_MV: u32 = 760;

/// Rung spacing of the canonical voltage ladder, in millivolts (the
/// paper's Table II operating points step by 20 mV).
pub const LADDER_STEP_MV: u32 = 20;

/// The canonical ladder for an operating point: grid rungs descending
/// from [`LADDER_TOP_MV`] while strictly above `vcc_mv`, then `vcc_mv`
/// itself. A point at or above the top gets the single rung `[vcc_mv]`.
pub fn ladder_mv(vcc_mv: u32) -> Vec<u32> {
    let mut rungs = Vec::new();
    let mut v = LADDER_TOP_MV;
    while v > vcc_mv {
        rungs.push(v);
        v = v.saturating_sub(LADDER_STEP_MV);
    }
    rungs.push(vcc_mv);
    rungs
}

/// A fault map being grown monotonically toward higher failure
/// probabilities (lower voltages), with the delta of each step reported.
///
/// The chain owns its RNG; one chain consumes one continuous stream, so
/// reaching probability `p` via intermediate rungs or replaying the same
/// rungs from a fresh chain with the same seed produces bit-identical
/// maps. Advancing is only valid toward equal-or-higher probabilities.
///
/// # Example
///
/// ```rust
/// use dvs_sram::{CacheGeometry, FaultChain};
///
/// let geom = CacheGeometry::dsn_l1();
/// let mut chain = FaultChain::new(&geom, 7);
/// let coarse = chain.advance_to(0.01).len();
/// let finer = chain.advance_to(0.05).len();
/// assert_eq!(chain.map().faulty_words(), coarse + finer);
/// ```
#[derive(Debug, Clone)]
pub struct FaultChain {
    map: FaultMap,
    rng: StdRng,
    p_current: f64,
    model: FaultModel,
    correlated: Option<Correlated>,
}

/// Sampler state of a correlated backend: the die's fixed weak
/// structure (multipliers), fixed per-word uniforms, the multiplier
/// classes the threshold solver walks, and the threshold already
/// applied. All derived purely from `(model, geometry, seed)` — no
/// per-rung re-seeding, so nesting cannot regress (see
/// [`crate::FaultModel`]).
#[derive(Debug, Clone)]
struct Correlated {
    multipliers: Vec<f64>,
    uniforms: Vec<f64>,
    classes: Vec<(f64, f64)>,
    t_current: f64,
}

impl FaultChain {
    /// Starts an i.i.d. chain at probability zero (an all-clean map).
    ///
    /// Equivalent to [`FaultChain::with_model`] under
    /// [`FaultModel::Iid`]; the sampled maps are bit-identical to every
    /// pre-model release for the same seed.
    ///
    /// # Panics
    ///
    /// Panics if the geometry exceeds 32 words per block.
    pub fn new(geometry: &CacheGeometry, seed: u64) -> Self {
        FaultChain::with_model(geometry, seed, FaultModel::Iid)
    }

    /// Starts a chain at probability zero under a spatial fault model.
    ///
    /// # Panics
    ///
    /// Panics if the geometry exceeds 32 words per block.
    pub fn with_model(geometry: &CacheGeometry, seed: u64, model: FaultModel) -> Self {
        let correlated = if model.is_iid() {
            None
        } else {
            let multipliers = model.multipliers(geometry, seed);
            let classes = multiplier_classes(&multipliers);
            Some(Correlated {
                multipliers,
                uniforms: FaultModel::uniforms(geometry, seed),
                classes,
                t_current: 0.0,
            })
        };
        FaultChain {
            map: FaultMap::fault_free(geometry),
            rng: StdRng::seed_from_u64(seed),
            p_current: 0.0,
            model,
            correlated,
        }
    }

    /// The spatial fault model this chain samples under.
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// The probability the chain currently sits at.
    pub fn p_current(&self) -> f64 {
        self.p_current
    }

    /// The map at the current rung.
    pub fn map(&self) -> &FaultMap {
        &self.map
    }

    /// Consumes the chain, yielding the current map.
    pub fn into_map(self) -> FaultMap {
        self.map
    }

    /// Advances the chain to word-failure probability `p`. The i.i.d.
    /// backend upgrades each still-clean word with conditional
    /// probability `(p - p_current) / (1 - p_current)`; correlated
    /// backends raise the fixed-uniform threshold to `t(p)` (see
    /// [`crate::FaultModel`]). Either way the new fault set is a strict
    /// superset of the old one and the marginal rate is exactly `p`.
    /// Returns the newly faulty linear word indices in ascending order
    /// (empty when `p` equals the current rung).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or below the current rung.
    pub fn advance_to(&mut self, p: f64) -> Vec<u32> {
        assert!(
            (0.0..=1.0).contains(&p),
            "word failure probability {p} outside [0, 1]"
        );
        assert!(
            p >= self.p_current,
            "chain may only advance toward higher probabilities: {p} < {}",
            self.p_current
        );
        let mut delta = Vec::new();
        if self.p_current >= 1.0 {
            return delta;
        }
        match &mut self.correlated {
            None => {
                let q = ((p - self.p_current) / (1.0 - self.p_current)).clamp(0.0, 1.0);
                skip_sample(self.map.words_mut(), q, &mut self.rng, |idx| {
                    delta.push(idx as u32);
                });
            }
            Some(state) => {
                // Threshold construction: word i is faulty iff
                // u_i < min(1, m_i · t(p)). t is clamped monotone against
                // the rung already applied so float noise in the solver
                // can never un-fault a word.
                let t = threshold_for(&state.classes, p).max(state.t_current);
                let grid = self.map.words_mut();
                for i in 0..grid.len() {
                    if !grid.get(i) && state.uniforms[i] < (state.multipliers[i] * t).min(1.0) {
                        grid.set(i, true);
                        delta.push(i as u32);
                    }
                }
                state.t_current = t;
            }
        }
        self.p_current = p;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MilliVolts, PfailModel};
    use proptest::prelude::*;
    use rand::Rng;

    fn geom() -> CacheGeometry {
        CacheGeometry::dsn_l1()
    }

    #[test]
    fn ladder_descends_to_the_operating_point() {
        assert_eq!(ladder_mv(760), vec![760]);
        assert_eq!(ladder_mv(800), vec![800]);
        assert_eq!(ladder_mv(720), vec![760, 740, 720]);
        assert_eq!(ladder_mv(730), vec![760, 740, 730]);
        let low = ladder_mv(400);
        assert_eq!(low.first(), Some(&760));
        assert_eq!(low.last(), Some(&400));
        assert_eq!(low.len(), 19);
    }

    #[test]
    fn maps_nest_down_the_chain() {
        let mut chain = FaultChain::new(&geom(), 42);
        let mut prev = chain.map().clone();
        for p in [0.001, 0.01, 0.05, 0.2] {
            chain.advance_to(p);
            let cur = chain.map().clone();
            for idx in prev.iter_faulty_linear() {
                assert!(cur.linear_is_faulty(idx), "fault at {idx} vanished");
            }
            assert!(cur.faulty_words() >= prev.faulty_words());
            prev = cur;
        }
    }

    #[test]
    fn delta_is_exactly_the_new_faults() {
        let mut chain = FaultChain::new(&geom(), 7);
        let first = chain.advance_to(0.05);
        assert_eq!(first.len(), chain.map().faulty_words());
        let before = chain.map().clone();
        let second = chain.advance_to(0.15);
        assert_eq!(
            before.faulty_words() + second.len(),
            chain.map().faulty_words()
        );
        for &idx in &second {
            assert!(!before.linear_is_faulty(idx));
            assert!(chain.map().linear_is_faulty(idx));
        }
        let mut sorted = second.clone();
        sorted.sort_unstable();
        assert_eq!(second, sorted, "delta must be ascending");
    }

    #[test]
    fn replay_from_scratch_is_bit_identical() {
        let mut a = FaultChain::new(&geom(), 9);
        a.advance_to(0.02);
        a.advance_to(0.08);
        a.advance_to(0.3);
        let mut b = FaultChain::new(&geom(), 9);
        b.advance_to(0.02);
        b.advance_to(0.08);
        b.advance_to(0.3);
        assert_eq!(a.map(), b.map());
    }

    #[test]
    fn zero_step_advances_are_free() {
        let mut chain = FaultChain::new(&geom(), 3);
        chain.advance_to(0.1);
        let before = chain.map().clone();
        assert!(chain.advance_to(0.1).is_empty());
        assert_eq!(chain.map(), &before);
    }

    #[test]
    fn chain_reaches_certainty() {
        let mut chain = FaultChain::new(&geom(), 5);
        chain.advance_to(0.5);
        let delta = chain.advance_to(1.0);
        assert_eq!(chain.map().faulty_words(), geom().total_words() as usize);
        assert!(!delta.is_empty());
        assert!(chain.advance_to(1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "advance toward higher")]
    fn chain_rejects_backward_steps() {
        let mut chain = FaultChain::new(&geom(), 1);
        chain.advance_to(0.2);
        chain.advance_to(0.1);
    }

    /// The thinned marginal at the bottom of a ladder must match a direct
    /// single-step sample in distribution.
    #[test]
    fn chained_marginal_matches_direct_sample() {
        let g = CacheGeometry::new(2 * 1024, 2, 32).unwrap();
        let trials = 600u64;
        let target = 0.25;
        let mut chained = 0usize;
        let mut direct = 0usize;
        for seed in 0..trials {
            let mut chain = FaultChain::new(&g, seed);
            for p in [0.01, 0.05, 0.12, target] {
                chain.advance_to(p);
            }
            chained += chain.map().faulty_words();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            let _ = rng.gen::<u64>();
            direct += FaultMap::sample(&g, target, &mut rng).faulty_words();
        }
        let n = (trials * u64::from(g.total_words())) as f64;
        let chained_rate = chained as f64 / n;
        let direct_rate = direct as f64 / n;
        // 512 * 600 draws at p = 0.25: ±4σ ≈ ±0.0031 per estimate.
        assert!(
            (chained_rate - target).abs() < 0.004,
            "chained {chained_rate}"
        );
        assert!((direct_rate - target).abs() < 0.004, "direct {direct_rate}");
    }

    /// `FaultChain::new` is the i.i.d. model: same seed, same rungs,
    /// bit-identical maps (the pre-model regression guarantee).
    #[test]
    fn with_model_iid_is_bit_identical_to_new() {
        for seed in [0u64, 7, 42, 0xDEAD_BEEF] {
            let mut a = FaultChain::new(&geom(), seed);
            let mut b = FaultChain::with_model(&geom(), seed, FaultModel::Iid);
            assert!(b.model().is_iid());
            for p in [0.001, 0.02, 0.1, 0.4] {
                assert_eq!(a.advance_to(p), b.advance_to(p));
            }
            assert_eq!(a.map(), b.map());
        }
    }

    /// Golden pin of the i.i.d. stream: the exact map for seed 42 at
    /// p = 0.1 must never drift, or every stored cell silently changes
    /// meaning. Regenerate only together with a store KEY_VERSION bump.
    #[test]
    fn iid_stream_is_pinned() {
        let mut chain = FaultChain::new(&geom(), 42);
        let delta = chain.advance_to(0.1);
        assert_eq!(delta.len(), chain.map().faulty_words());
        assert_eq!(chain.map().faulty_words(), IID_GOLDEN_COUNT);
        assert_eq!(&delta[..8], IID_GOLDEN_FIRST8);
    }

    const IID_GOLDEN_COUNT: usize = 763;
    const IID_GOLDEN_FIRST8: &[u32] = &[1, 5, 19, 26, 74, 77, 85, 101];

    /// Correlated chains are path-independent: stepping through
    /// intermediate rungs or jumping straight to the bottom yields the
    /// same map (the uniforms and threshold depend only on the seed and
    /// the final probability, not the route).
    #[test]
    fn correlated_chains_are_path_independent() {
        for model in [FaultModel::row_column(), FaultModel::clustered()] {
            let mut stepped = FaultChain::with_model(&geom(), 5, model);
            for p in [0.001, 0.01, 0.05, 0.2, 0.35] {
                stepped.advance_to(p);
            }
            let mut direct = FaultChain::with_model(&geom(), 5, model);
            direct.advance_to(0.35);
            assert_eq!(stepped.map(), direct.map(), "{}", model.name());
        }
    }

    /// Satellite: marginal-distribution equivalence — correlation
    /// changes *structure*, not *rate*. For every backend the faulty
    /// fraction aggregated over many seeds matches the pfail table, and
    /// each individual bit's across-seed rate is consistent with `p`
    /// (MoRS's key invariant).
    #[test]
    fn correlated_marginals_match_pfail_table() {
        let g = CacheGeometry::new(2 * 1024, 2, 32).unwrap();
        let n = g.total_words() as usize;
        let pfail = PfailModel::dsn45();
        let p_mid = pfail.pfail_word(MilliVolts::new(480));
        let p_low = pfail.pfail_word(MilliVolts::new(400));
        let trials = 400u64;
        for model in FaultModel::ALL {
            let mut mid_total = 0usize;
            let mut per_bit = vec![0u32; n];
            for seed in 0..trials {
                let mut chain = FaultChain::with_model(&g, seed, model);
                chain.advance_to(p_mid);
                mid_total += chain.map().faulty_words();
                chain.advance_to(p_low);
                for idx in chain.map().iter_faulty_linear() {
                    per_bit[idx as usize] += 1;
                }
            }
            let mid_rate = mid_total as f64 / (trials as f64 * n as f64);
            assert!(
                (mid_rate - p_mid).abs() < 0.01,
                "{}: aggregate rate {mid_rate} vs pfail {p_mid} at 480 mV",
                model.name()
            );
            let bit_rates: Vec<f64> = per_bit
                .iter()
                .map(|&c| f64::from(c) / trials as f64)
                .collect();
            let mean = bit_rates.iter().sum::<f64>() / n as f64;
            assert!(
                (mean - p_low).abs() < 0.01,
                "{}: mean per-bit rate {mean} vs pfail {p_low} at 400 mV",
                model.name()
            );
            // Each bit individually: Bernoulli(p) across seeds, so the
            // across-seed rate sits within ~5σ of p for every bit.
            let sigma = (p_low * (1.0 - p_low) / trials as f64).sqrt();
            let worst = bit_rates
                .iter()
                .map(|r| (r - p_low).abs())
                .fold(0.0f64, f64::max);
            assert!(
                worst < 5.5 * sigma,
                "{}: worst per-bit deviation {worst} (σ = {sigma})",
                model.name()
            );
        }
    }

    proptest! {
        /// Satellite: ladder nesting is a per-model property. Stepping
        /// 20 mV down never removes a fault and — whenever the pfail
        /// table says the rung adds non-negligible mass — strictly adds
        /// new ones, for every backend.
        #[test]
        fn ladder_nesting_holds_for_every_model(model_idx in 0usize..3, seed in 0u64..16) {
            let model = FaultModel::ALL[model_idx];
            let g = geom();
            let pfail = PfailModel::dsn45();
            let mut chain = FaultChain::with_model(&g, seed, model);
            let mut prev = chain.map().clone();
            let mut p_prev = 0.0f64;
            for mv in ladder_mv(400) {
                let p = pfail.pfail_word(MilliVolts::new(mv)).max(chain.p_current());
                let delta = chain.advance_to(p);
                let cur = chain.map();
                for idx in prev.iter_faulty_linear() {
                    prop_assert!(
                        cur.linear_is_faulty(idx),
                        "{}: fault at {} vanished stepping to {} mV",
                        model.name(), idx, mv
                    );
                }
                prop_assert_eq!(cur.faulty_words(), prev.faulty_words() + delta.len());
                // "Strictly adds": with ≥ 16 expected new faults the
                // rung is empty with probability ≤ e⁻¹⁶ per backend.
                if (p - p_prev) * f64::from(g.total_words()) >= 16.0 {
                    prop_assert!(
                        !delta.is_empty(),
                        "{}: no new faults stepping to {} mV",
                        model.name(), mv
                    );
                }
                prev = cur.clone();
                p_prev = p;
            }
            prop_assert!(chain.map().faulty_words() > 0);
        }
    }
}
