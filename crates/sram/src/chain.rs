//! Incremental fault-map construction down a voltage ladder.
//!
//! The paper's Monte-Carlo protocol evaluates every scheme at every
//! voltage step for the *same* simulated die, and physically a die's
//! defect set only grows as supply voltage drops: a word that fails at
//! 760 mV still fails at 740 mV. [`FaultChain`] realizes that nesting by
//! construction — a map at probability `p2 > p1` is the `p1` map plus a
//! thinning pass that upgrades each still-clean word with conditional
//! probability `(p2 - p1) / (1 - p1)`. Marginally every word is faulty
//! with probability exactly `p2`, while the fault set at each rung is a
//! superset of every higher rung's.
//!
//! The engine anchors chains at the canonical ladder top
//! ([`LADDER_TOP_MV`]) and walks down in [`LADDER_STEP_MV`] steps to the
//! cell's operating point, so a sweep over voltages re-samples only the
//! per-step delta instead of the whole array.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::faultmap::skip_sample;
use crate::{CacheGeometry, FaultMap};

/// Highest rung of the canonical voltage ladder, in millivolts. This is
/// the paper's ~760 mV `Vccmin` anchor; maps requested at or above it
/// are sampled in one step.
pub const LADDER_TOP_MV: u32 = 760;

/// Rung spacing of the canonical voltage ladder, in millivolts (the
/// paper's Table II operating points step by 20 mV).
pub const LADDER_STEP_MV: u32 = 20;

/// The canonical ladder for an operating point: grid rungs descending
/// from [`LADDER_TOP_MV`] while strictly above `vcc_mv`, then `vcc_mv`
/// itself. A point at or above the top gets the single rung `[vcc_mv]`.
pub fn ladder_mv(vcc_mv: u32) -> Vec<u32> {
    let mut rungs = Vec::new();
    let mut v = LADDER_TOP_MV;
    while v > vcc_mv {
        rungs.push(v);
        v = v.saturating_sub(LADDER_STEP_MV);
    }
    rungs.push(vcc_mv);
    rungs
}

/// A fault map being grown monotonically toward higher failure
/// probabilities (lower voltages), with the delta of each step reported.
///
/// The chain owns its RNG; one chain consumes one continuous stream, so
/// reaching probability `p` via intermediate rungs or replaying the same
/// rungs from a fresh chain with the same seed produces bit-identical
/// maps. Advancing is only valid toward equal-or-higher probabilities.
///
/// # Example
///
/// ```rust
/// use dvs_sram::{CacheGeometry, FaultChain};
///
/// let geom = CacheGeometry::dsn_l1();
/// let mut chain = FaultChain::new(&geom, 7);
/// let coarse = chain.advance_to(0.01).len();
/// let finer = chain.advance_to(0.05).len();
/// assert_eq!(chain.map().faulty_words(), coarse + finer);
/// ```
#[derive(Debug, Clone)]
pub struct FaultChain {
    map: FaultMap,
    rng: StdRng,
    p_current: f64,
}

impl FaultChain {
    /// Starts a chain at probability zero (an all-clean map).
    ///
    /// # Panics
    ///
    /// Panics if the geometry exceeds 32 words per block.
    pub fn new(geometry: &CacheGeometry, seed: u64) -> Self {
        FaultChain {
            map: FaultMap::fault_free(geometry),
            rng: StdRng::seed_from_u64(seed),
            p_current: 0.0,
        }
    }

    /// The probability the chain currently sits at.
    pub fn p_current(&self) -> f64 {
        self.p_current
    }

    /// The map at the current rung.
    pub fn map(&self) -> &FaultMap {
        &self.map
    }

    /// Consumes the chain, yielding the current map.
    pub fn into_map(self) -> FaultMap {
        self.map
    }

    /// Advances the chain to word-failure probability `p`, upgrading each
    /// still-clean word with conditional probability
    /// `(p - p_current) / (1 - p_current)`. Returns the newly faulty
    /// linear word indices in ascending order (empty when `p` equals the
    /// current rung).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or below the current rung.
    pub fn advance_to(&mut self, p: f64) -> Vec<u32> {
        assert!(
            (0.0..=1.0).contains(&p),
            "word failure probability {p} outside [0, 1]"
        );
        assert!(
            p >= self.p_current,
            "chain may only advance toward higher probabilities: {p} < {}",
            self.p_current
        );
        let mut delta = Vec::new();
        if self.p_current >= 1.0 {
            return delta;
        }
        let q = ((p - self.p_current) / (1.0 - self.p_current)).clamp(0.0, 1.0);
        skip_sample(self.map.words_mut(), q, &mut self.rng, |idx| {
            delta.push(idx as u32);
        });
        self.p_current = p;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn geom() -> CacheGeometry {
        CacheGeometry::dsn_l1()
    }

    #[test]
    fn ladder_descends_to_the_operating_point() {
        assert_eq!(ladder_mv(760), vec![760]);
        assert_eq!(ladder_mv(800), vec![800]);
        assert_eq!(ladder_mv(720), vec![760, 740, 720]);
        assert_eq!(ladder_mv(730), vec![760, 740, 730]);
        let low = ladder_mv(400);
        assert_eq!(low.first(), Some(&760));
        assert_eq!(low.last(), Some(&400));
        assert_eq!(low.len(), 19);
    }

    #[test]
    fn maps_nest_down_the_chain() {
        let mut chain = FaultChain::new(&geom(), 42);
        let mut prev = chain.map().clone();
        for p in [0.001, 0.01, 0.05, 0.2] {
            chain.advance_to(p);
            let cur = chain.map().clone();
            for idx in prev.iter_faulty_linear() {
                assert!(cur.linear_is_faulty(idx), "fault at {idx} vanished");
            }
            assert!(cur.faulty_words() >= prev.faulty_words());
            prev = cur;
        }
    }

    #[test]
    fn delta_is_exactly_the_new_faults() {
        let mut chain = FaultChain::new(&geom(), 7);
        let first = chain.advance_to(0.05);
        assert_eq!(first.len(), chain.map().faulty_words());
        let before = chain.map().clone();
        let second = chain.advance_to(0.15);
        assert_eq!(
            before.faulty_words() + second.len(),
            chain.map().faulty_words()
        );
        for &idx in &second {
            assert!(!before.linear_is_faulty(idx));
            assert!(chain.map().linear_is_faulty(idx));
        }
        let mut sorted = second.clone();
        sorted.sort_unstable();
        assert_eq!(second, sorted, "delta must be ascending");
    }

    #[test]
    fn replay_from_scratch_is_bit_identical() {
        let mut a = FaultChain::new(&geom(), 9);
        a.advance_to(0.02);
        a.advance_to(0.08);
        a.advance_to(0.3);
        let mut b = FaultChain::new(&geom(), 9);
        b.advance_to(0.02);
        b.advance_to(0.08);
        b.advance_to(0.3);
        assert_eq!(a.map(), b.map());
    }

    #[test]
    fn zero_step_advances_are_free() {
        let mut chain = FaultChain::new(&geom(), 3);
        chain.advance_to(0.1);
        let before = chain.map().clone();
        assert!(chain.advance_to(0.1).is_empty());
        assert_eq!(chain.map(), &before);
    }

    #[test]
    fn chain_reaches_certainty() {
        let mut chain = FaultChain::new(&geom(), 5);
        chain.advance_to(0.5);
        let delta = chain.advance_to(1.0);
        assert_eq!(chain.map().faulty_words(), geom().total_words() as usize);
        assert!(!delta.is_empty());
        assert!(chain.advance_to(1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "advance toward higher")]
    fn chain_rejects_backward_steps() {
        let mut chain = FaultChain::new(&geom(), 1);
        chain.advance_to(0.2);
        chain.advance_to(0.1);
    }

    /// The thinned marginal at the bottom of a ladder must match a direct
    /// single-step sample in distribution.
    #[test]
    fn chained_marginal_matches_direct_sample() {
        let g = CacheGeometry::new(2 * 1024, 2, 32).unwrap();
        let trials = 600u64;
        let target = 0.25;
        let mut chained = 0usize;
        let mut direct = 0usize;
        for seed in 0..trials {
            let mut chain = FaultChain::new(&g, seed);
            for p in [0.01, 0.05, 0.12, target] {
                chain.advance_to(p);
            }
            chained += chain.map().faulty_words();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            let _ = rng.gen::<u64>();
            direct += FaultMap::sample(&g, target, &mut rng).faulty_words();
        }
        let n = (trials * u64::from(g.total_words())) as f64;
        let chained_rate = chained as f64 / n;
        let direct_rate = direct as f64 / n;
        // 512 * 600 draws at p = 0.25: ±4σ ≈ ±0.0031 per estimate.
        assert!(
            (chained_rate - target).abs() < 0.004,
            "chained {chained_rate}"
        );
        assert!((direct_rate - target).abs() < 0.004, "direct {direct_rate}");
    }
}
