//! Supply-voltage newtype.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A supply voltage expressed in millivolts.
///
/// All public interfaces in this workspace exchange voltages through this
/// newtype so that a raw `u32` frequency (MHz) can never be confused with a
/// voltage (C-NEWTYPE).
///
/// # Example
///
/// ```rust
/// use dvs_sram::MilliVolts;
///
/// let v = MilliVolts::new(760);
/// assert_eq!(v.get(), 760);
/// assert_eq!(v.volts(), 0.76);
/// assert_eq!(v.to_string(), "760mV");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MilliVolts(u32);

impl MilliVolts {
    /// Creates a voltage from a millivolt count.
    pub const fn new(mv: u32) -> Self {
        MilliVolts(mv)
    }

    /// Returns the raw millivolt count.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the voltage in volts.
    pub fn volts(self) -> f64 {
        f64::from(self.0) / 1000.0
    }

    /// Returns the ratio of `self` to `other` (e.g. for scaling laws where
    /// power scales with `V / V_ref`).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero millivolts.
    pub fn ratio_to(self, other: MilliVolts) -> f64 {
        assert!(other.0 != 0, "cannot take a ratio to 0 mV");
        f64::from(self.0) / f64::from(other.0)
    }
}

impl fmt::Display for MilliVolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}mV", self.0)
    }
}

impl From<u32> for MilliVolts {
    fn from(mv: u32) -> Self {
        MilliVolts(mv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let v = MilliVolts::new(400);
        assert_eq!(v.get(), 400);
        assert!((v.volts() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        assert_eq!(MilliVolts::new(760).to_string(), "760mV");
    }

    #[test]
    fn ordering_follows_magnitude() {
        assert!(MilliVolts::new(400) < MilliVolts::new(760));
    }

    #[test]
    fn ratio() {
        let r = MilliVolts::new(400).ratio_to(MilliVolts::new(760));
        assert!((r - 400.0 / 760.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ratio to 0")]
    fn ratio_to_zero_panics() {
        let _ = MilliVolts::new(400).ratio_to(MilliVolts::new(0));
    }

    #[test]
    fn from_u32() {
        assert_eq!(MilliVolts::from(520).get(), 520);
    }
}
