//! Seeded Monte-Carlo trial streams.
//!
//! The paper repeats every simulation over up to 1000 randomly drawn fault
//! maps per DVFS operating point (Section V). This module derives
//! statistically independent, reproducible per-trial seeds from a single
//! base seed so that the whole experiment is replayable.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats::Summary;

/// Derives the seed for trial `trial` of an experiment with `base` seed.
///
/// Uses the SplitMix64 finalizer, whose output is equidistributed and
/// avalanche-complete, so consecutive trial indices give unrelated RNG
/// streams.
pub fn trial_seed(base: u64, trial: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(trial.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the fault-map seed base of one experiment cell (v2 seed
/// schema).
///
/// Fault maps must depend on the root seed and the benchmark — but
/// **not** on the protection scheme, so that schemes are compared on
/// identical defect patterns, and **not** on the operating voltage, so
/// that one [`crate::FaultChain`] models the same simulated die tracked
/// down the whole voltage ladder (a lower-voltage map is a superset of a
/// higher-voltage one). The v1 schema folded `vcc_mv` into the base; v2
/// dropped it when sampling moved to nested chains, and the experiment
/// store's key version was bumped in lockstep.
pub fn cell_seed_base(root: u64, benchmark_idx: u64) -> u64 {
    root ^ (benchmark_idx << 32)
}

/// A reproducible stream of per-trial RNGs.
///
/// # Example
///
/// ```rust
/// use dvs_sram::montecarlo::Trials;
/// use rand::Rng;
///
/// let summary = Trials::new(42, 32).run(|_trial, mut rng| rng.gen::<f64>());
/// assert_eq!(summary.n, 32);
/// assert!(summary.mean > 0.2 && summary.mean < 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trials {
    base_seed: u64,
    count: u64,
}

impl Trials {
    /// Creates a stream of `count` trials rooted at `base_seed`.
    pub fn new(base_seed: u64, count: u64) -> Self {
        Trials { base_seed, count }
    }

    /// Number of trials.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Iterates over `(trial_index, rng)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, StdRng)> {
        let base = self.base_seed;
        (0..self.count).map(move |t| (t, StdRng::seed_from_u64(trial_seed(base, t))))
    }

    /// Runs `metric` once per trial and summarizes the results.
    pub fn run<F>(&self, mut metric: F) -> Summary
    where
        F: FnMut(u64, StdRng) -> f64,
    {
        let samples: Vec<f64> = self.iter().map(|(t, rng)| metric(t, rng)).collect();
        Summary::of(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn seeds_are_distinct() {
        let seeds: HashSet<u64> = (0..10_000).map(|t| trial_seed(1234, t)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn seeds_are_reproducible() {
        assert_eq!(trial_seed(7, 3), trial_seed(7, 3));
        assert_ne!(trial_seed(7, 3), trial_seed(8, 3));
    }

    #[test]
    fn run_is_deterministic() {
        let f = |_t: u64, mut rng: StdRng| rng.gen::<f64>();
        let a = Trials::new(5, 20).run(f);
        let b = Trials::new(5, 20).run(f);
        assert_eq!(a, b);
    }

    #[test]
    fn trials_receive_their_index() {
        let mut seen = Vec::new();
        Trials::new(0, 5).run(|t, _| {
            seen.push(t);
            0.0
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cell_seed_bases_are_distinct_across_benchmarks_only() {
        let mut seen = HashSet::new();
        for bench in 0..10u64 {
            assert!(seen.insert(cell_seed_base(42, bench)));
        }
        // Changing the root seed moves every base; the voltage is
        // deliberately absent so one die is tracked down the ladder.
        assert_ne!(cell_seed_base(42, 0), cell_seed_base(43, 0));
    }

    #[test]
    fn different_base_seeds_differ() {
        let f = |_t: u64, mut rng: StdRng| rng.gen::<f64>();
        let a = Trials::new(1, 10).run(f);
        let b = Trials::new(2, 10).run(f);
        assert_ne!(a.mean, b.mean);
    }
}
