//! Voltage-dependent SRAM failure-probability model.
//!
//! The paper takes its per-bit failure probabilities from Mahmood & Kim
//! (CASES 2011, reference [2]) for 45 nm; Table II lists the operating
//! points (560 mV → 1e-4 … 400 mV → 1e-2, exactly log-linear at half a
//! decade per 40 mV) and Section II states that a 32 KB array needs 760 mV
//! to reach 99.9 % manufacturing yield. We reproduce both facts with a
//! piecewise log10-linear interpolation over calibrated anchors; see
//! `DESIGN.md` ("Substitutions", item 5).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{MilliVolts, BITS_PER_WORD};

/// Error returned when constructing a [`PfailModel`] from invalid anchors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildPfailModelError {
    message: String,
}

impl fmt::Display for BuildPfailModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pfail model: {}", self.message)
    }
}

impl std::error::Error for BuildPfailModelError {}

/// Per-bit SRAM failure probability as a function of supply voltage.
///
/// Internally a piecewise-linear curve in (millivolts, log10 probability)
/// space, which matches the exponential rise of `P_fail` as voltage drops
/// (paper Figure 2). Beyond the outermost anchors the boundary segment's
/// slope is extrapolated.
///
/// # Example
///
/// ```rust
/// use dvs_sram::{MilliVolts, PfailModel};
///
/// let model = PfailModel::dsn45();
/// // Table II anchors are reproduced exactly.
/// assert!((model.pfail_bit(MilliVolts::new(480)) - 1e-3).abs() < 1e-9);
/// // A 32-bit word fails when any of its bits fail.
/// let pw = model.pfail_word(MilliVolts::new(480));
/// assert!(pw > 3e-2 && pw < 3.3e-2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PfailModel {
    /// (millivolts, log10 p) pairs, strictly increasing in millivolts and
    /// strictly decreasing in log10 p.
    anchors: Vec<(f64, f64)>,
}

impl PfailModel {
    /// The 45 nm model used throughout the paper's evaluation.
    ///
    /// Anchors: the five Table II DVFS points plus the 760 mV yield anchor
    /// (`P_fail` at which a 32 KB = 262144-bit array achieves 99.9 % yield,
    /// ≈ 10^-8.4183).
    pub fn dsn45() -> Self {
        PfailModel::from_anchors(vec![
            (400, -2.0),
            (440, -2.5),
            (480, -3.0),
            (520, -3.5),
            (560, -4.0),
            (760, YIELD_ANCHOR_LOG10P_760MV),
        ])
        .expect("builtin 45nm anchors are valid")
    }

    /// A 65 nm model qualitatively matching the paper's Figure 2 (taken
    /// from Wilkerson et al., ISCA 2008, the paper's reference \[4\]).
    ///
    /// This preset is only used to regenerate the Figure 2 granularity
    /// curves; the evaluation uses [`PfailModel::dsn45`].
    pub fn isca65() -> Self {
        PfailModel::from_anchors(vec![
            (300, -1.0),
            (400, -2.0),
            (500, -3.2),
            (600, -4.8),
            (700, -6.8),
            (800, -9.2),
            (900, -12.0),
        ])
        .expect("builtin 65nm anchors are valid")
    }

    /// Builds a model from `(millivolts, log10 probability)` anchors.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two anchors are given, millivolt
    /// values are not strictly increasing, log10 probabilities are not
    /// strictly decreasing, or any probability exceeds 1.
    pub fn from_anchors(anchors: Vec<(u32, f64)>) -> Result<Self, BuildPfailModelError> {
        if anchors.len() < 2 {
            return Err(BuildPfailModelError {
                message: format!("need at least two anchors, got {}", anchors.len()),
            });
        }
        for pair in anchors.windows(2) {
            let (v0, p0) = pair[0];
            let (v1, p1) = pair[1];
            if v1 <= v0 {
                return Err(BuildPfailModelError {
                    message: format!("voltages must strictly increase ({v0} then {v1})"),
                });
            }
            if p1 >= p0 {
                return Err(BuildPfailModelError {
                    message: format!(
                        "log10 p must strictly decrease with voltage ({p0} then {p1})"
                    ),
                });
            }
        }
        if anchors.iter().any(|&(_, p)| p > 0.0) {
            return Err(BuildPfailModelError {
                message: "log10 probability above 0 (p > 1)".to_string(),
            });
        }
        Ok(PfailModel {
            anchors: anchors
                .into_iter()
                .map(|(v, p)| (f64::from(v), p))
                .collect(),
        })
    }

    /// Probability that a single SRAM bit is defective at voltage `vcc`.
    pub fn pfail_bit(&self, vcc: MilliVolts) -> f64 {
        10f64.powf(self.log10_pfail_bit(vcc)).min(1.0)
    }

    /// log10 of the per-bit failure probability (piecewise linear).
    pub fn log10_pfail_bit(&self, vcc: MilliVolts) -> f64 {
        let v = f64::from(vcc.get());
        let n = self.anchors.len();
        // Select the segment to interpolate on; extrapolate with the
        // boundary segment's slope outside the anchor range.
        let seg = if v <= self.anchors[0].0 {
            (self.anchors[0], self.anchors[1])
        } else if v >= self.anchors[n - 1].0 {
            (self.anchors[n - 2], self.anchors[n - 1])
        } else {
            let hi = self
                .anchors
                .iter()
                .position(|&(av, _)| av >= v)
                .expect("v is below the last anchor");
            (self.anchors[hi - 1], self.anchors[hi])
        };
        let ((v0, p0), (v1, p1)) = seg;
        p0 + (v - v0) * (p1 - p0) / (v1 - v0)
    }

    /// Probability that a structure of `bits` cells contains at least one
    /// defective cell: `1 - (1 - p)^bits`, computed stably for tiny `p`.
    pub fn pfail_any(&self, vcc: MilliVolts, bits: u64) -> f64 {
        let p = self.pfail_bit(vcc);
        pfail_any_of(p, bits)
    }

    /// Probability that a 32-bit word contains a defective cell.
    pub fn pfail_word(&self, vcc: MilliVolts) -> f64 {
        self.pfail_any(vcc, u64::from(BITS_PER_WORD))
    }

    /// Probability that a cache block of `block_bytes` contains a defective
    /// cell.
    pub fn pfail_block(&self, vcc: MilliVolts, block_bytes: u32) -> f64 {
        self.pfail_any(vcc, u64::from(block_bytes) * 8)
    }

    /// Fraction of manufactured dies on which an array of `bits` cells is
    /// entirely fault-free at `vcc` — the paper's chip-yield criterion.
    pub fn array_yield(&self, vcc: MilliVolts, bits: u64) -> f64 {
        let p = self.pfail_bit(vcc);
        if p >= 1.0 {
            return 0.0;
        }
        (bits as f64 * (-p).ln_1p()).exp()
    }

    /// The minimum supply voltage at which an array of `bits` cells still
    /// meets `yield_target` (e.g. 0.999 for the paper's 999-in-1000 dies).
    ///
    /// Searches at 1 mV resolution between 100 mV and 2000 mV.
    ///
    /// # Panics
    ///
    /// Panics if `yield_target` is not within `(0, 1)`.
    pub fn vccmin(&self, bits: u64, yield_target: f64) -> MilliVolts {
        assert!(
            yield_target > 0.0 && yield_target < 1.0,
            "yield target must be in (0, 1), got {yield_target}"
        );
        let (mut lo, mut hi) = (100u32, 2000u32);
        // array_yield is monotone nondecreasing in voltage, so binary search
        // for the first voltage that meets the target.
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.array_yield(MilliVolts::new(mid), bits) >= yield_target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        MilliVolts::new(lo)
    }

    /// Produces the Figure 2 data: failure probability at bit, 4 B word,
    /// 32 B block and whole-array granularity for each requested voltage.
    pub fn granularity_report(
        &self,
        voltages: &[MilliVolts],
        array_bytes: u32,
    ) -> Vec<YieldReport> {
        voltages
            .iter()
            .map(|&v| YieldReport {
                vcc: v,
                pfail_bit: self.pfail_bit(v),
                pfail_word: self.pfail_word(v),
                pfail_block: self.pfail_block(v, 32),
                pfail_array: self.pfail_any(v, u64::from(array_bytes) * 8),
            })
            .collect()
    }
}

/// log10 of the per-bit failure probability at which a 262144-bit (32 KB)
/// array reaches exactly 99.9 % yield. `1 - 0.999^(1/262144) ≈ 10^-8.4183`.
const YIELD_ANCHOR_LOG10P_760MV: f64 = -8.4183;

/// `1 - (1 - p)^n` computed without catastrophic cancellation.
pub(crate) fn pfail_any_of(p: f64, n: u64) -> f64 {
    if p >= 1.0 {
        return 1.0;
    }
    -(n as f64 * (-p).ln_1p()).exp_m1()
}

/// One row of the Figure 2 reproduction: failure probabilities at several
/// granularities for a single supply voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YieldReport {
    /// Supply voltage for this row.
    pub vcc: MilliVolts,
    /// Per-bit failure probability.
    pub pfail_bit: f64,
    /// Failure probability of a 4 B (32-bit) word.
    pub pfail_word: f64,
    /// Failure probability of a 32 B cache block.
    pub pfail_block: f64,
    /// Failure probability of the whole array.
    pub pfail_array: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close_log(a: f64, b: f64) -> bool {
        (a.log10() - b.log10()).abs() < 1e-6
    }

    #[test]
    fn table2_anchors_reproduced() {
        let m = PfailModel::dsn45();
        for (mv, p) in [
            (400u32, 1e-2),
            (440, 10f64.powf(-2.5)),
            (480, 1e-3),
            (520, 10f64.powf(-3.5)),
            (560, 1e-4),
        ] {
            assert!(
                close_log(m.pfail_bit(MilliVolts::new(mv)), p),
                "mismatch at {mv} mV"
            );
        }
    }

    #[test]
    fn vccmin_of_32kb_is_760mv() {
        let m = PfailModel::dsn45();
        let v = m.vccmin(32 * 1024 * 8, 0.999);
        assert!(
            (i64::from(v.get()) - 760).abs() <= 2,
            "expected ~760 mV, got {v}"
        );
    }

    #[test]
    fn yield_monotone_in_voltage() {
        let m = PfailModel::dsn45();
        let bits = 32 * 1024 * 8;
        let mut last = 0.0;
        for mv in (400..=900).step_by(20) {
            let y = m.array_yield(MilliVolts::new(mv), bits);
            assert!(y >= last, "yield decreased at {mv} mV");
            last = y;
        }
    }

    #[test]
    fn granularity_ordering_matches_figure2() {
        // Figure 2: block pfail > word pfail > bit pfail at every voltage.
        let m = PfailModel::dsn45();
        for row in m.granularity_report(
            &[
                MilliVolts::new(400),
                MilliVolts::new(560),
                MilliVolts::new(760),
            ],
            32 * 1024,
        ) {
            assert!(row.pfail_array >= row.pfail_block);
            assert!(row.pfail_block > row.pfail_word);
            assert!(row.pfail_word > row.pfail_bit);
        }
    }

    #[test]
    fn word_pfail_approximates_32x_bit_pfail_when_small() {
        let m = PfailModel::dsn45();
        let v = MilliVolts::new(560);
        let ratio = m.pfail_word(v) / m.pfail_bit(v);
        assert!((ratio - 32.0).abs() < 0.1);
    }

    #[test]
    fn extrapolates_below_lowest_anchor() {
        let m = PfailModel::dsn45();
        // 360 mV continues the 0.5-decade-per-40 mV slope: 10^-1.5.
        assert!(close_log(
            m.pfail_bit(MilliVolts::new(360)),
            10f64.powf(-1.5)
        ));
    }

    #[test]
    fn pfail_saturates_at_one() {
        let m = PfailModel::dsn45();
        assert!(m.pfail_bit(MilliVolts::new(100)) <= 1.0);
        assert_eq!(m.pfail_any(MilliVolts::new(100), 1_000_000), 1.0);
    }

    #[test]
    fn from_anchors_rejects_bad_input() {
        assert!(PfailModel::from_anchors(vec![(400, -2.0)]).is_err());
        assert!(PfailModel::from_anchors(vec![(400, -2.0), (400, -3.0)]).is_err());
        assert!(PfailModel::from_anchors(vec![(400, -2.0), (500, -2.0)]).is_err());
        assert!(PfailModel::from_anchors(vec![(400, 0.5), (500, -2.0)]).is_err());
    }

    #[test]
    fn vccmin_larger_arrays_need_more_voltage() {
        let m = PfailModel::dsn45();
        let v_small = m.vccmin(4 * 1024 * 8, 0.999);
        let v_large = m.vccmin(512 * 1024 * 8, 0.999);
        assert!(v_large > v_small);
    }

    #[test]
    #[should_panic(expected = "yield target")]
    fn vccmin_rejects_bad_target() {
        let _ = PfailModel::dsn45().vccmin(1024, 1.5);
    }

    #[test]
    fn isca65_preset_is_monotone() {
        let m = PfailModel::isca65();
        assert!(m.pfail_bit(MilliVolts::new(400)) > m.pfail_bit(MilliVolts::new(700)));
    }

    proptest! {
        #[test]
        fn pfail_any_bounds(p in 0.0f64..1.0, n in 1u64..100_000) {
            let q = pfail_any_of(p, n);
            prop_assert!((0.0..=1.0).contains(&q));
            prop_assert!(q >= p - 1e-12);
        }

        #[test]
        fn pfail_bit_monotone_decreasing(v0 in 200u32..1000, dv in 1u32..200) {
            let m = PfailModel::dsn45();
            let lo = m.pfail_bit(MilliVolts::new(v0));
            let hi = m.pfail_bit(MilliVolts::new(v0 + dv));
            prop_assert!(hi <= lo);
        }
    }
}
