//! Bit-accurate SRAM array with injectable cell faults.
//!
//! The paper's failure taxonomy (Section II-A) distinguishes read, write,
//! access-time and hold failures. From the architecture's point of view all
//! of them make a cell unreliable at the affected operating point, and BIST
//! detects them by writing patterns and checking read responses. We model a
//! defective cell as one of three deterministic behaviours that cover the
//! taxonomy's observable effects.

use std::collections::BTreeMap;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::BITS_PER_WORD;

/// Observable behaviour of a defective SRAM cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// Cell always reads 0 (write failure to 1 / hold failure of 1).
    StuckAtZero,
    /// Cell always reads 1 (write failure to 0 / hold failure of 0).
    StuckAtOne,
    /// Cell reads back the complement of the stored value (read failure /
    /// access-time failure producing a wrong sense).
    ReadInverts,
}

/// A fault injected into a specific cell of an [`SramArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// Word index within the array.
    pub word: u32,
    /// Bit position within the word (0 = LSB).
    pub bit: u32,
    /// Behaviour of the defective cell.
    pub kind: FailureKind,
}

/// A word-addressed SRAM array with injected cell-level faults.
///
/// Writes store the intended value; reads pass the stored value through
/// each cell's failure behaviour. This is the device-under-test for the
/// [`crate::bist`] module.
///
/// # Example
///
/// ```rust
/// use dvs_sram::{FailureKind, InjectedFault, SramArray};
///
/// let mut array = SramArray::new(4);
/// array.inject(InjectedFault { word: 1, bit: 3, kind: FailureKind::StuckAtOne });
/// array.write(1, 0x0000_0000);
/// assert_eq!(array.read(1), 0x0000_0008); // bit 3 stuck high
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramArray {
    data: Vec<u32>,
    /// (word, bit) → behaviour. BTreeMap keeps Debug output and iteration
    /// deterministic.
    faults: BTreeMap<(u32, u32), FailureKind>,
}

impl SramArray {
    /// Creates a zero-initialized array of `words` 32-bit words.
    pub fn new(words: u32) -> Self {
        SramArray {
            data: vec![0; words as usize],
            faults: BTreeMap::new(),
        }
    }

    /// Number of words in the array.
    pub fn words(&self) -> u32 {
        self.data.len() as u32
    }

    /// Injects a cell fault, replacing any previous fault at that cell.
    ///
    /// # Panics
    ///
    /// Panics if the word or bit index is out of range.
    pub fn inject(&mut self, fault: InjectedFault) {
        assert!(
            (fault.word as usize) < self.data.len(),
            "word {} out of range {}",
            fault.word,
            self.data.len()
        );
        assert!(
            fault.bit < BITS_PER_WORD,
            "bit {} out of range {BITS_PER_WORD}",
            fault.bit
        );
        self.faults.insert((fault.word, fault.bit), fault.kind);
    }

    /// Injects faults cell-by-cell with per-bit probability `p_bit`,
    /// choosing the failure behaviour uniformly. Returns the injected
    /// faults for verification.
    ///
    /// # Panics
    ///
    /// Panics if `p_bit` is outside `[0, 1]`.
    pub fn inject_random<R: Rng + ?Sized>(
        &mut self,
        p_bit: f64,
        rng: &mut R,
    ) -> Vec<InjectedFault> {
        assert!(
            (0.0..=1.0).contains(&p_bit),
            "bit failure probability {p_bit} outside [0, 1]"
        );
        let mut injected = Vec::new();
        for word in 0..self.words() {
            for bit in 0..BITS_PER_WORD {
                if rng.gen::<f64>() < p_bit {
                    let kind = match rng.gen_range(0..3) {
                        0 => FailureKind::StuckAtZero,
                        1 => FailureKind::StuckAtOne,
                        _ => FailureKind::ReadInverts,
                    };
                    let fault = InjectedFault { word, bit, kind };
                    self.inject(fault);
                    injected.push(fault);
                }
            }
        }
        injected
    }

    /// Stores `value` into `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn write(&mut self, word: u32, value: u32) {
        self.data[word as usize] = value;
    }

    /// Reads `word`, applying each defective cell's behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn read(&self, word: u32) -> u32 {
        let mut value = self.data[word as usize];
        for (&(w, bit), &kind) in self.faults.range((word, 0)..=(word, BITS_PER_WORD - 1)) {
            debug_assert_eq!(w, word);
            let mask = 1u32 << bit;
            value = match kind {
                FailureKind::StuckAtZero => value & !mask,
                FailureKind::StuckAtOne => value | mask,
                FailureKind::ReadInverts => value ^ mask,
            };
        }
        value
    }

    /// Word indices that contain at least one injected fault — the ground
    /// truth a correct BIST must recover.
    pub fn ground_truth_faulty_words(&self) -> Vec<u32> {
        let mut words: Vec<u32> = self.faults.keys().map(|&(w, _)| w).collect();
        words.dedup();
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_array_roundtrips() {
        let mut a = SramArray::new(8);
        a.write(3, 0xDEAD_BEEF);
        assert_eq!(a.read(3), 0xDEAD_BEEF);
        assert_eq!(a.read(0), 0);
    }

    #[test]
    fn stuck_at_zero_masks_bit() {
        let mut a = SramArray::new(2);
        a.inject(InjectedFault {
            word: 0,
            bit: 0,
            kind: FailureKind::StuckAtZero,
        });
        a.write(0, 0xFFFF_FFFF);
        assert_eq!(a.read(0), 0xFFFF_FFFE);
    }

    #[test]
    fn stuck_at_one_sets_bit() {
        let mut a = SramArray::new(2);
        a.inject(InjectedFault {
            word: 1,
            bit: 31,
            kind: FailureKind::StuckAtOne,
        });
        a.write(1, 0);
        assert_eq!(a.read(1), 0x8000_0000);
    }

    #[test]
    fn read_inverts_flips_bit() {
        let mut a = SramArray::new(1);
        a.inject(InjectedFault {
            word: 0,
            bit: 4,
            kind: FailureKind::ReadInverts,
        });
        a.write(0, 0x0000_0010);
        assert_eq!(a.read(0), 0);
        a.write(0, 0);
        assert_eq!(a.read(0), 0x0000_0010);
    }

    #[test]
    fn faults_do_not_leak_across_words() {
        let mut a = SramArray::new(3);
        a.inject(InjectedFault {
            word: 1,
            bit: 0,
            kind: FailureKind::StuckAtOne,
        });
        a.write(0, 0);
        a.write(2, 0);
        assert_eq!(a.read(0), 0);
        assert_eq!(a.read(2), 0);
    }

    #[test]
    fn ground_truth_lists_unique_words() {
        let mut a = SramArray::new(4);
        for bit in [0, 5] {
            a.inject(InjectedFault {
                word: 2,
                bit,
                kind: FailureKind::StuckAtZero,
            });
        }
        assert_eq!(a.ground_truth_faulty_words(), vec![2]);
    }

    #[test]
    fn random_injection_rate() {
        let mut a = SramArray::new(1024);
        let mut rng = StdRng::seed_from_u64(3);
        let faults = a.inject_random(0.01, &mut rng);
        let expected = 1024.0 * 32.0 * 0.01;
        assert!((faults.len() as f64 - expected).abs() < 4.0 * expected.sqrt());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inject_out_of_range_panics() {
        let mut a = SramArray::new(1);
        a.inject(InjectedFault {
            word: 1,
            bit: 0,
            kind: FailureKind::StuckAtZero,
        });
    }
}
