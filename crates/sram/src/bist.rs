//! Built-in self-test over an [`SramArray`].
//!
//! The paper (Section IV) leverages BIST "to identify defective words at
//! all system supported DVFS operating points": test patterns are written,
//! read responses checked, and the resulting defect list recorded in fault
//! maps. This module implements a word-wide March C- test, which detects
//! every fault behaviour modelled by [`crate::FailureKind`].

use dvs_obs::{Recorder, Span};

use crate::{BitGrid, CacheGeometry, FaultMap, SramArray};

/// The word-wide data backgrounds marched through the array.
///
/// All-zeros/all-ones catch stuck-at cells in both polarities (and
/// read-inversion in whichever polarity it disturbs); the checkerboard pair
/// additionally exercises adjacent-bit backgrounds like a classical March
/// C- with checkerboard data.
const BACKGROUNDS: [u32; 2] = [0x0000_0000, 0xAAAA_AAAA];

/// Runs a March C- style test and returns one bit per word: set when the
/// word misbehaved under any march element.
///
/// March C- (word-wide): ⇕(wD); ⇑(rD, w!D); ⇑(r!D, wD); ⇓(rD, w!D);
/// ⇓(r!D, wD); ⇕(rD) — executed for each data background `D`.
///
/// # Example
///
/// ```rust
/// use dvs_sram::{bist, FailureKind, InjectedFault, SramArray};
///
/// let mut array = SramArray::new(16);
/// array.inject(InjectedFault { word: 5, bit: 0, kind: FailureKind::ReadInverts });
/// let faulty = bist::march_test(&mut array);
/// assert_eq!(faulty.iter_ones().collect::<Vec<_>>(), vec![5]);
/// ```
pub fn march_test(array: &mut SramArray) -> BitGrid {
    let words = array.words();
    let mut faulty = BitGrid::new(words as usize);
    for &background in &BACKGROUNDS {
        let inverse = !background;
        // ⇕(wD)
        for w in 0..words {
            array.write(w, background);
        }
        // ⇑(rD, w!D)
        for w in 0..words {
            if array.read(w) != background {
                faulty.set(w as usize, true);
            }
            array.write(w, inverse);
        }
        // ⇑(r!D, wD)
        for w in 0..words {
            if array.read(w) != inverse {
                faulty.set(w as usize, true);
            }
            array.write(w, background);
        }
        // ⇓(rD, w!D)
        for w in (0..words).rev() {
            if array.read(w) != background {
                faulty.set(w as usize, true);
            }
            array.write(w, inverse);
        }
        // ⇓(r!D, wD)
        for w in (0..words).rev() {
            if array.read(w) != inverse {
                faulty.set(w as usize, true);
            }
            array.write(w, background);
        }
        // ⇕(rD)
        for w in 0..words {
            if array.read(w) != background {
                faulty.set(w as usize, true);
            }
        }
    }
    faulty
}

/// [`march_test`] with observability: records the march wall-clock time
/// (`sram.bist.march_nanos`) and the deterministic counters
/// `sram.bist.words_tested` and `sram.bist.faulty_words` into `recorder`.
/// The defect grid is identical to [`march_test`]'s.
pub fn march_test_recorded(array: &mut SramArray, recorder: &dyn Recorder) -> BitGrid {
    let words = array.words();
    let faulty = {
        let _span = Span::enter(recorder, "sram.bist.march_nanos");
        march_test(array)
    };
    recorder.add("sram.bist.words_tested", u64::from(words));
    recorder.add("sram.bist.faulty_words", faulty.count_ones() as u64);
    faulty
}

/// Runs [`march_test`] over an array sized for `geometry` and converts the
/// result into a [`FaultMap`] in the geometry's linear word order.
///
/// # Panics
///
/// Panics if the array does not hold exactly `geometry.total_words()`
/// words.
pub fn derive_fault_map(geometry: &CacheGeometry, array: &mut SramArray) -> FaultMap {
    assert_eq!(
        array.words(),
        geometry.total_words(),
        "array size does not match geometry"
    );
    let faulty = march_test(array);
    FaultMap::from_faulty_indices(geometry, faulty.iter_ones().map(|i| i as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailureKind, InjectedFault, MilliVolts, PfailModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_array_tests_clean() {
        let mut a = SramArray::new(64);
        assert_eq!(march_test(&mut a).count_ones(), 0);
    }

    #[test]
    fn detects_every_failure_kind_in_every_bit() {
        for kind in [
            FailureKind::StuckAtZero,
            FailureKind::StuckAtOne,
            FailureKind::ReadInverts,
        ] {
            for bit in 0..32 {
                let mut a = SramArray::new(4);
                a.inject(InjectedFault { word: 2, bit, kind });
                let faulty = march_test(&mut a);
                assert_eq!(
                    faulty.iter_ones().collect::<Vec<_>>(),
                    vec![2],
                    "missed {kind:?} at bit {bit}"
                );
            }
        }
    }

    #[test]
    fn bist_recovers_random_injection_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut a = SramArray::new(2048);
        a.inject_random(2e-3, &mut rng);
        let truth = a.ground_truth_faulty_words();
        let found: Vec<u32> = march_test(&mut a).iter_ones().map(|i| i as u32).collect();
        assert_eq!(found, truth);
        assert!(!truth.is_empty(), "injection produced no faults; weak test");
    }

    #[test]
    fn derive_fault_map_matches_injection() {
        let geom = CacheGeometry::new(4 * 1024, 4, 32).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut a = SramArray::new(geom.total_words());
        a.inject_random(1e-2, &mut rng);
        let truth = a.ground_truth_faulty_words();
        let map = derive_fault_map(&geom, &mut a);
        assert_eq!(map.iter_faulty_linear().collect::<Vec<_>>(), truth);
    }

    #[test]
    fn bist_word_rate_matches_pfail_model() {
        // Injecting bit faults at the model's per-bit rate must yield a
        // word-level fault rate close to the model's per-word prediction —
        // this ties together the failure model, the array and the BIST.
        let model = PfailModel::dsn45();
        let v = MilliVolts::new(400);
        let mut rng = StdRng::seed_from_u64(99);
        let mut a = SramArray::new(8192);
        a.inject_random(model.pfail_bit(v), &mut rng);
        let found = march_test(&mut a).count_ones() as f64 / 8192.0;
        let predicted = model.pfail_word(v);
        // 8192 trials at p≈0.275: 4σ ≈ 0.02.
        assert!(
            (found - predicted).abs() < 0.02,
            "BIST rate {found} vs model {predicted}"
        );
    }

    #[test]
    fn recorded_march_matches_plain_and_counts() {
        use dvs_obs::MetricsRegistry;
        let mut rng = StdRng::seed_from_u64(11);
        let mut a = SramArray::new(2048);
        a.inject_random(2e-3, &mut rng);
        let mut b = a.clone();
        let plain = march_test(&mut a);
        let reg = MetricsRegistry::new();
        let recorded = march_test_recorded(&mut b, &reg);
        assert_eq!(
            plain.iter_ones().collect::<Vec<_>>(),
            recorded.iter_ones().collect::<Vec<_>>()
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sram.bist.words_tested"), 2048);
        assert_eq!(
            snap.counter("sram.bist.faulty_words"),
            recorded.count_ones() as u64
        );
        assert_eq!(snap.timers["sram.bist.march_nanos"].count, 1);
    }

    #[test]
    #[should_panic(expected = "does not match geometry")]
    fn derive_fault_map_size_mismatch_panics() {
        let geom = CacheGeometry::dsn_l1();
        let mut a = SramArray::new(16);
        let _ = derive_fault_map(&geom, &mut a);
    }
}
