//! JSON ↔ engine translation: campaign specs in, results out.
//!
//! This module is pure — no sockets, no threads — so the request and
//! response shapes are unit-testable without a server. Result rendering
//! emits only integers from [`dvs_core::TrialMetrics`], which makes a
//! campaign fetched over the wire byte-comparable to one rendered from a
//! direct [`dvs_core::Evaluator::run_plan`] call.

use std::sync::Arc;

use dvs_core::{CellKey, EvalConfig, EvalError, Evaluator, ExperimentPlan, Scheme, SchemeRun};
use dvs_obs::json::{json_escape, Value};
use dvs_sram::{FaultModel, MilliVolts};
use dvs_workloads::Benchmark;

/// Hard cap on cells per campaign: a grid bigger than this is a typo or
/// an attack, not an experiment.
pub const MAX_CELLS: usize = 4096;

/// Lowest plausible supply voltage a spec may request.
pub const MIN_VCC_MV: u32 = 300;

/// Highest plausible supply voltage a spec may request.
pub const MAX_VCC_MV: u32 = 1000;

/// A validated campaign request: the grid plus optional engine
/// overrides.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Benchmarks of the grid, in request order.
    pub benchmarks: Vec<Benchmark>,
    /// Schemes of the grid, in request order.
    pub schemes: Vec<Scheme>,
    /// Operating voltages of the grid, in request order.
    pub voltages: Vec<MilliVolts>,
    /// Override for [`EvalConfig::maps`].
    pub maps: Option<u64>,
    /// Override for [`EvalConfig::trace_instrs`].
    pub trace_instrs: Option<usize>,
    /// Override for [`EvalConfig::seed`].
    pub seed: Option<u64>,
    /// Override for [`EvalConfig::fault_model`] (`"iid"`, `"rowcol"`
    /// or `"clustered"`).
    pub model: Option<FaultModel>,
}

impl CampaignSpec {
    /// Parses and validates a request body.
    ///
    /// Fail-closed: unknown top-level keys, empty axes, out-of-range
    /// voltages, unrecognised names, and oversized grids are all
    /// rejected with a message suitable for a 400 body.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn from_json(body: &str) -> Result<CampaignSpec, String> {
        let value = Value::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let obj = value
            .as_obj()
            .ok_or("campaign spec must be a JSON object")?;
        for key in obj.keys() {
            if !matches!(
                key.as_str(),
                "benchmarks"
                    | "schemes"
                    | "voltages_mv"
                    | "maps"
                    | "trace_instrs"
                    | "seed"
                    | "model"
            ) {
                return Err(format!("unknown field {key:?}"));
            }
        }

        let benchmarks = string_list(&value, "benchmarks")?
            .iter()
            .map(|name| parse_benchmark(name).ok_or_else(|| format!("unknown benchmark {name:?}")))
            .collect::<Result<Vec<_>, _>>()?;
        let schemes = string_list(&value, "schemes")?
            .iter()
            .map(|name| parse_scheme(name).ok_or_else(|| format!("unknown scheme {name:?}")))
            .collect::<Result<Vec<_>, _>>()?;

        let raw_voltages = value
            .get("voltages_mv")
            .ok_or("missing field \"voltages_mv\"")?
            .as_arr()
            .ok_or("\"voltages_mv\" must be an array of integers")?;
        if raw_voltages.is_empty() {
            return Err("\"voltages_mv\" must not be empty".into());
        }
        let mut voltages = Vec::with_capacity(raw_voltages.len());
        for v in raw_voltages {
            let mv = integer_in(v, "voltage", u64::from(MIN_VCC_MV), u64::from(MAX_VCC_MV))?;
            voltages.push(MilliVolts::new(mv as u32));
        }

        let cells = benchmarks.len() * schemes.len() * voltages.len();
        if cells > MAX_CELLS {
            return Err(format!("grid has {cells} cells; the limit is {MAX_CELLS}"));
        }

        let maps = value
            .get("maps")
            .map(|v| integer_in(v, "maps", 1, 100_000))
            .transpose()?;
        let trace_instrs = value
            .get("trace_instrs")
            .map(|v| integer_in(v, "trace_instrs", 1, 100_000_000))
            .transpose()?
            .map(|n| n as usize);
        let seed = value
            .get("seed")
            .map(|v| integer_in(v, "seed", 0, u64::MAX))
            .transpose()?;
        let model = value
            .get("model")
            .map(|v| {
                let name = v.as_str().ok_or("\"model\" must be a string".to_string())?;
                FaultModel::parse(name)
                    .ok_or_else(|| format!("unknown model {name:?} (iid, rowcol or clustered)"))
            })
            .transpose()?;

        Ok(CampaignSpec {
            benchmarks,
            schemes,
            voltages,
            maps,
            trace_instrs,
            seed,
            model,
        })
    }

    /// The full grid as an [`ExperimentPlan`] (duplicates collapse).
    pub fn plan(&self) -> ExperimentPlan {
        ExperimentPlan::for_grid(&self.benchmarks, &self.schemes, &self.voltages)
    }

    /// `base` with this spec's overrides applied. Parallelism knobs
    /// (`threads`, `max_parallel_trials`) always come from `base`: they
    /// are the operator's resources, not the client's.
    pub fn config(&self, base: &EvalConfig) -> EvalConfig {
        EvalConfig {
            maps: self.maps.unwrap_or(base.maps),
            trace_instrs: self.trace_instrs.unwrap_or(base.trace_instrs),
            seed: self.seed.unwrap_or(base.seed),
            fault_model: self.model.unwrap_or(base.fault_model),
            ..*base
        }
    }
}

/// Extracts a non-empty array of strings at `field`.
fn string_list<'v>(value: &'v Value, field: &str) -> Result<Vec<&'v str>, String> {
    let arr = value
        .get(field)
        .ok_or_else(|| format!("missing field {field:?}"))?
        .as_arr()
        .ok_or_else(|| format!("{field:?} must be an array of strings"))?;
    if arr.is_empty() {
        return Err(format!("{field:?} must not be empty"));
    }
    arr.iter()
        .map(|v| {
            v.as_str()
                .ok_or_else(|| format!("{field:?} must contain only strings"))
        })
        .collect()
}

/// Checks that `v` is an integer-valued JSON number in `[lo, hi]`.
fn integer_in(v: &Value, what: &str, lo: u64, hi: u64) -> Result<u64, String> {
    let f = v
        .as_f64()
        .ok_or_else(|| format!("{what} must be a number"))?;
    if f.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&f) {
        return Err(format!("{what} must be a non-negative integer, got {f}"));
    }
    let n = f as u64;
    if n < lo || n > hi {
        return Err(format!("{what} must be in [{lo}, {hi}], got {n}"));
    }
    Ok(n)
}

/// Looks a benchmark up by its paper name (`"401.bzip2"`) or its bare
/// name (`"bzip2"`), the same aliases `dvs-profile` accepts.
pub fn parse_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| {
        let full = b.name();
        full == name || full.split_once('.').is_some_and(|(_, bare)| bare == name)
    })
}

/// Looks a scheme up by its figure-legend name, case-insensitively
/// (`"FFW+BBR"`, `"defect-free"`, ...).
pub fn parse_scheme(name: &str) -> Option<Scheme> {
    Scheme::ALL
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
}

/// Reconstructs a cell's engine-level result from its stored payload:
/// zero surviving trials re-raises [`EvalError::AllLinksFailed`] (with
/// the stored attempt count), anything else rebuilds the
/// [`SchemeRun`]. Both the store query path and the cluster result
/// renderer go through here, so a cell fetched from any node renders
/// byte-identically to one computed in-process.
pub fn stored_cell_result(
    key: &CellKey,
    stored: dvs_core::StoredCell,
) -> Result<Arc<SchemeRun>, EvalError> {
    if stored.trials.is_empty() {
        Err(EvalError::AllLinksFailed {
            benchmark: key.benchmark,
            scheme: key.scheme,
            vcc: key.vcc(),
            attempts: stored.failed_links,
        })
    } else {
        Ok(Arc::new(SchemeRun {
            scheme: key.scheme,
            point: key.point(),
            benchmark: key.benchmark,
            trials: stored.trials,
            failed_links: stored.failed_links,
        }))
    }
}

/// Renders a cell that failed outside the engine (e.g. a cluster unit
/// whose retries were exhausted) in the same shape as
/// [`cell_json`]'s error branch.
pub fn cell_error_json(key: &CellKey, error: &str) -> String {
    format!(
        "{{\"benchmark\":\"{}\",\"scheme\":\"{}\",\"vcc_mv\":{},\
         \"status\":\"error\",\"error\":\"{}\"}}",
        json_escape(key.benchmark.name()),
        json_escape(key.scheme.name()),
        key.vcc().get(),
        json_escape(error),
    )
}

/// Renders the `GET /v1/healthz` body: liveness plus enough shape
/// (version, role, uptime, queue depth) for a probe to tell nodes
/// apart without hitting `/v1/metrics`.
pub fn healthz_json(
    version: &str,
    role: &str,
    uptime_ms: u64,
    queue_depth: usize,
    draining: bool,
) -> String {
    format!(
        "{{\"ok\":true,\"version\":\"{}\",\"role\":\"{}\",\"uptime_ms\":{uptime_ms},\
         \"queue_depth\":{queue_depth},\"draining\":{draining}}}",
        json_escape(version),
        json_escape(role),
    )
}

/// Renders one resolved cell as a JSON object.
///
/// All metric fields are integers straight from the trial records, so
/// two renderings of the same underlying trials are byte-identical no
/// matter which process (or how many threads) computed them.
pub fn cell_json(key: &CellKey, result: &Result<Arc<SchemeRun>, EvalError>) -> String {
    let mut out = format!(
        "{{\"benchmark\":\"{}\",\"scheme\":\"{}\",\"vcc_mv\":{}",
        json_escape(key.benchmark.name()),
        json_escape(key.scheme.name()),
        key.vcc().get(),
    );
    match result {
        Ok(run) => {
            out.push_str(&format!(
                ",\"status\":\"ok\",\"failed_links\":{},\"trials\":[",
                run.failed_links
            ));
            for (i, t) in run.trials.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"cycles\":{},\"instructions\":{},\"executed\":{},\
                     \"l1_accesses\":{},\"l2_accesses\":{}}}",
                    t.result.cycles,
                    t.counts.instructions,
                    t.counts.executed,
                    t.counts.l1_accesses,
                    t.counts.l2_accesses,
                ));
            }
            out.push(']');
        }
        Err(e) => {
            out.push_str(&format!(",\"status\":\"error\",\"error\":\"{}\"", {
                json_escape(&e.to_string())
            }));
        }
    }
    out.push('}');
    out
}

/// Renders a whole campaign's results array in plan order.
pub fn results_json(results: &[(CellKey, Result<Arc<SchemeRun>, EvalError>)]) -> String {
    let mut out = String::from("[");
    for (i, (key, result)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&cell_json(key, result));
    }
    out.push(']');
    out
}

/// Runs `spec` directly through a fresh [`Evaluator`] and renders the
/// results exactly as `GET /v1/campaigns/{id}` would. This is the
/// reference path the end-to-end test compares the server against.
pub fn render_direct(
    spec: &CampaignSpec,
    base: &EvalConfig,
    store: Option<&dvs_core::ResultStore>,
) -> String {
    let mut evaluator = Evaluator::new(spec.config(base));
    if let Some(store) = store {
        evaluator = evaluator.with_store(store.clone());
    }
    let results = evaluator.run_plan(&spec.plan());
    results_json(&results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_lookup_accepts_full_and_bare_names() {
        assert_eq!(parse_benchmark("401.bzip2"), Some(Benchmark::Bzip2));
        assert_eq!(parse_benchmark("bzip2"), Some(Benchmark::Bzip2));
        assert_eq!(parse_benchmark("crc32"), Some(Benchmark::Crc32));
        assert_eq!(parse_benchmark("999.nope"), None);
        assert_eq!(parse_benchmark(""), None);
    }

    #[test]
    fn scheme_lookup_is_case_insensitive_over_all_variants() {
        assert_eq!(parse_scheme("FFW+BBR"), Some(Scheme::FfwBbr));
        assert_eq!(parse_scheme("ffw+bbr"), Some(Scheme::FfwBbr));
        for s in Scheme::ALL {
            assert_eq!(parse_scheme(s.name()), Some(s));
        }
        assert_eq!(parse_scheme("FFW"), None);
    }

    #[test]
    fn spec_parsing_round_trips_a_valid_request() {
        let spec = CampaignSpec::from_json(
            r#"{"benchmarks":["crc32","401.bzip2"],"schemes":["FFW+BBR"],
                "voltages_mv":[540,600],"maps":2,"trace_instrs":2000,"seed":7,
                "model":"rowcol"}"#,
        )
        .unwrap();
        assert_eq!(spec.benchmarks, vec![Benchmark::Crc32, Benchmark::Bzip2]);
        assert_eq!(spec.schemes, vec![Scheme::FfwBbr]);
        assert_eq!(
            spec.voltages,
            vec![MilliVolts::new(540), MilliVolts::new(600)]
        );
        assert_eq!(spec.plan().len(), 4);
        let cfg = spec.config(&EvalConfig::quick());
        assert_eq!((cfg.maps, cfg.trace_instrs, cfg.seed), (2, 2000, 7));
        assert_eq!(cfg.fault_model, FaultModel::row_column());
        // Parallelism stays the operator's choice.
        assert_eq!(cfg.threads, EvalConfig::quick().threads);
        // Omitting "model" keeps the operator's default.
        let plain = CampaignSpec::from_json(
            r#"{"benchmarks":["crc32"],"schemes":["FFW+BBR"],"voltages_mv":[600]}"#,
        )
        .unwrap();
        assert_eq!(plain.model, None);
        assert_eq!(
            plain.config(&EvalConfig::quick()).fault_model,
            EvalConfig::quick().fault_model
        );
    }

    #[test]
    fn spec_parsing_fails_closed() {
        for (body, needle) in [
            ("[]", "must be a JSON object"),
            ("{", "invalid JSON"),
            (
                r#"{"benchmarks":["crc32"],"schemes":["FFW+BBR"]}"#,
                "voltages_mv",
            ),
            (
                r#"{"benchmarks":[],"schemes":["FFW+BBR"],"voltages_mv":[600]}"#,
                "must not be empty",
            ),
            (
                r#"{"benchmarks":["crc32"],"schemes":["nope"],"voltages_mv":[600]}"#,
                "unknown scheme",
            ),
            (
                r#"{"benchmarks":["crc32"],"schemes":["FFW+BBR"],"voltages_mv":[50]}"#,
                "must be in [300, 1000]",
            ),
            (
                r#"{"benchmarks":["crc32"],"schemes":["FFW+BBR"],"voltages_mv":[600.5]}"#,
                "non-negative integer",
            ),
            (
                r#"{"benchmarks":["crc32"],"schemes":["FFW+BBR"],"voltages_mv":[600],"evil":1}"#,
                "unknown field",
            ),
            (
                r#"{"benchmarks":["crc32"],"schemes":["FFW+BBR"],"voltages_mv":[600],"maps":0}"#,
                "maps must be in",
            ),
            (
                r#"{"benchmarks":["crc32"],"schemes":["FFW+BBR"],"voltages_mv":[600],"model":"gaussian"}"#,
                "unknown model",
            ),
            (
                r#"{"benchmarks":["crc32"],"schemes":["FFW+BBR"],"voltages_mv":[600],"model":3}"#,
                "must be a string",
            ),
        ] {
            let err = CampaignSpec::from_json(body).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn healthz_body_parses_under_the_hardened_parser() {
        let body = healthz_json("0.1.0", "coordinator", 12345, 3, false);
        let v = Value::parse(&body).expect("healthz must be valid JSON");
        assert_eq!(v.get("ok").and_then(Value::as_f64), None); // a bool, not a number
        assert!(matches!(v.get("ok"), Some(Value::Bool(true))));
        assert_eq!(v.get("version").and_then(Value::as_str), Some("0.1.0"));
        assert_eq!(v.get("role").and_then(Value::as_str), Some("coordinator"));
        assert_eq!(v.get("uptime_ms").and_then(Value::as_f64), Some(12345.0));
        assert_eq!(v.get("queue_depth").and_then(Value::as_f64), Some(3.0));
        assert!(matches!(v.get("draining"), Some(Value::Bool(false))));
    }

    #[test]
    fn stored_cells_reconstruct_runs_and_link_failures() {
        let key = CellKey::new(Benchmark::Crc32, Scheme::FfwBbr, MilliVolts::new(440));
        let failed = dvs_core::StoredCell {
            failed_links: 9,
            trials: Vec::new(),
        };
        let err = stored_cell_result(&key, failed).unwrap_err();
        assert!(matches!(err, EvalError::AllLinksFailed { attempts: 9, .. }));
        // The error branch renders identically through both paths.
        assert_eq!(
            cell_json(&key, &Err(err.clone())),
            cell_error_json(&key, &err.to_string())
        );
    }

    #[test]
    fn oversized_grids_are_rejected() {
        let benchmarks: Vec<String> = Benchmark::ALL
            .iter()
            .map(|b| format!("\"{}\"", b.name()))
            .collect();
        let schemes: Vec<String> = Scheme::ALL
            .iter()
            .map(|s| format!("\"{}\"", s.name()))
            .collect();
        let voltages: Vec<String> = (0..40).map(|i| (400 + i).to_string()).collect();
        let body = format!(
            "{{\"benchmarks\":[{}],\"schemes\":[{}],\"voltages_mv\":[{}]}}",
            benchmarks.join(","),
            schemes.join(","),
            voltages.join(","),
        );
        let err = CampaignSpec::from_json(&body).unwrap_err();
        assert!(err.contains("the limit is"), "{err}");
    }
}
