//! `dvs-serve` — the campaign server that puts the experiment engine
//! behind a network API.
//!
//! A dependency-free, multi-threaded `std::net` TCP server speaking
//! minimal HTTP/1.1 with a JSON API:
//!
//! | Route | Purpose |
//! |---|---|
//! | `POST /v1/campaigns` | submit an experiment grid to the bounded job queue |
//! | `GET /v1/campaigns` | list campaigns and their states |
//! | `GET /v1/campaigns/{id}` | poll one campaign's status/progress/results |
//! | `GET /v1/results?...` | point query answered straight from the [`dvs_core::ResultStore`] |
//! | `GET /v1/metrics` | the [`dvs_obs`] metrics snapshot (text or JSON) |
//! | `GET /v1/healthz` | liveness probe |
//! | `POST /v1/admin/shutdown` | graceful drain and exit |
//!
//! Layering mirrors the rest of the workspace: [`http`] is the wire
//! protocol (framing, limits, timeouts), [`api`] is pure JSON ↔ engine
//! translation, [`jobs`] owns the bounded campaign queue and executor
//! threads over [`dvs_core::Evaluator`], and [`server`] wires accept
//! loop, routing, and graceful shutdown together. Everything observable
//! flows through `serve.*` metrics on a shared
//! [`dvs_obs::MetricsRegistry`].

pub mod api;
pub mod http;
pub mod jobs;
pub mod server;

pub use jobs::{JobManager, SubmitError};
pub use server::{Server, ServerConfig};
