//! Minimal HTTP/1.1 on `std::net` — the wire layer of `dvs-serve`.
//!
//! Only what the campaign API needs, hardened for untrusted peers:
//! request-line + headers + `Content-Length` bodies, keep-alive, and
//! hard limits on header and body size. Chunked transfer encoding is
//! deliberately rejected. Each connection owns one reusable byte buffer,
//! so a long keep-alive session does not grow memory per request.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line plus all headers.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// Default upper bound on a request body (campaign specs are tiny).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1 << 20;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path, without the query string.
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// Exact bytes this request occupied on the wire (head + body).
    pub wire_bytes: usize,
}

impl Request {
    /// First header with the (case-insensitive) `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter called `name`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why reading a request failed; maps onto a status code (or a silent
/// close) in the connection loop.
#[derive(Debug)]
pub enum RequestError {
    /// Clean EOF before any request byte — the peer is done.
    Closed,
    /// The read timed out mid-request.
    Timeout,
    /// Request line plus headers exceeded [`MAX_HEADER_BYTES`] (→ 431).
    HeadersTooLarge,
    /// Declared body exceeds the configured limit (→ 413).
    BodyTooLarge {
        /// The limit in force.
        limit: usize,
    },
    /// Anything structurally wrong with the request (→ 400).
    Malformed(String),
    /// Transport error.
    Io(io::Error),
}

/// One accepted connection plus its persistent read buffer.
#[derive(Debug)]
pub struct HttpConn {
    stream: TcpStream,
    /// Unconsumed bytes (pipelined requests stay here between reads).
    buf: Vec<u8>,
    max_body: usize,
}

impl HttpConn {
    /// Wraps an accepted stream. Read/write timeouts should already be
    /// set on it.
    pub fn new(stream: TcpStream, max_body: usize) -> Self {
        HttpConn {
            stream,
            buf: Vec::with_capacity(1024),
            max_body,
        }
    }

    /// The underlying stream (for peer-address logging).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads and parses one request, honouring the connection's size
    /// limits.
    ///
    /// # Errors
    ///
    /// See [`RequestError`]; `Closed` is the normal end of a keep-alive
    /// session.
    pub fn read_request(&mut self) -> Result<Request, RequestError> {
        let header_end = loop {
            if let Some(pos) = find_terminator(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEADER_BYTES {
                return Err(RequestError::HeadersTooLarge);
            }
            if self.fill()? == 0 {
                return if self.buf.is_empty() {
                    Err(RequestError::Closed)
                } else {
                    Err(RequestError::Malformed("truncated request head".into()))
                };
            }
        };

        let head = String::from_utf8(self.buf[..header_end].to_vec())
            .map_err(|_| RequestError::Malformed("non-UTF-8 request head".into()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split(' ');
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| RequestError::Malformed("empty request line".into()))?
            .to_ascii_uppercase();
        let target = parts
            .next()
            .ok_or_else(|| RequestError::Malformed("missing request target".into()))?;
        let version = parts
            .next()
            .ok_or_else(|| RequestError::Malformed("missing HTTP version".into()))?;
        if !version.starts_with("HTTP/1.") {
            return Err(RequestError::Malformed(format!(
                "unsupported version {version}"
            )));
        }

        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| RequestError::Malformed(format!("bad header line {line:?}")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        if headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
        {
            return Err(RequestError::Malformed(
                "chunked transfer encoding is not supported".into(),
            ));
        }

        let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| RequestError::Malformed(format!("bad content-length {v:?}")))?,
            None => 0,
        };
        if content_length > self.max_body {
            return Err(RequestError::BodyTooLarge {
                limit: self.max_body,
            });
        }

        let body_start = header_end + 4;
        while self.buf.len() < body_start + content_length {
            if self.fill()? == 0 {
                return Err(RequestError::Malformed("truncated request body".into()));
            }
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        // Keep pipelined bytes for the next read_request call.
        self.buf.drain(..body_start + content_length);

        let (raw_path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (target, None),
        };
        let path = percent_decode(raw_path)
            .ok_or_else(|| RequestError::Malformed("bad percent escape in path".into()))?;
        let mut query = Vec::new();
        for pair in raw_query.unwrap_or_default().split('&') {
            if pair.is_empty() {
                continue;
            }
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let k = percent_decode(k)
                .ok_or_else(|| RequestError::Malformed("bad percent escape in query".into()))?;
            let v = percent_decode(v)
                .ok_or_else(|| RequestError::Malformed("bad percent escape in query".into()))?;
            query.push((k, v));
        }

        let keep_alive = match headers.iter().find(|(k, _)| k == "connection") {
            Some((_, v)) => !v.eq_ignore_ascii_case("close"),
            // HTTP/1.1 defaults to keep-alive, 1.0 to close.
            None => version != "HTTP/1.0",
        };

        Ok(Request {
            method,
            path,
            query,
            headers,
            body,
            keep_alive,
            wire_bytes: body_start + content_length,
        })
    }

    fn fill(&mut self) -> Result<usize, RequestError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(n)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Err(RequestError::Timeout)
            }
            Err(e) => Err(RequestError::Io(e)),
        }
    }

    /// Serializes and writes one response; returns the bytes written.
    ///
    /// # Errors
    ///
    /// Returns the underlying transport error.
    pub fn write_response(&mut self, resp: &Response) -> io::Result<usize> {
        let bytes = resp.to_wire();
        self.stream.write_all(&bytes)?;
        self.stream.flush()?;
        Ok(bytes.len())
    }
}

/// Offset of the first `\r\n\r\n`, if complete headers have arrived.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decodes `%XX` escapes; returns `None` on malformed escapes or
/// non-UTF-8 results. `+` is left literal (scheme names contain it).
fn percent_decode(s: &str) -> Option<String> {
    if !s.contains('%') {
        return Some(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hi = (hex[0] as char).to_digit(16)?;
            let lo = (hex[1] as char).to_digit(16)?;
            out.push((hi * 16 + lo) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// One HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Whether to close the connection after this response.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A binary response carrying raw store-encoded bytes.
    pub fn binary(status: u16, body: Vec<u8>) -> Self {
        Response {
            status,
            content_type: "application/octet-stream",
            body,
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A structured JSON error body: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!("{{\"error\":\"{}\"}}", dvs_obs::json::json_escape(message)),
        )
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// Marks the connection for close after this response.
    #[must_use]
    pub fn with_close(mut self) -> Self {
        self.close = true;
        self
    }

    /// The standard reason phrase for the handful of codes we emit.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the full response (status line, headers, body).
    pub fn to_wire(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            Response::reason(self.status),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_escapes_and_rejects_junk() {
        assert_eq!(
            percent_decode("/v1/results").as_deref(),
            Some("/v1/results")
        );
        assert_eq!(percent_decode("FFW%2BBBR").as_deref(), Some("FFW+BBR"));
        assert_eq!(percent_decode("a%20b").as_deref(), Some("a b"));
        // '+' stays literal so `scheme=FFW+BBR` works unescaped.
        assert_eq!(percent_decode("FFW+BBR").as_deref(), Some("FFW+BBR"));
        assert!(percent_decode("%zz").is_none());
        assert!(percent_decode("%2").is_none());
        assert!(percent_decode("%ff").is_none()); // invalid UTF-8
    }

    #[test]
    fn response_serialization_is_well_formed() {
        let r = Response::json(429, "{\"error\":\"queue full\"}".to_string())
            .with_header("Retry-After", "1".to_string());
        let bytes = r.to_wire();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }

    /// The exact response shape the submit handler returns on a full
    /// queue: `Response::error(429, …).with_header("Retry-After", …)`.
    /// The header must serialize and the structured body must survive a
    /// round-trip through the hardened JSON parser.
    #[test]
    fn queue_full_error_response_parses_under_hardened_json() {
        let r = Response::error(429, "campaign queue is full")
            .with_header("Retry-After", "1".to_string());
        let text = String::from_utf8(r.to_wire()).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        let body = text.split("\r\n\r\n").nth(1).expect("body present");
        let parsed = dvs_obs::json::Value::parse(body).expect("error body is valid JSON");
        assert_eq!(
            parsed.get("error").and_then(|v| v.as_str()),
            Some("campaign queue is full"),
            "{body}"
        );
    }

    #[test]
    fn terminator_search_finds_header_end() {
        assert_eq!(find_terminator(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_terminator(b"partial\r\n"), None);
    }
}
