//! Accept loop, HTTP worker pool, routing, and graceful shutdown.
//!
//! The accept thread pushes connections onto a shared queue drained by
//! `http_threads` workers; a connection cap turns excess peers away
//! with `503` before they consume a worker. Shutdown is graceful by
//! construction: `POST /v1/admin/shutdown` answers first, then stops
//! the accept loop, lets the workers finish their current requests,
//! drains the job queue (in-flight trials stop at the next boundary,
//! completed cells stay persisted), and [`Server::run`] returns `Ok`.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use dvs_cluster::coordinator::CellOutcome;
use dvs_cluster::proto::{cell_payload_from_hex, cell_payload_to_hex, cell_to_json, UnitRef};
use dvs_cluster::{Coordinator, WireConfig};
use dvs_obs::json::Value;
use dvs_obs::{MetricsRegistry, Recorder};
use dvs_sram::MilliVolts;

use crate::api::{self, CampaignSpec};
use crate::http::{HttpConn, Request, RequestError, Response, DEFAULT_MAX_BODY_BYTES};
use crate::jobs::{JobManager, SubmitError};

/// How the HTTP front end is sized.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// HTTP worker threads. A worker serves one connection until the
    /// peer closes it, so this also bounds the number of keep-alive
    /// connections served concurrently.
    pub http_threads: usize,
    /// Connections admitted at once (queued + being served); excess
    /// peers get an immediate `503`.
    pub max_conns: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Request-body size limit.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            http_threads: 4,
            max_conns: 256,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    cv: Condvar,
    jobs: JobManager,
    registry: Arc<MetricsRegistry>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    /// Connections admitted and not yet finished (queued + in service).
    conns: AtomicUsize,
    /// The bound address, for the shutdown self-connect.
    local_addr: SocketAddr,
    /// Cluster coordinator state, when this node coordinates a fleet.
    /// Campaign routes divert to it and the `/v1/cluster/*` endpoints
    /// come alive.
    cluster: OnceLock<Arc<Coordinator>>,
    /// Reported by `/v1/healthz` (`single`, `coordinator` or `worker`).
    role: OnceLock<&'static str>,
    /// Process start, for the health uptime.
    started: Instant,
}

/// A bound-but-not-yet-running campaign server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port) over an already
    /// started [`JobManager`].
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
        jobs: JobManager,
        registry: Arc<MetricsRegistry>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                jobs,
                registry,
                cfg,
                shutdown: AtomicBool::new(false),
                conns: AtomicUsize::new(0),
                local_addr,
                cluster: OnceLock::new(),
                role: OnceLock::new(),
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Turns this node into a cluster coordinator: campaign submissions
    /// shard into leased work units instead of running locally, and the
    /// `/v1/cluster/*` worker endpoints come alive. Call before
    /// [`Server::run`].
    pub fn enable_coordinator(&self, coordinator: Arc<Coordinator>) {
        let _ = self.shared.cluster.set(coordinator);
        let _ = self.shared.role.set("coordinator");
    }

    /// Sets the role string `/v1/healthz` reports (first call wins;
    /// defaults to `"single"`).
    pub fn set_role(&self, role: &'static str) {
        let _ = self.shared.role.set(role);
    }

    /// Serves until a shutdown request arrives, then drains gracefully:
    /// workers finish their in-flight requests, the job queue drains
    /// (running campaigns stop at the next trial boundary with their
    /// completed cells persisted), and the call returns `Ok`.
    ///
    /// # Errors
    ///
    /// Returns accept-loop transport errors.
    pub fn run(self) -> std::io::Result<()> {
        let workers: Vec<_> = (0..self.shared.cfg.http_threads.max(1))
            .map(|i| {
                let shared = self.shared.clone();
                std::thread::Builder::new()
                    .name(format!("dvs-http-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn http worker")
            })
            .collect();

        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let admitted = self.shared.conns.load(Ordering::Acquire) < self.shared.cfg.max_conns;
            if !admitted {
                self.shared.registry.add("serve.conns.rejected", 1);
                // Best-effort refusal; the peer may already be gone.
                let mut s = stream;
                let _ = s.set_write_timeout(Some(self.shared.cfg.write_timeout));
                let _ = s.write_all(
                    &Response::error(503, "connection limit reached")
                        .with_close()
                        .to_wire(),
                );
                continue;
            }
            let _ = stream.set_read_timeout(Some(self.shared.cfg.read_timeout));
            let _ = stream.set_write_timeout(Some(self.shared.cfg.write_timeout));
            self.shared.registry.add("serve.conns.accepted", 1);
            self.shared.conns.fetch_add(1, Ordering::AcqRel);
            {
                let mut q = self.shared.queue.lock().unwrap();
                q.push_back(stream);
                self.shared.registry.gauge(
                    "serve.conns.active",
                    self.shared.conns.load(Ordering::Acquire) as u64,
                );
            }
            self.shared.cv.notify_one();
        }

        // Drain: wake every worker, let them finish queued connections.
        self.shared.cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
        self.shared.jobs.drain();
        self.shared.jobs.join();
        Ok(())
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    break s;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared.cv.wait(q).unwrap();
            }
        };
        serve_connection(shared, stream);
        shared.conns.fetch_sub(1, Ordering::AcqRel);
        shared.registry.gauge(
            "serve.conns.active",
            shared.conns.load(Ordering::Acquire) as u64,
        );
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let mut conn = HttpConn::new(stream, shared.cfg.max_body_bytes);
    loop {
        let request = match conn.read_request() {
            Ok(r) => r,
            Err(RequestError::Closed) => return,
            Err(RequestError::Timeout) => {
                let _ =
                    conn.write_response(&Response::error(408, "request timed out").with_close());
                return;
            }
            Err(RequestError::HeadersTooLarge) => {
                let _ = conn.write_response(
                    &Response::error(431, "request headers too large").with_close(),
                );
                return;
            }
            Err(RequestError::BodyTooLarge { limit }) => {
                let _ = conn.write_response(
                    &Response::error(413, &format!("request body exceeds {limit} bytes"))
                        .with_close(),
                );
                return;
            }
            Err(RequestError::Malformed(why)) => {
                let _ = conn.write_response(&Response::error(400, &why).with_close());
                return;
            }
            Err(RequestError::Io(_)) => return,
        };

        shared.registry.add("serve.requests", 1);
        shared
            .registry
            .add("serve.bytes.read", request.wire_bytes as u64);
        let started = Instant::now();
        let mut response = route(shared, &request);
        shared.registry.duration(
            "serve.request_nanos",
            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        shared.registry.add(
            match response.status / 100 {
                2 => "serve.responses.2xx",
                4 => "serve.responses.4xx",
                _ => "serve.responses.5xx",
            },
            1,
        );
        // Once a drain has begun, keep-alive peers are answered and then
        // disconnected, so captive connections cannot stall shutdown.
        if !request.keep_alive || shared.shutdown.load(Ordering::Acquire) {
            response.close = true;
        }
        let close = response.close;
        match conn.write_response(&response) {
            Ok(n) => shared.registry.add("serve.bytes.written", n as u64),
            Err(_) => return,
        }
        if close {
            return;
        }
    }
}

fn route(shared: &Arc<Shared>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/healthz") => healthz(shared),
        ("POST", "/v1/campaigns") => submit_campaign(shared, req),
        ("GET", "/v1/campaigns") => match shared.cluster.get() {
            Some(c) => Response::json(200, cluster_list_json(c)),
            None => Response::json(200, shared.jobs.list_json()),
        },
        ("GET", path) if path.starts_with("/v1/campaigns/") => {
            let id = &path["/v1/campaigns/".len()..];
            let body = id
                .parse::<u64>()
                .ok()
                .and_then(|id| match shared.cluster.get() {
                    Some(c) => cluster_status_json(c, id),
                    None => shared.jobs.status_json(id),
                });
            match body {
                Some(body) => Response::json(200, body),
                None => Response::error(404, &format!("no campaign {id:?}")),
            }
        }
        (method, path) if path.starts_with("/v1/cluster/") => match shared.cluster.get() {
            Some(c) => cluster_route(c, method, path, req),
            None => Response::error(404, "this node is not a cluster coordinator"),
        },
        ("GET", "/v1/results") => store_query(shared, req),
        ("GET", "/v1/metrics") => {
            let snapshot = shared.registry.snapshot();
            if req.query_param("format") == Some("json") {
                Response::json(200, snapshot.to_json(true))
            } else {
                Response::text(200, snapshot.to_text())
            }
        }
        ("POST", "/v1/admin/shutdown") => begin_shutdown(shared),
        (
            _,
            "/v1/healthz" | "/v1/campaigns" | "/v1/results" | "/v1/metrics" | "/v1/admin/shutdown",
        ) => Response::error(405, &format!("method {} not allowed here", req.method)),
        _ => Response::error(404, &format!("no route {}", req.path)),
    }
}

fn submit_campaign(shared: &Arc<Shared>, req: &Request) -> Response {
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => return Response::error(400, "request body is not UTF-8"),
    };
    let spec = match CampaignSpec::from_json(body) {
        Ok(s) => s,
        Err(e) => return Response::error(400, &e),
    };
    if let Some(c) = shared.cluster.get() {
        if shared.jobs.draining() {
            return Response::error(503, "server is draining and refuses new campaigns");
        }
        let cfg = spec.config(shared.jobs.base());
        let id = c.submit(WireConfig::of(&cfg), &spec.plan(), Instant::now());
        return Response::json(
            202,
            format!("{{\"id\":{id},\"state\":\"queued\",\"poll\":\"/v1/campaigns/{id}\"}}"),
        );
    }
    match shared.jobs.submit(spec) {
        Ok(id) => Response::json(
            202,
            format!("{{\"id\":{id},\"state\":\"queued\",\"poll\":\"/v1/campaigns/{id}\"}}"),
        ),
        Err(SubmitError::QueueFull) => Response::error(429, "campaign queue is full")
            .with_header("Retry-After", "1".to_string()),
        Err(SubmitError::Draining) => {
            Response::error(503, "server is draining and refuses new campaigns")
        }
    }
}

fn store_query(shared: &Arc<Shared>, req: &Request) -> Response {
    let benchmark = match req.query_param("benchmark").map(api::parse_benchmark) {
        Some(Some(b)) => b,
        Some(None) => return Response::error(400, "unknown benchmark"),
        None => return Response::error(400, "missing query parameter \"benchmark\""),
    };
    let scheme = match req.query_param("scheme").map(api::parse_scheme) {
        Some(Some(s)) => s,
        Some(None) => return Response::error(400, "unknown scheme"),
        None => return Response::error(400, "missing query parameter \"scheme\""),
    };
    let vcc = match req.query_param("vcc_mv").map(str::parse::<u32>) {
        Some(Ok(mv)) => MilliVolts::new(mv),
        Some(Err(_)) => return Response::error(400, "\"vcc_mv\" must be an integer"),
        None => return Response::error(400, "missing query parameter \"vcc_mv\""),
    };
    let mut maps = None;
    let mut trace_instrs = None;
    let mut seed = None;
    for (param, name) in [(&mut maps, "maps"), (&mut seed, "seed")] {
        if let Some(raw) = req.query_param(name) {
            match raw.parse::<u64>() {
                Ok(v) => *param = Some(v),
                Err(_) => return Response::error(400, &format!("{name:?} must be an integer")),
            }
        }
    }
    if let Some(raw) = req.query_param("trace_instrs") {
        match raw.parse::<usize>() {
            Ok(v) => trace_instrs = Some(v),
            Err(_) => return Response::error(400, "\"trace_instrs\" must be an integer"),
        }
    }
    // `Accept: application/octet-stream` selects the cell's canonical
    // binary store encoding; anything else gets the JSON rendering.
    let wants_binary = req
        .header("accept")
        .is_some_and(|v| v.contains("application/octet-stream"));
    if wants_binary {
        return match shared
            .jobs
            .store_lookup_bytes(benchmark, scheme, vcc, maps, trace_instrs, seed)
        {
            Some(bytes) => Response::binary(200, bytes),
            None => Response::error(404, "no stored result for this cell at these settings"),
        };
    }
    match shared
        .jobs
        .store_lookup(benchmark, scheme, vcc, maps, trace_instrs, seed)
    {
        Some(body) => Response::json(200, body),
        None => Response::error(404, "no stored result for this cell at these settings"),
    }
}

fn healthz(shared: &Arc<Shared>) -> Response {
    let role = shared.role.get().copied().unwrap_or("single");
    let queue_depth =
        shared.jobs.queue_depth() + shared.cluster.get().map_or(0, |c| c.pending_units());
    let uptime_ms = u64::try_from(shared.started.elapsed().as_millis()).unwrap_or(u64::MAX);
    Response::json(
        200,
        api::healthz_json(
            env!("CARGO_PKG_VERSION"),
            role,
            uptime_ms,
            queue_depth,
            shared.jobs.draining(),
        ),
    )
}

/// Renders a cluster campaign's status in the same shape as the local
/// job table: the `"results"` array (present once every cell is
/// terminal) is byte-comparable to a single-node run of the same spec.
fn cluster_status_json(c: &Arc<Coordinator>, id: u64) -> Option<String> {
    let p = c.progress(id, Instant::now())?;
    let state = if !p.done {
        "running"
    } else if p.completed > 0 {
        "complete"
    } else {
        "failed"
    };
    let mut out = format!(
        "{{\"id\":{id},\"state\":\"{state}\",\"cells_total\":{},\"cells_done\":{},\
         \"cells_failed\":{}",
        p.total,
        p.completed + p.failed,
        p.failed,
    );
    if p.done {
        out.push_str(",\"results\":[");
        for (i, (key, outcome)) in p.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match outcome {
                CellOutcome::Completed(cell) => out.push_str(&api::cell_json(
                    key,
                    &api::stored_cell_result(key, cell.clone()),
                )),
                CellOutcome::Failed(e) => out.push_str(&api::cell_error_json(key, e)),
                CellOutcome::Pending => {
                    unreachable!("done campaign has no pending cells")
                }
            }
        }
        out.push(']');
    }
    out.push('}');
    Some(out)
}

fn cluster_list_json(c: &Arc<Coordinator>) -> String {
    let now = Instant::now();
    let mut out = String::from("[");
    for (i, id) in c.campaign_ids().into_iter().enumerate() {
        let Some(p) = c.progress(id, now) else {
            continue;
        };
        if i > 0 {
            out.push(',');
        }
        let state = if !p.done {
            "running"
        } else if p.completed > 0 {
            "complete"
        } else {
            "failed"
        };
        out.push_str(&format!(
            "{{\"id\":{id},\"state\":\"{state}\",\"cells_total\":{},\"cells_done\":{}}}",
            p.total,
            p.completed + p.failed,
        ));
    }
    out.push(']');
    out
}

/// Extracts a non-negative integer field from a parsed JSON body.
fn body_u64(v: &Value, key: &str) -> Result<u64, Response> {
    v.get(key)
        .and_then(Value::as_f64)
        .filter(|f| f.fract() == 0.0 && *f >= 0.0)
        .map(|f| f as u64)
        .ok_or_else(|| Response::error(400, &format!("field {key:?} must be an integer")))
}

/// The worker-facing endpoints of a coordinator node. All bodies are
/// JSON; a stale worker id answers `410 Gone` so the worker rejoins.
fn cluster_route(c: &Arc<Coordinator>, method: &str, path: &str, req: &Request) -> Response {
    let now = Instant::now();
    let parse_body = || -> Result<Value, Response> {
        std::str::from_utf8(&req.body)
            .map_err(|_| Response::error(400, "request body is not UTF-8"))
            .and_then(|b| {
                Value::parse(b).map_err(|e| Response::error(400, &format!("invalid JSON: {e}")))
            })
    };
    match (method, path) {
        ("POST", "/v1/cluster/join") => {
            let v = match parse_body() {
                Ok(v) => v,
                Err(r) => return r,
            };
            let name = v.get("name").and_then(Value::as_str).unwrap_or("unnamed");
            let id = c.join(name, now);
            Response::json(200, format!("{{\"worker\":{id}}}"))
        }
        ("POST", "/v1/cluster/heartbeat") => {
            let v = match parse_body() {
                Ok(v) => v,
                Err(r) => return r,
            };
            let worker = match body_u64(&v, "worker") {
                Ok(w) => w,
                Err(r) => return r,
            };
            match c.heartbeat(worker, now) {
                Ok(()) => Response::json(200, "{\"ok\":true}".into()),
                Err(e) => Response::error(410, &e),
            }
        }
        ("POST", "/v1/cluster/lease") => {
            let v = match parse_body() {
                Ok(v) => v,
                Err(r) => return r,
            };
            let worker = match body_u64(&v, "worker") {
                Ok(w) => w,
                Err(r) => return r,
            };
            let max_units = body_u64(&v, "max_units").unwrap_or(1) as usize;
            match c.lease(worker, max_units, now) {
                Ok(grants) => {
                    let mut out = String::from("{\"units\":[");
                    for (i, g) in grants.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!(
                            "{{\"campaign\":{},\"index\":{},\"stolen\":{},\"cell\":{},\
                             \"config\":{}}}",
                            g.unit.campaign,
                            g.unit.index,
                            g.stolen,
                            cell_to_json(&g.key),
                            g.wire.to_json(),
                        ));
                    }
                    out.push_str("]}");
                    Response::json(200, out)
                }
                Err(e) => Response::error(410, &e),
            }
        }
        ("POST", "/v1/cluster/complete") => {
            let v = match parse_body() {
                Ok(v) => v,
                Err(r) => return r,
            };
            let (worker, campaign, index) = match (
                body_u64(&v, "worker"),
                body_u64(&v, "campaign"),
                body_u64(&v, "index"),
            ) {
                (Ok(w), Ok(cmp), Ok(i)) => (w, cmp, i as usize),
                (Err(r), _, _) | (_, Err(r), _) | (_, _, Err(r)) => return r,
            };
            let Some(cell) = v
                .get("payload")
                .and_then(Value::as_str)
                .and_then(cell_payload_from_hex)
            else {
                return Response::error(400, "field \"payload\" must be a valid cell image");
            };
            match c.complete(worker, UnitRef { campaign, index }, &cell, now) {
                Ok(()) => Response::json(200, "{\"ok\":true}".into()),
                Err(e) => Response::error(404, &e),
            }
        }
        ("POST", "/v1/cluster/fail") => {
            let v = match parse_body() {
                Ok(v) => v,
                Err(r) => return r,
            };
            let (worker, campaign, index) = match (
                body_u64(&v, "worker"),
                body_u64(&v, "campaign"),
                body_u64(&v, "index"),
            ) {
                (Ok(w), Ok(cmp), Ok(i)) => (w, cmp, i as usize),
                (Err(r), _, _) | (_, Err(r), _) | (_, _, Err(r)) => return r,
            };
            let error = v.get("error").and_then(Value::as_str).unwrap_or("unknown");
            match c.fail(worker, UnitRef { campaign, index }, error, now) {
                Ok(()) => Response::json(200, "{\"ok\":true}".into()),
                Err(e) => Response::error(404, &e),
            }
        }
        ("GET", "/v1/cluster/sync") => {
            let after = req
                .query_param("after")
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0);
            let limit = req
                .query_param("limit")
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(64)
                .clamp(1, 256);
            let (entries, latest) = c.sync_since(after, limit);
            let mut out = format!("{{\"latest\":{latest},\"entries\":[");
            for (i, e) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"seq\":{},\"config\":{},\"cell\":{},\"payload\":\"{}\"}}",
                    e.seq,
                    e.wire.to_json(),
                    cell_to_json(&e.key),
                    cell_payload_to_hex(&e.cell),
                ));
            }
            out.push_str("]}");
            Response::json(200, out)
        }
        ("GET", "/v1/cluster/workers") => {
            let mut out = String::from("[");
            for (i, w) in c.workers(now).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"id\":{},\"name\":\"{}\",\"alive\":{},\"units_done\":{}}}",
                    w.id,
                    dvs_obs::json::json_escape(&w.name),
                    w.alive,
                    w.units_done,
                ));
            }
            out.push(']');
            Response::json(200, out)
        }
        _ => Response::error(404, &format!("no cluster route {method} {path}")),
    }
}

fn begin_shutdown(shared: &Arc<Shared>) -> Response {
    shared.registry.add("serve.shutdowns", 1);
    shared.shutdown.store(true, Ordering::Release);
    shared.cv.notify_all();
    // The accept loop is blocked in accept(); a throwaway connection to
    // ourselves unblocks it so run() can join and drain. The worker that
    // picks the connection up sees EOF and drops it.
    let _ = TcpStream::connect_timeout(&shared.local_addr, Duration::from_secs(1));
    Response::json(200, "{\"draining\":true}".into()).with_close()
}
