//! The bounded campaign queue and its executor threads.
//!
//! Campaigns move `queued → running → complete | cancelled | failed`.
//! The queue is bounded: when `queue_depth` campaigns are already
//! waiting, [`JobManager::submit`] refuses with
//! [`SubmitError::QueueFull`], which the HTTP layer maps to
//! `429 Too Many Requests` + `Retry-After`. Executors run each campaign
//! through a fresh [`Evaluator`] sharing the server's [`ResultStore`]
//! and [`MetricsRegistry`]; a drain cancels the shared
//! [`CancelToken`], so in-flight campaigns stop at the next trial
//! boundary with their completed cells persisted.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use dvs_core::{CancelToken, EvalConfig, EvalError, Evaluator, ResultStore, StoreKey};
use dvs_cpu::CoreConfig;
use dvs_obs::{MetricsRegistry, Recorder};
use dvs_sram::{CacheGeometry, MilliVolts};
use dvs_workloads::Benchmark;

use crate::api::{self, CampaignSpec};

/// How the job layer is sized.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Campaigns that may wait in the queue (excluding running ones).
    pub queue_depth: usize,
    /// Concurrent campaign executor threads.
    pub executors: usize,
    /// Engine configuration; specs may override `maps`, `trace_instrs`
    /// and `seed`, never the parallelism knobs.
    pub base: EvalConfig,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            queue_depth: 8,
            executors: 1,
            base: EvalConfig::standard(),
        }
    }
}

/// Lifecycle of one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignState {
    /// Waiting in the queue.
    Queued,
    /// An executor is draining its plan.
    Running,
    /// Finished; at least one cell resolved.
    Complete,
    /// Finished under drain; some cells may be missing.
    Cancelled,
    /// Finished, but every cell errored.
    Failed,
}

impl CampaignState {
    /// The wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            CampaignState::Queued => "queued",
            CampaignState::Running => "running",
            CampaignState::Complete => "complete",
            CampaignState::Cancelled => "cancelled",
            CampaignState::Failed => "failed",
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity (→ 429 + `Retry-After`).
    QueueFull,
    /// The server is draining and refuses new work (→ 503).
    Draining,
}

struct Campaign {
    spec: CampaignSpec,
    state: CampaignState,
    cells_total: usize,
    cells_done: usize,
    trials_total: u64,
    trials_computed: u64,
    /// Rendered results array, present once the campaign finishes.
    results: Option<String>,
}

struct State {
    queue: VecDeque<u64>,
    campaigns: BTreeMap<u64, Campaign>,
    next_id: u64,
    draining: bool,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    store: Option<ResultStore>,
    registry: Arc<MetricsRegistry>,
    cfg: JobConfig,
    cancel: CancelToken,
}

/// Owns the campaign table, the bounded queue, and the executors.
pub struct JobManager {
    inner: Arc<Inner>,
    executors: Mutex<Vec<JoinHandle<()>>>,
}

impl JobManager {
    /// Starts `cfg.executors` executor threads over an empty queue.
    pub fn start(
        cfg: JobConfig,
        store: Option<ResultStore>,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                campaigns: BTreeMap::new(),
                next_id: 1,
                draining: false,
            }),
            cv: Condvar::new(),
            store,
            registry,
            cfg,
            cancel: CancelToken::new(),
        });
        let executors = (0..inner.cfg.executors.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("dvs-campaign-{i}"))
                    .spawn(move || executor_loop(&inner))
                    .expect("spawn campaign executor")
            })
            .collect();
        JobManager {
            inner,
            executors: Mutex::new(executors),
        }
    }

    /// Enqueues a campaign; returns its id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Draining`] once shutdown has begun,
    /// [`SubmitError::QueueFull`] when `queue_depth` campaigns wait.
    pub fn submit(&self, spec: CampaignSpec) -> Result<u64, SubmitError> {
        let mut st = self.inner.state.lock().unwrap();
        if st.draining {
            return Err(SubmitError::Draining);
        }
        if st.queue.len() >= self.inner.cfg.queue_depth {
            self.inner.registry.add("serve.rejected", 1);
            return Err(SubmitError::QueueFull);
        }
        let id = st.next_id;
        st.next_id += 1;
        let cfg = spec.config(&self.inner.cfg.base);
        let plan = spec.plan();
        st.campaigns.insert(
            id,
            Campaign {
                spec,
                state: CampaignState::Queued,
                cells_total: plan.len(),
                cells_done: 0,
                trials_total: plan.total_trials(&cfg),
                trials_computed: 0,
                results: None,
            },
        );
        st.queue.push_back(id);
        self.inner.registry.add("serve.campaigns.submitted", 1);
        self.inner
            .registry
            .gauge("serve.queue.depth", st.queue.len() as u64);
        drop(st);
        self.inner.cv.notify_all();
        Ok(id)
    }

    /// Renders one campaign's status (with results once finished), or
    /// `None` for an unknown id.
    pub fn status_json(&self, id: u64) -> Option<String> {
        let st = self.inner.state.lock().unwrap();
        let c = st.campaigns.get(&id)?;
        let mut out = format!(
            "{{\"id\":{id},\"state\":\"{}\",\"cells_total\":{},\"cells_done\":{},\
             \"trials_total\":{},\"trials_computed\":{}",
            c.state.name(),
            c.cells_total,
            c.cells_done,
            c.trials_total,
            c.trials_computed,
        );
        if let Some(results) = &c.results {
            out.push_str(",\"results\":");
            out.push_str(results);
        }
        out.push('}');
        Some(out)
    }

    /// Renders the campaign table (without result bodies).
    pub fn list_json(&self) -> String {
        let st = self.inner.state.lock().unwrap();
        let mut out = String::from("[");
        for (i, (id, c)) in st.campaigns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{id},\"state\":\"{}\",\"cells_total\":{},\"cells_done\":{}}}",
                c.state.name(),
                c.cells_total,
                c.cells_done,
            ));
        }
        out.push(']');
        out
    }

    /// Answers a point query straight from the attached store — no
    /// recomputation ever happens on this path. `None` means either no
    /// store is attached or the cell has never been computed at these
    /// settings.
    pub fn store_lookup(
        &self,
        benchmark: Benchmark,
        scheme: dvs_core::Scheme,
        vcc: MilliVolts,
        maps: Option<u64>,
        trace_instrs: Option<usize>,
        seed: Option<u64>,
    ) -> Option<String> {
        let (key, stored) = self.store_cell(benchmark, scheme, vcc, maps, trace_instrs, seed)?;
        Some(api::cell_json(&key, &api::stored_cell_result(&key, stored)))
    }

    /// The same point query, but returning the cell's canonical binary
    /// store encoding ([`dvs_core::StoredCell::to_bytes`]) instead of
    /// rendered JSON — for clients that want the exact persisted image.
    pub fn store_lookup_bytes(
        &self,
        benchmark: Benchmark,
        scheme: dvs_core::Scheme,
        vcc: MilliVolts,
        maps: Option<u64>,
        trace_instrs: Option<usize>,
        seed: Option<u64>,
    ) -> Option<Vec<u8>> {
        let (_, stored) = self.store_cell(benchmark, scheme, vcc, maps, trace_instrs, seed)?;
        Some(stored.to_bytes())
    }

    fn store_cell(
        &self,
        benchmark: Benchmark,
        scheme: dvs_core::Scheme,
        vcc: MilliVolts,
        maps: Option<u64>,
        trace_instrs: Option<usize>,
        seed: Option<u64>,
    ) -> Option<(dvs_core::CellKey, dvs_core::StoredCell)> {
        let store = self.inner.store.as_ref()?;
        let base = &self.inner.cfg.base;
        let cfg = EvalConfig {
            maps: maps.unwrap_or(base.maps),
            trace_instrs: trace_instrs.unwrap_or(base.trace_instrs),
            seed: seed.unwrap_or(base.seed),
            ..*base
        };
        let key = dvs_core::CellKey::new(benchmark, scheme, vcc);
        let stored = store.load(&StoreKey::for_cell(
            &cfg,
            &CoreConfig::dsn2016(),
            &CacheGeometry::dsn_l1(),
            &key,
        ))?;
        Some((key, stored))
    }

    /// Campaigns currently waiting in the queue (excluding running).
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// The engine base configuration submissions are resolved against.
    pub fn base(&self) -> &EvalConfig {
        &self.inner.cfg.base
    }

    /// Whether a drain has begun.
    pub fn draining(&self) -> bool {
        self.inner.state.lock().unwrap().draining
    }

    /// Begins a graceful drain: refuse new submissions, cancel the
    /// shared token so running campaigns stop at the next trial
    /// boundary (completed cells are still persisted), and mark every
    /// still-queued campaign cancelled.
    pub fn drain(&self) {
        let mut st = self.inner.state.lock().unwrap();
        if st.draining {
            return;
        }
        st.draining = true;
        self.inner.cancel.cancel();
        while let Some(id) = st.queue.pop_front() {
            if let Some(c) = st.campaigns.get_mut(&id) {
                c.state = CampaignState::Cancelled;
                c.results = Some("[]".to_string());
                self.inner.registry.add("serve.campaigns.cancelled", 1);
            }
        }
        self.inner.registry.gauge("serve.queue.depth", 0);
        drop(st);
        self.inner.cv.notify_all();
    }

    /// Waits for every executor to finish its in-flight campaign and
    /// exit. Call after [`JobManager::drain`].
    pub fn join(&self) {
        let handles: Vec<_> = self.executors.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn executor_loop(inner: &Arc<Inner>) {
    loop {
        let (id, spec) = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if let Some(id) = st.queue.pop_front() {
                    inner
                        .registry
                        .gauge("serve.queue.depth", st.queue.len() as u64);
                    let c = st.campaigns.get_mut(&id).expect("queued campaign exists");
                    c.state = CampaignState::Running;
                    break (id, c.spec.clone());
                }
                if st.draining {
                    return;
                }
                st = inner.cv.wait(st).unwrap();
            }
        };
        run_campaign(inner, id, &spec);
    }
}

fn run_campaign(inner: &Arc<Inner>, id: u64, spec: &CampaignSpec) {
    let recorder: Arc<dyn Recorder> = inner.registry.clone();
    let mut evaluator = Evaluator::new(spec.config(&inner.cfg.base))
        .with_recorder(recorder)
        .with_cancel_token(inner.cancel.clone());
    if let Some(store) = &inner.store {
        evaluator = evaluator.with_store(store.clone());
    }
    let progress_inner = inner.clone();
    evaluator.set_progress(move |p| {
        let mut st = progress_inner.state.lock().unwrap();
        if let Some(c) = st.campaigns.get_mut(&id) {
            c.cells_done = p.cells_done;
            c.trials_computed += p.trials_computed;
        }
    });

    let results = evaluator.run_plan(&spec.plan());
    let cancelled = results
        .iter()
        .any(|(_, r)| matches!(r, Err(EvalError::Cancelled { .. })));
    let all_errored = results.iter().all(|(_, r)| r.is_err());
    let rendered = api::results_json(&results);

    let mut st = inner.state.lock().unwrap();
    if let Some(c) = st.campaigns.get_mut(&id) {
        c.results = Some(rendered);
        c.state = if cancelled {
            inner.registry.add("serve.campaigns.cancelled", 1);
            CampaignState::Cancelled
        } else if all_errored {
            inner.registry.add("serve.campaigns.failed", 1);
            CampaignState::Failed
        } else {
            inner.registry.add("serve.campaigns.completed", 1);
            CampaignState::Complete
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> JobConfig {
        JobConfig {
            queue_depth: 2,
            executors: 1,
            base: EvalConfig {
                trace_instrs: 2_000,
                maps: 1,
                threads: 1,
                validate_images: false,
                ..EvalConfig::quick()
            },
        }
    }

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::from_json(
            r#"{"benchmarks":["crc32"],"schemes":["defect-free"],"voltages_mv":[760]}"#,
        )
        .unwrap()
    }

    #[test]
    fn campaign_runs_to_completion_with_progress() {
        let jobs = JobManager::start(quick_base(), None, Arc::new(MetricsRegistry::new()));
        let id = jobs.submit(tiny_spec()).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        loop {
            let status = jobs.status_json(id).unwrap();
            if status.contains("\"state\":\"complete\"") {
                assert!(status.contains("\"cells_done\":1"), "{status}");
                assert!(status.contains("\"results\":[{"), "{status}");
                assert!(status.contains("\"status\":\"ok\""), "{status}");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "campaign stuck: {status}"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        jobs.drain();
        jobs.join();
    }

    #[test]
    fn bounded_queue_refuses_overflow_and_drain_refuses_everything() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut cfg = quick_base();
        cfg.queue_depth = 1;
        // No executors draining the queue would be ideal; instead use a
        // slow-enough first campaign so the queue stays occupied.
        cfg.executors = 1;
        let jobs = JobManager::start(cfg, None, registry.clone());
        // Fill: one running (eventually) + one queued. Submissions race
        // the executor, so keep submitting until one is refused.
        let mut refused = None;
        for _ in 0..64 {
            match jobs.submit(tiny_spec()) {
                Ok(_) => {}
                Err(e) => {
                    refused = Some(e);
                    break;
                }
            }
        }
        assert_eq!(refused, Some(SubmitError::QueueFull));
        assert!(registry.counter("serve.rejected") >= 1);
        jobs.drain();
        assert_eq!(jobs.submit(tiny_spec()), Err(SubmitError::Draining));
        jobs.join();
        // Every campaign ended in a terminal state.
        let list = jobs.list_json();
        assert!(!list.contains("\"state\":\"queued\""), "{list}");
        assert!(!list.contains("\"state\":\"running\""), "{list}");
    }

    #[test]
    fn unknown_campaign_is_none_and_list_renders() {
        let jobs = JobManager::start(quick_base(), None, Arc::new(MetricsRegistry::new()));
        assert!(jobs.status_json(999).is_none());
        assert_eq!(jobs.list_json(), "[]");
        jobs.drain();
        jobs.join();
    }
}
