//! `dvs-serve` — the campaign server daemon.
//!
//! Binds a TCP listener (port 0 picks an ephemeral port and prints it),
//! starts the campaign executors over a shared result store, and serves
//! the JSON API until `POST /v1/admin/shutdown` drains it. The first
//! stdout line is always `dvs-serve listening on http://ADDR`, flushed
//! before any request is served, so scripts can scrape the bound port.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use dvs_core::ResultStore;
use dvs_obs::MetricsRegistry;
use dvs_serve::jobs::{JobConfig, JobManager};
use dvs_serve::{Server, ServerConfig};

const USAGE: &str = "usage: dvs-serve [options]
  --listen ADDR            bind address (default 127.0.0.1:7570; port 0 = ephemeral)
  --threads N              HTTP worker threads (default 4)
  --executors N            concurrent campaign executors (default 1)
  --engine-threads N       worker threads per campaign (default: EvalConfig::standard)
  --max-parallel-trials N  process-wide cap on concurrently executing trials
  --queue-depth N          campaigns that may wait in the queue (default 8)
  --max-conns N            connections admitted at once (default 256)
  --store DIR              result-store directory (default: the store's default dir)
  --no-store               run without a persistent store
  --maps N                 default fault maps per cell
  --trace-instrs N         default dynamic instructions per trial
  --seed N                 default root seed
  --timeout-ms N           per-connection read/write timeout (default 10000)
  -h, --help               this text";

struct Options {
    listen: String,
    server: ServerConfig,
    jobs: JobConfig,
    store_dir: Option<String>,
    no_store: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            listen: "127.0.0.1:7570".to_string(),
            server: ServerConfig::default(),
            jobs: JobConfig::default(),
            store_dir: None,
            no_store: false,
        }
    }
}

fn parse(mut args: impl Iterator<Item = String>) -> Result<Option<Options>, String> {
    let mut opts = Options::default();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        let int = |flag: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| format!("{flag} expects an integer"))
        };
        match arg.as_str() {
            "--listen" => opts.listen = value("--listen")?,
            "--threads" => {
                opts.server.http_threads = int("--threads", value("--threads")?)? as usize;
            }
            "--executors" => {
                opts.jobs.executors = int("--executors", value("--executors")?)? as usize;
            }
            "--engine-threads" => {
                opts.jobs.base.threads =
                    int("--engine-threads", value("--engine-threads")?)? as usize;
            }
            "--max-parallel-trials" => {
                opts.jobs.base.max_parallel_trials =
                    Some(int("--max-parallel-trials", value("--max-parallel-trials")?)? as usize);
            }
            "--queue-depth" => {
                opts.jobs.queue_depth = int("--queue-depth", value("--queue-depth")?)? as usize;
            }
            "--max-conns" => {
                opts.server.max_conns = int("--max-conns", value("--max-conns")?)? as usize;
            }
            "--store" => opts.store_dir = Some(value("--store")?),
            "--no-store" => opts.no_store = true,
            "--maps" => opts.jobs.base.maps = int("--maps", value("--maps")?)?,
            "--trace-instrs" => {
                opts.jobs.base.trace_instrs =
                    int("--trace-instrs", value("--trace-instrs")?)? as usize;
            }
            "--seed" => opts.jobs.base.seed = int("--seed", value("--seed")?)?,
            "--timeout-ms" => {
                let ms = int("--timeout-ms", value("--timeout-ms")?)?;
                opts.server.read_timeout = Duration::from_millis(ms);
                opts.server.write_timeout = Duration::from_millis(ms);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(Some(opts))
}

fn run(opts: Options) -> Result<(), String> {
    let store = if opts.no_store {
        None
    } else {
        let store = match &opts.store_dir {
            Some(dir) => ResultStore::open(dir),
            None => ResultStore::open_default(),
        }
        .map_err(|e| format!("cannot open result store: {e}"))?;
        Some(store)
    };

    let registry = Arc::new(MetricsRegistry::new());
    let jobs = JobManager::start(opts.jobs, store, registry.clone());
    let server = Server::bind(opts.listen.as_str(), opts.server, jobs, registry)
        .map_err(|e| format!("cannot bind {}: {e}", opts.listen))?;

    println!("dvs-serve listening on http://{}", server.local_addr());
    std::io::stdout().flush().ok();

    server.run().map_err(|e| format!("server error: {e}"))?;
    println!("dvs-serve drained and stopped");
    Ok(())
}

fn main() -> ExitCode {
    match parse(std::env::args().skip(1)) {
        Ok(Some(opts)) => match run(opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("dvs-serve: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dvs-serve: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
