//! `dvs-serve` — the campaign server daemon.
//!
//! Binds a TCP listener (port 0 picks an ephemeral port and prints it),
//! starts the campaign executors over a shared result store, and serves
//! the JSON API until `POST /v1/admin/shutdown` drains it. The first
//! stdout line is always `dvs-serve listening on http://ADDR`, flushed
//! before any request is served, so scripts can scrape the bound port.
//!
//! Cluster roles: `--cluster` turns the node into a coordinator
//! (campaigns shard into leased work units for joined workers);
//! `--join ADDR` runs the worker loop against a coordinator while still
//! serving the local API (so any node answers `/v1/results` once its
//! store has synced).

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use dvs_cluster::{spawn_worker, ClusterConfig, Coordinator, WorkerConfig};
use dvs_core::ResultStore;
use dvs_obs::MetricsRegistry;
use dvs_serve::jobs::{JobConfig, JobManager};
use dvs_serve::{Server, ServerConfig};

const USAGE: &str = "usage: dvs-serve [options]
  --listen ADDR            bind address (default 127.0.0.1:7570; port 0 = ephemeral)
  --threads N              HTTP worker threads (default 4)
  --executors N            concurrent campaign executors (default 1)
  --engine-threads N       worker threads per campaign (default: EvalConfig::standard)
  --max-parallel-trials N  process-wide cap on concurrently executing trials
  --queue-depth N          campaigns that may wait in the queue (default 8)
  --max-conns N            connections admitted at once (default 256)
  --store DIR              result-store directory (default: the store's default dir)
  --store-max-bytes N      cap the store's on-disk size; coldest cells evict first
  --no-store               run without a persistent store
  --maps N                 default fault maps per cell
  --trace-instrs N         default dynamic instructions per trial
  --seed N                 default root seed
  --timeout-ms N           per-connection read/write timeout (default 10000)
cluster mode:
  --cluster                coordinate a worker fleet (campaigns shard into cells)
  --join ADDR              run as a worker of the coordinator at ADDR (needs a store)
  --worker-name NAME       name this worker reports (default worker-<pid>)
  --lease-ttl-ms N         coordinator: lease/worker TTL (default 5000)
  --steal-after-ms N       coordinator: duplicate-dispatch threshold (default 3000)
  --retry-backoff-ms N     coordinator: requeue backoff step (default 500)
  --max-attempts N         coordinator: retries before a unit fails (default 5)
  --lease-units N          cells per lease (both roles, default 2)
  --heartbeat-ms N         worker: heartbeat period (default 1000)
  -h, --help               this text";

struct Options {
    listen: String,
    server: ServerConfig,
    jobs: JobConfig,
    store_dir: Option<String>,
    no_store: bool,
    cluster: bool,
    join: Option<String>,
    worker_name: Option<String>,
    cluster_cfg: ClusterConfig,
    heartbeat: Duration,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            listen: "127.0.0.1:7570".to_string(),
            server: ServerConfig::default(),
            jobs: JobConfig::default(),
            store_dir: None,
            no_store: false,
            cluster: false,
            join: None,
            worker_name: None,
            cluster_cfg: ClusterConfig::default(),
            heartbeat: Duration::from_millis(1000),
        }
    }
}

fn parse(mut args: impl Iterator<Item = String>) -> Result<Option<Options>, String> {
    let mut opts = Options::default();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        let int = |flag: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| format!("{flag} expects an integer"))
        };
        match arg.as_str() {
            "--listen" => opts.listen = value("--listen")?,
            "--threads" => {
                opts.server.http_threads = int("--threads", value("--threads")?)? as usize;
            }
            "--executors" => {
                opts.jobs.executors = int("--executors", value("--executors")?)? as usize;
            }
            "--engine-threads" => {
                opts.jobs.base.threads =
                    int("--engine-threads", value("--engine-threads")?)? as usize;
            }
            "--max-parallel-trials" => {
                opts.jobs.base.max_parallel_trials =
                    Some(int("--max-parallel-trials", value("--max-parallel-trials")?)? as usize);
            }
            "--queue-depth" => {
                opts.jobs.queue_depth = int("--queue-depth", value("--queue-depth")?)? as usize;
            }
            "--max-conns" => {
                opts.server.max_conns = int("--max-conns", value("--max-conns")?)? as usize;
            }
            "--store" => opts.store_dir = Some(value("--store")?),
            "--store-max-bytes" => {
                opts.jobs.base.store_max_bytes =
                    Some(int("--store-max-bytes", value("--store-max-bytes")?)?);
            }
            "--no-store" => opts.no_store = true,
            "--maps" => opts.jobs.base.maps = int("--maps", value("--maps")?)?,
            "--trace-instrs" => {
                opts.jobs.base.trace_instrs =
                    int("--trace-instrs", value("--trace-instrs")?)? as usize;
            }
            "--seed" => opts.jobs.base.seed = int("--seed", value("--seed")?)?,
            "--timeout-ms" => {
                let ms = int("--timeout-ms", value("--timeout-ms")?)?;
                opts.server.read_timeout = Duration::from_millis(ms);
                opts.server.write_timeout = Duration::from_millis(ms);
            }
            "--cluster" => opts.cluster = true,
            "--join" => opts.join = Some(value("--join")?),
            "--worker-name" => opts.worker_name = Some(value("--worker-name")?),
            "--lease-ttl-ms" => {
                opts.cluster_cfg.lease_ttl =
                    Duration::from_millis(int("--lease-ttl-ms", value("--lease-ttl-ms")?)?);
            }
            "--steal-after-ms" => {
                opts.cluster_cfg.steal_after =
                    Duration::from_millis(int("--steal-after-ms", value("--steal-after-ms")?)?);
            }
            "--retry-backoff-ms" => {
                opts.cluster_cfg.retry_backoff =
                    Duration::from_millis(int("--retry-backoff-ms", value("--retry-backoff-ms")?)?);
            }
            "--max-attempts" => {
                opts.cluster_cfg.max_attempts =
                    int("--max-attempts", value("--max-attempts")?)? as u32;
            }
            "--lease-units" => {
                opts.cluster_cfg.lease_units =
                    int("--lease-units", value("--lease-units")?)? as usize;
            }
            "--heartbeat-ms" => {
                opts.heartbeat =
                    Duration::from_millis(int("--heartbeat-ms", value("--heartbeat-ms")?)?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if opts.cluster && opts.join.is_some() {
        return Err("--cluster and --join are mutually exclusive".to_string());
    }
    if opts.join.is_some() && opts.no_store {
        return Err("--join needs a result store (drop --no-store)".to_string());
    }
    Ok(Some(opts))
}

fn run(opts: Options) -> Result<(), String> {
    let store = if opts.no_store {
        None
    } else {
        let store = match &opts.store_dir {
            Some(dir) => ResultStore::open(dir),
            None => ResultStore::open_default(),
        }
        .map_err(|e| format!("cannot open result store: {e}"))?;
        // The evaluators also apply the cap via `EvalConfig`, but setting
        // it here bounds the store even before any campaign runs.
        store.set_max_bytes(opts.jobs.base.store_max_bytes);
        Some(store)
    };

    let registry = Arc::new(MetricsRegistry::new());
    let base = opts.jobs.base;
    let jobs = JobManager::start(opts.jobs, store.clone(), registry.clone());
    let server = Server::bind(opts.listen.as_str(), opts.server, jobs, registry.clone())
        .map_err(|e| format!("cannot bind {}: {e}", opts.listen))?;

    if opts.cluster {
        server.enable_coordinator(Arc::new(Coordinator::new(
            opts.cluster_cfg,
            base,
            store.clone(),
            registry.clone(),
        )));
    }
    let worker = match &opts.join {
        Some(coordinator) => {
            server.set_role("worker");
            let mut cfg = WorkerConfig::new(
                coordinator.clone(),
                base,
                store.clone().expect("--join requires a store"),
            );
            if let Some(name) = &opts.worker_name {
                cfg.name = name.clone();
            }
            cfg.lease_units = opts.cluster_cfg.lease_units;
            cfg.heartbeat = opts.heartbeat;
            Some(spawn_worker(cfg, registry))
        }
        None => None,
    };

    println!("dvs-serve listening on http://{}", server.local_addr());
    std::io::stdout().flush().ok();

    let served = server.run().map_err(|e| format!("server error: {e}"));
    if let Some(worker) = worker {
        worker.stop();
        worker.join();
    }
    served?;
    println!("dvs-serve drained and stopped");
    Ok(())
}

fn main() -> ExitCode {
    match parse(std::env::args().skip(1)) {
        Ok(Some(opts)) => match run(opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("dvs-serve: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dvs-serve: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
