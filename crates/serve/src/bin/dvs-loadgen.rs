//! `dvs-loadgen` — closed-loop load generator for `dvs-serve`.
//!
//! Each worker thread holds one keep-alive connection and issues the
//! next request as soon as the previous response is fully read (closed
//! loop: offered load adapts to server latency). Latencies land in a
//! per-thread [`LogHistogram`]; the merged distribution plus error
//! counts print in a stable `key=value` format for scripts. The exit
//! code is non-zero when any transport error or 5xx occurred.
//!
//! A 429 carrying `Retry-After` is admission control, not a failure:
//! the worker sleeps the advertised delay (with multiplicative jitter
//! so a throttled fleet does not reconverge on one instant) and retries
//! the same request, counting it under `throttled` instead of `non2xx`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dvs_obs::LogHistogram;

const USAGE: &str = "usage: dvs-loadgen --addr HOST:PORT [options]
  --addr HOST:PORT   server to load (required)
  --path P           request path (default /v1/healthz)
  --requests N       total requests across all workers (default 1000)
  --concurrency N    worker threads, one connection each (default 4)
  --timeout-ms N     per-connection socket timeout (default 10000)
  -h, --help         this text";

struct Options {
    addr: String,
    path: String,
    requests: u64,
    concurrency: usize,
    timeout: Duration,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: String::new(),
            path: "/v1/healthz".to_string(),
            requests: 1000,
            concurrency: 4,
            timeout: Duration::from_secs(10),
        }
    }
}

fn parse(mut args: impl Iterator<Item = String>) -> Result<Option<Options>, String> {
    let mut opts = Options::default();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--path" => opts.path = value("--path")?,
            "--requests" => {
                opts.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests expects an integer".to_string())?;
            }
            "--concurrency" => {
                opts.concurrency = value("--concurrency")?
                    .parse()
                    .map_err(|_| "--concurrency expects an integer".to_string())?;
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")?
                    .parse()
                    .map_err(|_| "--timeout-ms expects an integer".to_string())?;
                opts.timeout = Duration::from_millis(ms);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if opts.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    Ok(Some(opts))
}

/// Outcome counters shared by all workers.
#[derive(Default)]
struct Tallies {
    /// Requests issued (claimed from the shared budget).
    issued: AtomicU64,
    /// Transport failures (connect/read/write/parse).
    errors: AtomicU64,
    /// Well-formed responses with a non-2xx status.
    non2xx: AtomicU64,
    /// Responses with a 5xx status (also counted in `non2xx`).
    fivexx: AtomicU64,
    /// 429 responses with `Retry-After` that were backed off and retried.
    throttled: AtomicU64,
}

/// Retries per claimed request before a persistent 429 falls through to
/// the `non2xx` tally, and the longest delay we honour per retry.
const THROTTLE_RETRIES: u32 = 8;
const THROTTLE_CAP: Duration = Duration::from_secs(5);

/// Multiplicative jitter in [0.5, 1.5) from a per-worker xorshift
/// stream; deterministic per worker, decorrelated across the fleet.
struct Jitter(u64);

impl Jitter {
    fn new(worker: usize) -> Self {
        Jitter((worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn scale(&mut self, base: Duration) -> Duration {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        let frac = 0.5 + (self.0 >> 11) as f64 / (1u64 << 53) as f64;
        base.mul_f64(frac)
    }
}

struct WorkerResult {
    latencies_us: LogHistogram,
}

/// Reads one HTTP/1.1 response off `stream`; returns its status code,
/// whether the connection can be reused, and any `Retry-After` delay
/// (delta-seconds form only — HTTP-date values are ignored).
fn read_response(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
) -> Result<(u16, bool, Option<Duration>), String> {
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-response".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end]).map_err(|_| "non-UTF-8 head".to_string())?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {head:?}"))?;
    let mut content_length = 0usize;
    let mut keep_alive = true;
    let mut retry_after = None;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| "bad content-length".to_string())?;
            } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if name == "retry-after" {
                retry_after = value.parse::<u64>().ok().map(Duration::from_secs);
            }
        }
    }
    let body_start = header_end + 4;
    while buf.len() < body_start + content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    buf.drain(..body_start + content_length);
    Ok((status, keep_alive, retry_after))
}

fn worker(index: usize, opts: &Options, tallies: &Tallies) -> WorkerResult {
    let request = format!(
        "GET {} HTTP/1.1\r\nHost: {}\r\nConnection: keep-alive\r\n\r\n",
        opts.path, opts.addr
    );
    let mut latencies = LogHistogram::new();
    let mut jitter = Jitter::new(index);
    let mut conn: Option<(TcpStream, Vec<u8>)> = None;
    loop {
        // Claim one request from the shared budget.
        if tallies.issued.fetch_add(1, Ordering::Relaxed) >= opts.requests {
            tallies.issued.fetch_sub(1, Ordering::Relaxed);
            break;
        }
        let mut retries = 0u32;
        loop {
            let started = Instant::now();
            let outcome = (|| -> Result<(u16, bool, Option<Duration>), String> {
                if conn.is_none() {
                    let stream =
                        TcpStream::connect(&opts.addr).map_err(|e| format!("connect: {e}"))?;
                    stream
                        .set_read_timeout(Some(opts.timeout))
                        .map_err(|e| e.to_string())?;
                    stream
                        .set_write_timeout(Some(opts.timeout))
                        .map_err(|e| e.to_string())?;
                    conn = Some((stream, Vec::new()));
                }
                let (stream, buf) = conn.as_mut().expect("connection just ensured");
                stream
                    .write_all(request.as_bytes())
                    .map_err(|e| format!("write: {e}"))?;
                read_response(stream, buf)
            })();
            match outcome {
                Ok((429, keep_alive, Some(delay))) if retries < THROTTLE_RETRIES => {
                    tallies.throttled.fetch_add(1, Ordering::Relaxed);
                    if !keep_alive {
                        conn = None;
                    }
                    std::thread::sleep(jitter.scale(delay.min(THROTTLE_CAP)));
                    retries += 1;
                }
                Ok((status, keep_alive, _)) => {
                    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                    latencies.record(micros.max(1));
                    if !(200..300).contains(&status) {
                        tallies.non2xx.fetch_add(1, Ordering::Relaxed);
                        if status >= 500 {
                            tallies.fivexx.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if !keep_alive {
                        conn = None;
                    }
                    break;
                }
                Err(_) => {
                    tallies.errors.fetch_add(1, Ordering::Relaxed);
                    conn = None;
                    break;
                }
            }
        }
    }
    WorkerResult {
        latencies_us: latencies,
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    let tallies = Arc::new(Tallies::default());
    let started = Instant::now();
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.concurrency.max(1))
            .map(|index| {
                let tallies = &tallies;
                scope.spawn(move || worker(index, opts, tallies))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut merged = LogHistogram::new();
    for r in &results {
        merged.merge(&r.latencies_us);
    }
    let issued = tallies.issued.load(Ordering::Relaxed);
    let errors = tallies.errors.load(Ordering::Relaxed);
    let non2xx = tallies.non2xx.load(Ordering::Relaxed);
    let fivexx = tallies.fivexx.load(Ordering::Relaxed);
    let throttled = tallies.throttled.load(Ordering::Relaxed);
    let secs = elapsed.as_secs_f64().max(1e-9);

    println!(
        "requests={issued} errors={errors} non2xx={non2xx} fivexx={fivexx} throttled={throttled} elapsed_ms={}",
        elapsed.as_millis()
    );
    println!("throughput={:.1} req/s", issued as f64 / secs);
    println!(
        "latency_us p50={} p95={} p99={} max={}",
        merged.p50(),
        merged.p95(),
        merged.p99(),
        merged.max()
    );
    Ok(errors == 0 && fivexx == 0)
}

fn main() -> ExitCode {
    match parse(std::env::args().skip(1)) {
        Ok(Some(opts)) => match run(&opts) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("dvs-loadgen: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dvs-loadgen: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
