//! Process-level service test: the real `dvs-serve` daemon under the
//! real `dvs-loadgen` client.
//!
//! Warms a result store in-process, launches the daemon on an ephemeral
//! port against that store, hammers `GET /v1/results` with the
//! closed-loop load generator (the store answers every request; nothing
//! recomputes), and finally drains the daemon, which must exit 0.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use dvs_core::{EvalConfig, Evaluator, ExperimentPlan, ResultStore, Scheme};
use dvs_sram::MilliVolts;
use dvs_workloads::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvs-svc-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The daemon's base engine configuration, mirrored by CLI flags below.
fn base_cfg() -> EvalConfig {
    EvalConfig {
        trace_instrs: 2_000,
        maps: 2,
        seed: 42,
        threads: 1,
        validate_images: false,
        ..EvalConfig::quick()
    }
}

struct Daemon {
    child: Child,
    addr: String,
}

fn start_daemon(store_dir: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dvs-serve"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--store",
            store_dir.to_str().expect("UTF-8 temp path"),
            "--threads",
            "4",
            "--executors",
            "1",
            "--engine-threads",
            "1",
            "--trace-instrs",
            "2000",
            "--maps",
            "2",
            "--seed",
            "42",
            "--timeout-ms",
            "5000",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("dvs-serve spawns");
    // The first stdout line announces the bound address.
    let stdout = child.stdout.as_mut().expect("piped stdout");
    let mut first = String::new();
    BufReader::new(stdout)
        .read_line(&mut first)
        .expect("daemon announces its address");
    let addr = first
        .trim()
        .strip_prefix("dvs-serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner {first:?}"))
        .to_string();
    Daemon { child, addr }
}

/// One-shot request to the daemon; returns (status, body).
fn request(addr: &str, method: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            format!("{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("complete response");
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, body.to_string())
}

#[test]
fn daemon_serves_warm_store_under_load_and_drains_cleanly() {
    let store_dir = temp_dir("warm");

    // Warm the store in-process with the exact configuration the daemon
    // will run (flags above mirror base_cfg).
    {
        let store = ResultStore::open(&store_dir).expect("store opens");
        let mut ev = Evaluator::new(base_cfg()).with_store(store);
        let plan = ExperimentPlan::for_grid(
            &[Benchmark::Crc32],
            &[Scheme::DefectFree],
            &[MilliVolts::new(760)],
        );
        let results = ev.run_plan(&plan);
        assert!(results[0].1.is_ok(), "warmup cell failed");
    }

    let daemon = start_daemon(&store_dir);

    // The warm cell answers straight from the store.
    let results_path = "/v1/results?benchmark=crc32&scheme=defect-free&vcc_mv=760";
    let (status, body) = request(&daemon.addr, "GET", results_path);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    // Closed-loop load: every request must succeed (no transport errors,
    // no 5xx — that is also dvs-loadgen's exit-status contract).
    let requests = if cfg!(debug_assertions) {
        2_000
    } else {
        10_000
    };
    let out = Command::new(env!("CARGO_BIN_EXE_dvs-loadgen"))
        .args([
            "--addr",
            &daemon.addr,
            "--path",
            results_path,
            "--requests",
            &requests.to_string(),
            "--concurrency",
            "4",
        ])
        .output()
        .expect("dvs-loadgen runs");
    let report = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        out.status.success(),
        "loadgen failed:\n{report}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(report.contains("errors=0"), "{report}");
    assert!(report.contains("fivexx=0"), "{report}");
    let throughput: f64 = report
        .lines()
        .find_map(|l| l.strip_prefix("throughput="))
        .and_then(|l| l.split(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no throughput line in:\n{report}"));
    // The acceptance bar is 1k req/s on an optimized build; debug builds
    // on a throttled CI core get a sanity floor instead.
    let floor = if cfg!(debug_assertions) {
        100.0
    } else {
        1000.0
    };
    assert!(
        throughput >= floor,
        "throughput {throughput} req/s below {floor}:\n{report}"
    );

    // Metrics counted the load.
    let (status, metrics) = request(&daemon.addr, "GET", "/v1/metrics?format=json");
    assert_eq!(status, 200);
    let parsed = dvs_obs::json::Value::parse(&metrics).expect("metrics JSON parses");
    let served = parsed
        .get("counters")
        .and_then(|c| c.get("serve.responses.2xx"))
        .and_then(dvs_obs::json::Value::as_f64)
        .unwrap_or(0.0);
    assert!(served >= requests as f64, "2xx={served}\n{metrics}");

    // Graceful drain: the daemon answers, flushes, and exits 0.
    let (status, body) = request(&daemon.addr, "POST", "/v1/admin/shutdown");
    assert_eq!(status, 200, "{body}");
    let out = daemon.child.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "daemon exit {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("drained and stopped"), "{stdout}");

    let _ = std::fs::remove_dir_all(&store_dir);
}
