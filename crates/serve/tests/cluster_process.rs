//! Process-level cluster test: one real coordinator daemon, three real
//! worker daemons, real campaigns over the bench10 suite.
//!
//! One sequential test walks the whole distributed story so timing
//! phases never share CPU with each other:
//!
//! 1. **Speedup** — the same 10-cell sweep runs on 1 worker and then on
//!    3 workers (different voltage so nothing is answered from a warm
//!    store); the 3-worker run must be meaningfully faster.
//! 2. **Convergence** — once idle, every worker has tailed the
//!    coordinator's sync log and answers `GET /v1/results` for cells it
//!    never computed itself.
//! 3. **Node death** — a worker is SIGKILLed mid-campaign; lease expiry
//!    requeues its in-flight cells and the campaign still completes.
//! 4. **Byte-identity** — both the healthy and the post-kill campaigns
//!    render a `"results"` array byte-identical to the same spec run on
//!    a plain single-node daemon.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dvs_obs::json::Value;

/// Engine flags shared by every node: results are keyed on these, so
/// all four daemons must agree for stores and sync to line up. The
/// trace length is sized so a sweep takes seconds — per-cell compute
/// must dominate lease/poll overhead or the speedup phase is noise.
const ENGINE_FLAGS: [&str; 8] = [
    "--engine-threads",
    "1",
    "--trace-instrs",
    "40000",
    "--maps",
    "2",
    "--seed",
    "42",
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvs-cluster-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A spawned `dvs-serve` process; killed on drop unless already reaped.
struct Node {
    child: Option<Child>,
    addr: String,
    store: PathBuf,
}

impl Node {
    fn start(tag: &str, extra: &[&str]) -> Node {
        let store = temp_dir(tag);
        let mut args = vec![
            "--listen".to_string(),
            "127.0.0.1:0".to_string(),
            "--store".to_string(),
            store.to_str().expect("UTF-8 temp path").to_string(),
            "--timeout-ms".to_string(),
            "5000".to_string(),
        ];
        args.extend(ENGINE_FLAGS.iter().map(|s| s.to_string()));
        args.extend(extra.iter().map(|s| s.to_string()));
        let mut child = Command::new(env!("CARGO_BIN_EXE_dvs-serve"))
            .args(&args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("dvs-serve spawns");
        let stdout = child.stdout.as_mut().expect("piped stdout");
        let mut first = String::new();
        BufReader::new(stdout)
            .read_line(&mut first)
            .expect("daemon announces its address");
        let addr = first
            .trim()
            .strip_prefix("dvs-serve listening on http://")
            .unwrap_or_else(|| panic!("unexpected banner {first:?}"))
            .to_string();
        Node {
            child: Some(child),
            addr,
            store,
        }
    }

    /// SIGKILL, no drain — the node-death scenario.
    fn kill(&mut self) {
        if let Some(child) = &mut self.child {
            child.kill().expect("SIGKILL delivered");
            child.wait().expect("killed child reaped");
            self.child = None;
        }
    }

    /// Graceful drain via the admin endpoint; asserts exit status 0.
    fn shutdown(&mut self) {
        let (status, body) = request(&self.addr, "POST", "/v1/admin/shutdown", None);
        assert_eq!(status, 200, "{body}");
        let child = self.child.take().expect("node still running");
        let out = child.wait_with_output().expect("daemon exits");
        assert!(
            out.status.success(),
            "daemon exit {:?}:\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_dir_all(&self.store);
    }
}

/// One-shot request; returns (status, body).
fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let payload = body.unwrap_or("");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                 Content-Length: {}\r\n\r\n{payload}",
                payload.len()
            )
            .as_bytes(),
        )
        .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("complete response");
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, body.to_string())
}

/// The bench10 sweep at one voltage (cells differ per voltage, so each
/// campaign recomputes instead of resolving from a warm store).
fn sweep_spec(vcc_mv: u32) -> String {
    format!(
        r#"{{"benchmarks":["bzip2","mcf","hmmer","libquantum","basicmath","qsort","patricia","dijkstra","crc32","adpcm"],"schemes":["defect-free"],"voltages_mv":[{vcc_mv}]}}"#
    )
}

/// Submits a campaign and returns its id.
fn submit(addr: &str, spec: &str) -> u64 {
    let (status, body) = request(addr, "POST", "/v1/campaigns", Some(spec));
    assert_eq!(status, 202, "{body}");
    Value::parse(&body)
        .expect("submit response parses")
        .get("id")
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("no id in {body}")) as u64
}

/// Polls a campaign until it leaves the running states; returns the
/// final status body and the time it took.
fn await_campaign(addr: &str, id: u64, timeout: Duration) -> (String, Duration) {
    let started = Instant::now();
    loop {
        let (status, body) = request(addr, "GET", &format!("/v1/campaigns/{id}"), None);
        assert_eq!(status, 200, "{body}");
        let state = Value::parse(&body)
            .ok()
            .and_then(|v| v.get("state").and_then(Value::as_str).map(String::from))
            .unwrap_or_else(|| panic!("no state in {body}"));
        match state.as_str() {
            "queued" | "running" => {}
            "complete" => return (body, started.elapsed()),
            other => panic!("campaign {id} ended {other}:\n{body}"),
        }
        assert!(
            started.elapsed() < timeout,
            "campaign {id} still {state} after {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The `"results":[…]` tail of a finished campaign body — the part that
/// must be byte-identical between cluster and single-node runs.
fn results_slice(body: &str) -> &str {
    let at = body
        .find("\"results\":")
        .unwrap_or_else(|| panic!("no results array in {body}"));
    &body[at..]
}

/// Polls the coordinator until `n` workers report alive.
fn await_workers(coordinator: &str, n: usize) {
    let started = Instant::now();
    loop {
        let (status, body) = request(coordinator, "GET", "/v1/cluster/workers", None);
        assert_eq!(status, 200, "{body}");
        let alive = Value::parse(&body)
            .ok()
            .and_then(|v| {
                v.as_arr().map(|ws| {
                    ws.iter()
                        .filter(|w| matches!(w.get("alive"), Some(Value::Bool(true))))
                        .count()
                })
            })
            .unwrap_or(0);
        if alive >= n {
            return;
        }
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "only {alive}/{n} workers alive:\n{body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Polls a worker's store-backed point query until the cell answers ok
/// (the sync log is tailed on the worker's idle path, so this needs a
/// grace period).
fn await_synced_cell(worker: &str, benchmark: &str, vcc_mv: u32) {
    let path = format!("/v1/results?benchmark={benchmark}&scheme=defect-free&vcc_mv={vcc_mv}");
    let started = Instant::now();
    loop {
        let (status, body) = request(worker, "GET", &path, None);
        if status == 200 && body.contains("\"status\":\"ok\"") {
            return;
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "worker {worker} never synced {benchmark}@{vcc_mv}: {status} {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn cluster_converges_scales_and_survives_worker_death() {
    // Each worker holds two keep-alive connections (requests and
    // heartbeats) and a keep-alive connection pins an HTTP thread, so
    // the coordinator's pool must be sized for the fleet.
    let coordinator = Node::start(
        "coord",
        &[
            "--cluster",
            "--threads",
            "16",
            "--lease-ttl-ms",
            "1500",
            "--steal-after-ms",
            "600",
            "--retry-backoff-ms",
            "100",
            "--lease-units",
            "1",
        ],
    );
    let join = coordinator.addr.clone();
    let worker_args = |name: &str| {
        vec![
            "--join".to_string(),
            join.clone(),
            "--worker-name".to_string(),
            name.to_string(),
            "--heartbeat-ms".to_string(),
            "300".to_string(),
            "--lease-units".to_string(),
            "1".to_string(),
        ]
    };
    let start_worker = |tag: &str| {
        let args = worker_args(tag);
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        Node::start(tag, &refs)
    };

    // Roles surface in healthz.
    let (status, health) = request(&coordinator.addr, "GET", "/v1/healthz", None);
    assert_eq!(status, 200);
    assert!(health.contains("\"role\":\"coordinator\""), "{health}");

    // Phase 1a: the sweep on a single worker.
    let w1 = start_worker("w1");
    let (_, health) = request(&w1.addr, "GET", "/v1/healthz", None);
    assert!(health.contains("\"role\":\"worker\""), "{health}");
    await_workers(&coordinator.addr, 1);
    let id_760 = submit(&coordinator.addr, &sweep_spec(760));
    let (body_760, t_one) = await_campaign(&coordinator.addr, id_760, Duration::from_secs(300));

    // Phase 1b: the same sweep at a fresh voltage on three workers.
    let w2 = start_worker("w2");
    let mut w3 = start_worker("w3");
    await_workers(&coordinator.addr, 3);
    let id_740 = submit(&coordinator.addr, &sweep_spec(740));
    let (_, t_three) = await_campaign(&coordinator.addr, id_740, Duration::from_secs(300));
    println!("sweep on 1 worker: {t_one:?}; on 3 workers: {t_three:?}");
    // Three workers timesharing one core cannot beat one worker, so the
    // speedup claim is only checkable where the fleet actually gets
    // parallel hardware; the functional phases below run regardless.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if cores >= 4 {
        assert!(
            t_three.as_secs_f64() < t_one.as_secs_f64() * 0.8,
            "3 workers took {t_three:?}, 1 worker took {t_one:?} — no speedup"
        );
    } else {
        println!("only {cores} cores: skipping the speedup assertion");
    }

    // Phase 2: convergence. w2 and w3 joined after the 760 mV campaign
    // finished, so every 760 mV cell they answer arrived via the sync
    // log, not their own evaluators.
    let benchmarks = [
        "bzip2",
        "mcf",
        "hmmer",
        "libquantum",
        "basicmath",
        "qsort",
        "patricia",
        "dijkstra",
        "crc32",
        "adpcm",
    ];
    for worker in [&w1, &w2, &w3] {
        for b in benchmarks {
            await_synced_cell(&worker.addr, b, 760);
        }
    }

    // Reference daemon starts now (after all timing) and chews the same
    // specs serially while the death scenario runs on the cluster.
    let reference = Node::start("ref", &["--executors", "1"]);
    let ref_760 = submit(&reference.addr, &sweep_spec(760));
    let ref_720 = submit(&reference.addr, &sweep_spec(720));

    // Phase 3: SIGKILL a worker once the 720 mV campaign is visibly in
    // flight; lease expiry must requeue its cells onto the survivors.
    let id_720 = submit(&coordinator.addr, &sweep_spec(720));
    let progressed = Instant::now();
    loop {
        let (_, body) = request(
            &coordinator.addr,
            "GET",
            &format!("/v1/campaigns/{id_720}"),
            None,
        );
        let done = Value::parse(&body)
            .ok()
            .and_then(|v| v.get("cells_done").and_then(Value::as_f64))
            .unwrap_or(0.0);
        if done >= 2.0 {
            break;
        }
        assert!(
            progressed.elapsed() < Duration::from_secs(120),
            "no progress on campaign {id_720}: {body}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    w3.kill();
    let (body_720, _) = await_campaign(&coordinator.addr, id_720, Duration::from_secs(300));

    // The coordinator notices the silence.
    let started = Instant::now();
    loop {
        let (_, body) = request(&coordinator.addr, "GET", "/v1/cluster/workers", None);
        if body.contains("\"name\":\"w3\",\"alive\":false") || body.contains("\"alive\":false") {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "killed worker never marked dead:\n{body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // Phase 4: byte-identity against the single-node reference, both
    // for the healthy campaign and the one that survived a node death.
    let (ref_body_760, _) = await_campaign(&reference.addr, ref_760, Duration::from_secs(600));
    let (ref_body_720, _) = await_campaign(&reference.addr, ref_720, Duration::from_secs(600));
    assert_eq!(
        results_slice(&body_760),
        results_slice(&ref_body_760),
        "cluster 760 mV results diverge from single-node"
    );
    assert_eq!(
        results_slice(&body_720),
        results_slice(&ref_body_720),
        "post-kill 720 mV results diverge from single-node"
    );

    // Graceful drain everywhere that is still alive.
    for mut node in [w1, w2, reference, coordinator] {
        node.shutdown();
    }
}
