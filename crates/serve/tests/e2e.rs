//! End-to-end tests of the campaign server over real TCP.
//!
//! Every test binds port 0, drives the JSON API through a plain
//! `TcpStream` client, and finishes with a graceful shutdown whose
//! `Server::run` must return `Ok`. The headline test proves the wire
//! path is lossless: a campaign fetched over HTTP renders byte-identical
//! to a direct `Evaluator::run_plan` with different thread counts and a
//! different store configuration.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dvs_core::{EvalConfig, ResultStore};
use dvs_obs::json::Value;
use dvs_obs::MetricsRegistry;
use dvs_serve::api::{self, CampaignSpec};
use dvs_serve::jobs::{JobConfig, JobManager};
use dvs_serve::{Server, ServerConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvs-serve-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_base() -> EvalConfig {
    EvalConfig {
        trace_instrs: 3_000,
        maps: 2,
        seed: 42,
        threads: 2,
        validate_images: false,
        ..EvalConfig::quick()
    }
}

struct TestServer {
    addr: SocketAddr,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

impl TestServer {
    fn start(jobs_cfg: JobConfig, store: Option<ResultStore>) -> TestServer {
        let registry = Arc::new(MetricsRegistry::new());
        let jobs = JobManager::start(jobs_cfg, store, registry.clone());
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                http_threads: 2,
                read_timeout: Duration::from_secs(5),
                write_timeout: Duration::from_secs(5),
                ..ServerConfig::default()
            },
            jobs,
            registry,
        )
        .expect("bind port 0");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        TestServer { addr, handle }
    }

    /// Requests a graceful shutdown and asserts the server exits `Ok`.
    fn shutdown(self) {
        let (status, _, body) = request(self.addr, "POST", "/v1/admin/shutdown", None);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"draining\":true"), "{body}");
        let run_result = self.handle.join().expect("server thread");
        assert!(run_result.is_ok(), "{run_result:?}");
    }
}

/// One-shot HTTP client: fresh connection, `Connection: close`, reads
/// to EOF. Returns (status, headers, body).
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or("");
    let wire = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(wire.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("complete response");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

/// Like [`request`] but keeps the body as raw bytes and sends extra
/// request headers verbatim — for responses that are not UTF-8 text.
fn request_bytes(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &str,
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let wire = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\
         {extra_headers}Content-Length: 0\r\n\r\n"
    );
    stream.write_all(wire.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete response");
    let head = std::str::from_utf8(&raw[..split]).expect("UTF-8 head");
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body)
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Polls one campaign until it reaches a terminal state.
fn poll_terminal(addr: SocketAddr, id: u64, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, _, body) = request(addr, "GET", &format!("/v1/campaigns/{id}"), None);
        assert_eq!(status, 200, "{body}");
        if body.contains("\"state\":\"complete\"")
            || body.contains("\"state\":\"failed\"")
            || body.contains("\"state\":\"cancelled\"")
        {
            return body;
        }
        assert!(Instant::now() < deadline, "campaign {id} stuck: {body}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn submitted_id(body: &str) -> u64 {
    let v = Value::parse(body).expect("submit response is JSON");
    v.get("id").and_then(Value::as_f64).expect("id field") as u64
}

#[test]
fn campaign_over_tcp_is_byte_identical_to_direct_run() {
    let store_dir = temp_dir("e2e-store");
    let store = ResultStore::open(&store_dir).expect("store opens");
    let server = TestServer::start(
        JobConfig {
            queue_depth: 4,
            executors: 1,
            base: tiny_base(),
        },
        Some(store),
    );

    let spec_body = r#"{"benchmarks":["crc32","adpcm"],"schemes":["defect-free","FFW+BBR"],"voltages_mv":[760,600],"seed":11}"#;
    let (status, _, body) = request(server.addr, "POST", "/v1/campaigns", Some(spec_body));
    assert_eq!(status, 202, "{body}");
    let id = submitted_id(&body);

    let status_body = poll_terminal(server.addr, id, Duration::from_secs(300));
    assert!(
        status_body.contains("\"state\":\"complete\""),
        "{status_body}"
    );
    let results_at = status_body.find("\"results\":").expect("results present");
    let over_tcp = &status_body[results_at + "\"results\":".len()..status_body.len() - 1];

    // Reference: a direct in-process run with a DIFFERENT thread count
    // and NO store. Parallelism and persistence must never leak into
    // results, so the rendered bytes must match exactly.
    let direct_base = EvalConfig {
        threads: 1,
        ..tiny_base()
    };
    let spec = CampaignSpec::from_json(spec_body).expect("spec parses");
    let direct = api::render_direct(&spec, &direct_base, None);
    assert!(
        over_tcp == direct,
        "wire results diverge from direct run:\n wire: {over_tcp}\n direct: {direct}"
    );
    assert!(over_tcp.contains("\"status\":\"ok\""), "{over_tcp}");

    // Point queries answer from the store the campaign populated; the
    // rendered cell object is literally a member of the results array.
    let (status, _, cell) = request(
        server.addr,
        "GET",
        "/v1/results?benchmark=crc32&scheme=defect-free&vcc_mv=760&seed=11",
        None,
    );
    assert_eq!(status, 200, "{cell}");
    assert!(direct.contains(&cell), "cell not in results:\n{cell}");

    // The same point query with `Accept: application/octet-stream`
    // returns the cell's canonical binary store image, and the JSON the
    // server rendered is exactly what renders from those bytes.
    let (status, headers, raw) = request_bytes(
        server.addr,
        "GET",
        "/v1/results?benchmark=crc32&scheme=defect-free&vcc_mv=760&seed=11",
        "Accept: application/octet-stream\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("application/octet-stream")
    );
    let stored = dvs_core::StoredCell::from_bytes(&raw).expect("binary body decodes");
    assert_eq!(stored.to_bytes(), raw, "wire bytes are the canonical encoding");
    let key = dvs_core::CellKey::new(
        dvs_workloads::Benchmark::Crc32,
        dvs_core::Scheme::DefectFree,
        dvs_sram::MilliVolts::new(760),
    );
    assert_eq!(
        api::cell_json(&key, &api::stored_cell_result(&key, stored)),
        cell,
        "binary and JSON content types must describe the same cell"
    );

    // Unknown settings miss without recomputation.
    let (status, _, miss) = request(
        server.addr,
        "GET",
        "/v1/results?benchmark=crc32&scheme=defect-free&vcc_mv=760&seed=999",
        None,
    );
    assert_eq!(status, 404, "{miss}");
    // Malformed queries are refused outright.
    let (status, _, bad) = request(server.addr, "GET", "/v1/results?benchmark=crc32", None);
    assert_eq!(status, 400, "{bad}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn queue_full_returns_429_with_retry_after_and_metrics() {
    let server = TestServer::start(
        JobConfig {
            queue_depth: 1,
            executors: 1,
            base: tiny_base(),
        },
        None,
    );

    // Campaign A is sized to run for a while on one executor.
    let slow = r#"{"benchmarks":["crc32"],"schemes":["defect-free"],"voltages_mv":[760],"maps":400,"trace_instrs":20000}"#;
    let (status, _, body) = request(server.addr, "POST", "/v1/campaigns", Some(slow));
    assert_eq!(status, 202, "{body}");
    let id_a = submitted_id(&body);

    // Wait until A occupies the executor, so the queue is empty again.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, _, s) = request(server.addr, "GET", &format!("/v1/campaigns/{id_a}"), None);
        if s.contains("\"state\":\"running\"") {
            break;
        }
        assert!(Instant::now() < deadline, "A never started: {s}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // B fills the depth-1 queue; C must bounce with 429 + Retry-After.
    let quick = r#"{"benchmarks":["crc32"],"schemes":["defect-free"],"voltages_mv":[760],"maps":1,"trace_instrs":2000}"#;
    let (status_b, _, body_b) = request(server.addr, "POST", "/v1/campaigns", Some(quick));
    assert_eq!(status_b, 202, "{body_b}");
    let (status_c, headers_c, body_c) = request(server.addr, "POST", "/v1/campaigns", Some(quick));
    assert_eq!(status_c, 429, "{body_c}");
    assert_eq!(
        header(&headers_c, "retry-after"),
        Some("1"),
        "{headers_c:?}"
    );
    // The structured error body must parse under the hardened parser,
    // not just contain the right substring.
    let error_body = Value::parse(&body_c).expect("429 body is valid JSON");
    assert_eq!(
        error_body.get("error").and_then(Value::as_str),
        Some("campaign queue is full"),
        "{body_c}"
    );

    // The rejection is observable in the metrics snapshot, and the JSON
    // rendering parses with the hardened parser.
    let (status, _, metrics) = request(server.addr, "GET", "/v1/metrics?format=json", None);
    assert_eq!(status, 200);
    let snapshot = Value::parse(&metrics).expect("metrics JSON parses");
    let rejected = snapshot
        .get("counters")
        .and_then(|c| c.get("serve.rejected"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    assert!(rejected >= 1.0, "serve.rejected missing:\n{metrics}");

    // The text rendering serves too.
    let (status, _, text) = request(server.addr, "GET", "/v1/metrics", None);
    assert_eq!(status, 200);
    assert!(text.contains("serve.requests"), "{text}");

    // Drain: A stops at a trial boundary, B never needs to finish, and
    // the server still exits cleanly.
    server.shutdown();
}

#[test]
fn routing_rejects_what_it_should_and_shutdown_is_clean() {
    let server = TestServer::start(
        JobConfig {
            queue_depth: 2,
            executors: 1,
            base: tiny_base(),
        },
        None,
    );

    // Healthz is a real document now: it must survive the hardened
    // parser and carry role/version/queue-depth fields.
    let (status, _, body) = request(server.addr, "GET", "/v1/healthz", None);
    assert_eq!(status, 200);
    let health = Value::parse(&body).expect("healthz JSON parses");
    assert_eq!(health.get("ok").and_then(Value::as_f64), None);
    assert!(
        matches!(health.get("ok"), Some(Value::Bool(true))),
        "{body}"
    );
    assert_eq!(
        health.get("role").and_then(Value::as_str),
        Some("single"),
        "{body}"
    );
    assert_eq!(
        health.get("version").and_then(Value::as_str),
        Some(env!("CARGO_PKG_VERSION")),
        "{body}"
    );
    assert_eq!(
        health.get("queue_depth").and_then(Value::as_f64),
        Some(0.0),
        "{body}"
    );
    assert!(
        health.get("uptime_ms").and_then(Value::as_f64).is_some(),
        "{body}"
    );

    let (status, _, _) = request(server.addr, "GET", "/v1/nope", None);
    assert_eq!(status, 404);
    let (status, _, _) = request(server.addr, "DELETE", "/v1/campaigns", None);
    assert_eq!(status, 405);
    let (status, _, body) = request(server.addr, "POST", "/v1/campaigns", Some("{not json"));
    assert_eq!(status, 400);
    assert!(body.contains("invalid JSON"), "{body}");
    let (status, _, body) = request(
        server.addr,
        "POST",
        "/v1/campaigns",
        Some(r#"{"benchmarks":["crc32"],"schemes":["nope"],"voltages_mv":[760]}"#),
    );
    assert_eq!(status, 400);
    assert!(body.contains("unknown scheme"), "{body}");
    let (status, _, _) = request(server.addr, "GET", "/v1/campaigns/77", None);
    assert_eq!(status, 404);
    let (status, _, body) = request(server.addr, "GET", "/v1/campaigns", None);
    assert_eq!(status, 200);
    assert_eq!(body, "[]");

    server.shutdown();
}
