//! Cache area and static-power model (paper Table III).
//!
//! A cell-inventory substitute for CACTI: every structure is costed in
//! *6T-cell-equivalent units*. The calibration constants below are each
//! anchored to a number the paper publishes; everything else is computed
//! from the cache geometry, so non-default geometries give sensible
//! (if uncalibrated) estimates.

use serde::{Deserialize, Serialize};

use dvs_schemes::SchemeKind;
use dvs_sram::CacheGeometry;

/// Area of an 8T cell relative to 6T (paper §VI-A: "+30 %").
const CELL_8T_AREA: f64 = 1.3;

/// Leakage of a full 8T array relative to 6T (paper §VI-A: the extra
/// leakage path is almost cancelled by the stack effect, +0.2 % overall).
const CELL_8T_LEAK: f64 = 1.002;

/// Effective tag-array units per cache line (tag + valid/LRU state, after
/// CACTI's packing). Calibrated so the 8T cache lands at 128 % and the
/// "1 % tag" component of the paper's FFW/BBR breakdowns holds.
const TAG_UNITS_PER_LINE: f64 = 11.0;

/// Periphery (decoders, sense amplifiers, inter-bank wire) as a fraction
/// of cell area. Calibrated so an all-8T cache is exactly 128 % of 6T.
const PERIPHERY_FRACTION: f64 = 0.0714;

/// Packing efficiency of small side arrays (FMAP, StoredPattern, defect
/// patterns) that share decoders with the tag array. Calibrated to the
/// paper's "4.2 % FMAP and StoredPattern" for 16 bits/line.
const SIDE_ARRAY_PACKING: f64 = 0.578;

/// Leakage multiplier of side arrays relative to data cells (their small
/// subarrays amortize periphery worse). Calibrated to Simple-wdis/FFW
/// static rows.
const SIDE_ARRAY_LEAK: f64 = 1.15;

/// Area units per FBA entry (word-location CAM tag + 8T data word +
/// match/priority logic). Calibrated to the paper's 12 % for 64 entries.
const FBA_UNITS_PER_ENTRY: f64 = 496.0;

/// Area units per IDC entry (set-associative defect cache with its own
/// tag array). Calibrated to the paper's 13.7 % for 64 entries.
const IDC_UNITS_PER_ENTRY: f64 = 574.0;

/// Leakage multiplier of CAM/buffer bits (match lines burn static power).
const BUFFER_LEAK: f64 = 4.45;

/// Static overheads of one scheme at low voltage (a Table III row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticOverheads {
    /// Cache area normalized to the conventional 6T cache (1.0 = equal).
    pub normalized_area: f64,
    /// Static power normalized to the conventional 6T cache.
    pub normalized_static_power: f64,
    /// Extra L1 access latency in cycles.
    pub latency_cycles: u32,
}

/// Computes the Table III overheads for `kind` on `geom`.
pub fn static_overheads(kind: SchemeKind, geom: &CacheGeometry) -> StaticOverheads {
    let lines = f64::from(geom.total_lines());
    let wpb = f64::from(geom.words_per_block());
    let data_units_per_line = f64::from(geom.block_bytes()) * 8.0;
    let cell_units = lines * (data_units_per_line + TAG_UNITS_PER_LINE);
    let total_units = cell_units * (1.0 + PERIPHERY_FRACTION);
    let total_bits = lines * (data_units_per_line + TAG_UNITS_PER_LINE);

    // All fault-tolerant schemes keep their tag arrays in robust 8T cells.
    let tag_8t_area = (CELL_8T_AREA - 1.0) * TAG_UNITS_PER_LINE * lines / total_units;
    let tag_8t_leak =
        (CELL_8T_LEAK - 1.0) * TAG_UNITS_PER_LINE / (data_units_per_line + TAG_UNITS_PER_LINE);

    // A side array of `bits` bits per line, in 8T cells.
    let side_area = |bits: f64| bits * lines * CELL_8T_AREA * SIDE_ARRAY_PACKING / total_units;
    let side_leak = |bits: f64| bits * lines * SIDE_ARRAY_LEAK / total_bits;
    let buffer_area = |entries: u32, unit: f64| f64::from(entries) * unit / total_units;
    let buffer_leak = |entries: u32| {
        // ~59 bits per entry: word-address tag + 32-bit data + state.
        f64::from(entries) * 59.0 * BUFFER_LEAK / total_bits
    };

    let (area_delta, leak_delta) = match kind {
        SchemeKind::Conventional => (0.0, 0.0),
        SchemeKind::EightT => (
            (CELL_8T_AREA - 1.0) * cell_units / total_units,
            CELL_8T_LEAK - 1.0,
        ),
        // FMAP (1 bit/word) in 8T next to the tags.
        SchemeKind::SimpleWordDisable => {
            (tag_8t_area + side_area(wpb), tag_8t_leak + side_leak(wpb))
        }
        // FMAP + StoredPattern: 2 bits per word (Figure 4).
        SchemeKind::Ffw => (
            tag_8t_area + side_area(2.0 * wpb),
            tag_8t_leak + side_leak(2.0 * wpb),
        ),
        // Defect pattern per line + pair-combining muxes.
        SchemeKind::WilkersonPlus => (
            tag_8t_area + side_area(wpb) + 0.002,
            tag_8t_leak + side_leak(wpb) + 0.012,
        ),
        SchemeKind::Fba { entries } => (
            tag_8t_area + buffer_area(entries, FBA_UNITS_PER_ENTRY),
            tag_8t_leak + buffer_leak(entries),
        ),
        SchemeKind::Idc { entries, .. } => (
            tag_8t_area + buffer_area(entries, IDC_UNITS_PER_ENTRY),
            tag_8t_leak + buffer_leak(entries) * 0.97,
        ),
        // Group tags + substitution muxes in the access path (the reason
        // the paper relegates these schemes to the L2).
        SchemeKind::WordSubstitution => (
            tag_8t_area + side_area(wpb) + 0.006,
            tag_8t_leak + side_leak(wpb) + 0.004,
        ),
        // One line-valid defect flag per line next to the tags.
        SchemeKind::LineDisable => (tag_8t_area + side_area(1.0), tag_8t_leak + side_leak(1.0)),
        // Per-way power gates and a defect register.
        SchemeKind::WayDisable => (tag_8t_area + 0.002, tag_8t_leak + 0.001),
        // Way-select muxes for the direct-mapped mode (Figure 7).
        SchemeKind::Bbr => (tag_8t_area + 0.001, tag_8t_leak + 0.0008),
        // Marginal-word map (1 bit/word, like the FMAP) plus the timing
        // checker and replay sequencing logic.
        SchemeKind::TsCache => (
            tag_8t_area + side_area(wpb) + 0.004,
            tag_8t_leak + side_leak(wpb) + 0.003,
        ),
    };
    StaticOverheads {
        normalized_area: 1.0 + area_delta,
        normalized_static_power: 1.0 + leak_delta,
        latency_cycles: kind.extra_hit_cycles(),
    }
}

/// One row of the reproduced Table III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Scheme name as printed in the paper.
    pub scheme: String,
    /// Overheads.
    pub overheads: StaticOverheads,
}

/// Reproduces Table III for the paper's 32 KB L1 geometry.
pub fn table3() -> Vec<Table3Row> {
    let geom = CacheGeometry::dsn_l1();
    [
        ("8T cache", SchemeKind::EightT),
        ("FFW (dcache)", SchemeKind::Ffw),
        ("BBR (icache)", SchemeKind::Bbr),
        ("FBA (64 entries)", SchemeKind::fba()),
        ("Wilkerson", SchemeKind::WilkersonPlus),
        ("IDC (64 entries)", SchemeKind::idc()),
        ("Simple wdis", SchemeKind::SimpleWordDisable),
    ]
    .into_iter()
    .map(|(name, kind)| Table3Row {
        scheme: name.to_string(),
        overheads: static_overheads(kind, &geom),
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::dsn_l1()
    }

    /// Paper Table III targets: (scheme, area, static power, latency).
    const TABLE3: [(SchemeKind, f64, f64, u32); 7] = [
        (SchemeKind::EightT, 1.280, 1.002, 1),
        (SchemeKind::Ffw, 1.052, 1.064, 0),
        (SchemeKind::Bbr, 1.011, 1.001, 0),
        (SchemeKind::Fba { entries: 64 }, 1.120, 1.061, 1),
        (SchemeKind::WilkersonPlus, 1.034, 1.045, 1),
        (
            SchemeKind::Idc {
                entries: 64,
                ways: 4,
            },
            1.137,
            1.059,
            1,
        ),
        (SchemeKind::SimpleWordDisable, 1.033, 1.036, 0),
    ];

    #[test]
    fn reproduces_table3_areas() {
        for (kind, area, _, _) in TABLE3 {
            let o = static_overheads(kind, &geom());
            assert!(
                (o.normalized_area - area).abs() < 0.012,
                "{kind}: area {:.4} vs paper {area}",
                o.normalized_area
            );
        }
    }

    #[test]
    fn reproduces_table3_static_power() {
        for (kind, _, leak, _) in TABLE3 {
            let o = static_overheads(kind, &geom());
            assert!(
                (o.normalized_static_power - leak).abs() < 0.006,
                "{kind}: static {:.4} vs paper {leak}",
                o.normalized_static_power
            );
        }
    }

    #[test]
    fn reproduces_table3_latency() {
        for (kind, _, _, cycles) in TABLE3 {
            assert_eq!(static_overheads(kind, &geom()).latency_cycles, cycles);
        }
    }

    #[test]
    fn conventional_cache_is_the_unit() {
        let o = static_overheads(SchemeKind::Conventional, &geom());
        assert_eq!(o.normalized_area, 1.0);
        assert_eq!(o.normalized_static_power, 1.0);
    }

    #[test]
    fn plus_variants_cost_much_more_area() {
        let small = static_overheads(SchemeKind::fba(), &geom()).normalized_area;
        let plus = static_overheads(SchemeKind::fba_plus(), &geom()).normalized_area;
        assert!(plus > small + 1.0, "1024 entries must dwarf 64");
    }

    #[test]
    fn table3_has_seven_rows_in_paper_order() {
        let rows = table3();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].scheme, "8T cache");
        assert_eq!(rows[6].scheme, "Simple wdis");
    }

    #[test]
    fn ffw_breakdown_matches_paper_components() {
        // Paper: FFW = 1 % tag + 4.2 % FMAP/StoredPattern.
        let ffw = static_overheads(SchemeKind::Ffw, &geom()).normalized_area - 1.0;
        let bbr_tag_only = static_overheads(SchemeKind::Bbr, &geom()).normalized_area - 1.0 - 0.001;
        let side = ffw - bbr_tag_only;
        assert!(
            (bbr_tag_only - 0.010).abs() < 0.005,
            "tag part {bbr_tag_only}"
        );
        assert!((side - 0.042).abs() < 0.006, "side arrays {side}");
    }
}
