//! Energy-per-instruction accounting (paper Figure 12).
//!
//! The paper's scaling laws (Section VI-C): dynamic power scales
//! quadratically with supply voltage and linearly with frequency (so
//! dynamic *energy per event* scales with V²); static power scales
//! linearly with voltage; the L2 sits on a fixed voltage domain whose
//! frequency follows the core.
//!
//! The baseline energy budget split is the one calibration this model
//! adds. The paper's headline — 64 % EPI reduction at 400 mV — pins it
//! down tightly: with `EPI(400 mV) ≈ 0.36·EPI(760 mV)` and the scaling
//! laws above, the 760 mV budget must be strongly dynamic-dominated
//! (≈ 95 % dynamic); see `DESIGN.md`. The defaults below encode exactly
//! that budget.

use serde::{Deserialize, Serialize};

use dvs_sram::MilliVolts;

/// Event counts of one simulation, as the energy model consumes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunCounts {
    /// Useful instructions committed (the work-unit denominator of EPI;
    /// excludes BBR-inserted jump overhead).
    pub instructions: u64,
    /// All instructions executed, including overhead jumps (they still
    /// burn core dynamic energy).
    pub executed: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// L1 accesses (fetches + loads + stores).
    pub l1_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
}

/// The baseline (760 mV) energy budget and scaling machinery.
///
/// Fractions describe how one instruction's energy splits at the
/// reference operating point; they must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Core-logic dynamic energy fraction (scales with V²).
    pub f_core_dynamic: f64,
    /// L1 dynamic energy fraction (scales with V² and L1 activity).
    pub f_l1_dynamic: f64,
    /// L2 dynamic energy fraction (fixed voltage; scales with L2 activity).
    pub f_l2_dynamic: f64,
    /// Core static fraction (power ∝ V, energy ∝ V × time).
    pub f_core_static: f64,
    /// L1 static fraction (as core static, times the scheme's Table III
    /// static-power factor).
    pub f_l1_static: f64,
    /// L2 static fraction (fixed voltage; energy ∝ time).
    pub f_l2_static: f64,
    /// Reference voltage (the paper's 760 mV baseline).
    pub ref_vcc: MilliVolts,
    /// Reference frequency in MHz (1607 at 760 mV, Table II).
    pub ref_freq_mhz: u32,
}

impl EnergyModel {
    /// The calibrated model (see module docs).
    pub fn dsn45() -> Self {
        EnergyModel {
            f_core_dynamic: 0.84,
            f_l1_dynamic: 0.10,
            f_l2_dynamic: 0.015,
            f_core_static: 0.025,
            f_l1_static: 0.010,
            f_l2_static: 0.010,
            ref_vcc: MilliVolts::new(760),
            ref_freq_mhz: 1607,
        }
    }

    fn fraction_sum(&self) -> f64 {
        self.f_core_dynamic
            + self.f_l1_dynamic
            + self.f_l2_dynamic
            + self.f_core_static
            + self.f_l1_static
            + self.f_l2_static
    }

    /// Energy per instruction of `run` at (`vcc`, `freq_mhz`), normalized
    /// so that `baseline` at the reference point is exactly 1.0.
    ///
    /// `l1_static_factor` is the scheme's normalized static power from
    /// Table III (1.0 for the conventional cache).
    ///
    /// # Panics
    ///
    /// Panics if the fractions do not sum to 1 (±1e-6), a count is zero,
    /// or the frequency is zero.
    pub fn epi_normalized(
        &self,
        baseline: &RunCounts,
        run: &RunCounts,
        vcc: MilliVolts,
        freq_mhz: u32,
        l1_static_factor: f64,
    ) -> f64 {
        assert!(
            (self.fraction_sum() - 1.0).abs() < 1e-6,
            "energy fractions sum to {}, not 1",
            self.fraction_sum()
        );
        assert!(freq_mhz > 0, "frequency must be nonzero");
        assert!(
            baseline.instructions > 0 && run.instructions > 0,
            "instruction counts must be nonzero"
        );
        let v = vcc.ratio_to(self.ref_vcc);
        let per_instr = |c: &RunCounts, what: u64| what as f64 / c.instructions as f64;
        // Activity ratios relative to the baseline run.
        let core_ratio = per_instr(run, run.executed) / per_instr(baseline, baseline.executed);
        let l1_ratio = per_instr(run, run.l1_accesses) / per_instr(baseline, baseline.l1_accesses);
        let l2_ratio = if baseline.l2_accesses == 0 {
            1.0
        } else {
            per_instr(run, run.l2_accesses) / per_instr(baseline, baseline.l2_accesses)
        };
        // Wall-clock time per instruction, relative to the baseline.
        let time_ratio = (per_instr(run, run.cycles) / f64::from(freq_mhz))
            / (per_instr(baseline, baseline.cycles) / f64::from(self.ref_freq_mhz));

        self.f_core_dynamic * v * v * core_ratio
            + self.f_l1_dynamic * v * v * l1_ratio
            + self.f_l2_dynamic * l2_ratio
            + self.f_core_static * v * time_ratio
            + self.f_l1_static * v * time_ratio * l1_static_factor
            + self.f_l2_static * time_ratio
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::dsn45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(instr: u64, cycles: u64, l1: u64, l2: u64) -> RunCounts {
        RunCounts {
            instructions: instr,
            executed: instr,
            cycles,
            l1_accesses: l1,
            l2_accesses: l2,
        }
    }

    #[test]
    fn baseline_normalizes_to_one() {
        let m = EnergyModel::dsn45();
        let b = counts(1000, 1500, 1400, 30);
        let epi = m.epi_normalized(&b, &b, MilliVolts::new(760), 1607, 1.0);
        assert!((epi - 1.0).abs() < 1e-9, "epi {epi}");
    }

    #[test]
    fn ideal_scaling_reaches_the_paper_band_at_400mv() {
        // A defect-free run with unchanged CPI at 400 mV / 475 MHz must
        // land near the paper's 62–64 % reduction.
        let m = EnergyModel::dsn45();
        let b = counts(1000, 1500, 1400, 30);
        let epi = m.epi_normalized(&b, &b, MilliVolts::new(400), 475, 1.0);
        assert!((0.33..0.42).contains(&epi), "epi {epi}");
    }

    #[test]
    fn longer_runtime_raises_static_energy() {
        let m = EnergyModel::dsn45();
        let b = counts(1000, 1500, 1400, 30);
        let slow = counts(1000, 3000, 1400, 30);
        let fast = m.epi_normalized(&b, &b, MilliVolts::new(400), 475, 1.0);
        let slowed = m.epi_normalized(&b, &slow, MilliVolts::new(400), 475, 1.0);
        assert!(slowed > fast);
    }

    #[test]
    fn extra_l2_traffic_costs_energy() {
        let m = EnergyModel::dsn45();
        let b = counts(1000, 1500, 1400, 30);
        let chatty = counts(1000, 1500, 1400, 300);
        let quiet = m.epi_normalized(&b, &b, MilliVolts::new(400), 475, 1.0);
        let loud = m.epi_normalized(&b, &chatty, MilliVolts::new(400), 475, 1.0);
        assert!(loud > quiet + 0.1);
    }

    #[test]
    fn static_factor_scales_l1_leakage_only() {
        let m = EnergyModel::dsn45();
        let b = counts(1000, 1500, 1400, 30);
        let base = m.epi_normalized(&b, &b, MilliVolts::new(400), 475, 1.0);
        let leaky = m.epi_normalized(&b, &b, MilliVolts::new(400), 475, 1.064);
        let delta = leaky - base;
        assert!(delta > 0.0 && delta < 0.01, "delta {delta}");
    }

    #[test]
    fn epi_monotone_in_voltage_for_ideal_runs() {
        let m = EnergyModel::dsn45();
        let b = counts(1000, 1500, 1400, 30);
        let pts = [(760u32, 1607u32), (560, 1089), (480, 818), (400, 475)];
        let mut last = f64::INFINITY;
        for (mv, f) in pts {
            let epi = m.epi_normalized(&b, &b, MilliVolts::new(mv), f, 1.0);
            assert!(epi < last, "EPI rose at {mv} mV");
            last = epi;
        }
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn bad_fractions_rejected() {
        let m = EnergyModel {
            f_core_dynamic: 0.9,
            ..EnergyModel::dsn45()
        };
        let b = counts(10, 10, 10, 1);
        let _ = m.epi_normalized(&b, &b, MilliVolts::new(760), 1607, 1.0);
    }
}
