//! FFW data-cache critical-path timeline (paper Figure 9).
//!
//! The paper's zero-latency claim rests on two CACTI/HSPICE numbers: the
//! data array's row-address-to-column-MUX delay is **42.2 FO4**, while the
//! longest side path (StoredPattern/FMAP read + way mux + word-remap
//! logic) completes at **39.4 FO4** — so the remapped column select is
//! ready before the data array needs it. The stage splits below are our
//! estimates; the two anchor sums are the paper's.

use serde::{Deserialize, Serialize};

/// Which critical path a stage belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CachePath {
    /// The data array (decoder → … → column MUX → output).
    DataArray,
    /// The tag array (decode, read, compare → way select).
    TagArray,
    /// StoredPattern + FMAP arrays and the word-remap logic.
    PatternAndRemap,
}

/// One stage of a critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathStage {
    /// Path this stage belongs to.
    pub path: CachePath,
    /// Stage name.
    pub name: &'static str,
    /// Start time in FO4 delays.
    pub start_fo4: f64,
    /// Duration in FO4 delays.
    pub len_fo4: f64,
}

impl PathStage {
    /// End time of the stage in FO4.
    pub fn end_fo4(&self) -> f64 {
        self.start_fo4 + self.len_fo4
    }
}

/// The data array is ready for its column-MUX select at this time (the
/// paper's "row address to column MUX delay of the data array").
pub const DATA_ARRAY_COLUMN_MUX_FO4: f64 = 42.2;

/// The remapped word offset is ready at this time (the paper's combined
/// StoredPattern/FMAP path delay).
pub const REMAP_READY_FO4: f64 = 39.4;

/// Produces the Figure 9 timeline of the 32 KB FFW data cache in 45 nm.
pub fn ffw_timeline() -> Vec<PathStage> {
    use CachePath::*;
    let stages = vec![
        // Data array: 42.2 FO4 to the column MUX, then mux + drive out.
        PathStage {
            path: DataArray,
            name: "row decoder",
            start_fo4: 0.0,
            len_fo4: 10.5,
        },
        PathStage {
            path: DataArray,
            name: "wordline",
            start_fo4: 10.5,
            len_fo4: 6.0,
        },
        PathStage {
            path: DataArray,
            name: "bitline",
            start_fo4: 16.5,
            len_fo4: 8.7,
        },
        PathStage {
            path: DataArray,
            name: "sense amplifier",
            start_fo4: 25.2,
            len_fo4: 7.0,
        },
        PathStage {
            path: DataArray,
            name: "to column MUX",
            start_fo4: 32.2,
            len_fo4: 10.0,
        },
        PathStage {
            path: DataArray,
            name: "column MUX + driver",
            start_fo4: 42.2,
            len_fo4: 7.8,
        },
        // Tag array: smaller, finishes with the way select at 32.0.
        PathStage {
            path: TagArray,
            name: "tag decode/read",
            start_fo4: 0.0,
            len_fo4: 26.0,
        },
        PathStage {
            path: TagArray,
            name: "compare + way select",
            start_fo4: 26.0,
            len_fo4: 6.0,
        },
        // StoredPattern/FMAP: small arrays read in parallel, then wait for
        // the way select, mux, and run the remap logic.
        PathStage {
            path: PatternAndRemap,
            name: "pattern array read",
            start_fo4: 0.0,
            len_fo4: 23.0,
        },
        PathStage {
            path: PatternAndRemap,
            name: "MUX1/MUX3 (way)",
            start_fo4: 32.0,
            len_fo4: 2.4,
        },
        PathStage {
            path: PatternAndRemap,
            name: "word remap logic",
            start_fo4: 34.4,
            len_fo4: 5.0,
        },
    ];
    debug_assert!((stages[5].start_fo4 - DATA_ARRAY_COLUMN_MUX_FO4).abs() < 1e-9);
    debug_assert!((stages[10].end_fo4() - REMAP_READY_FO4).abs() < 1e-9);
    stages
}

/// The paper's zero-latency-overhead condition: the remapped column select
/// arrives no later than the data array needs it.
pub fn ffw_has_zero_latency_overhead() -> bool {
    REMAP_READY_FO4 <= DATA_ARRAY_COLUMN_MUX_FO4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_delays() {
        let t = ffw_timeline();
        let mux = t
            .iter()
            .find(|s| s.name == "column MUX + driver")
            .expect("stage exists");
        assert!((mux.start_fo4 - 42.2).abs() < 1e-9);
        let remap = t.iter().find(|s| s.name == "word remap logic").unwrap();
        assert!((remap.end_fo4() - 39.4).abs() < 1e-9);
    }

    #[test]
    // The whole point of the test is pinning compile-time paper anchors.
    #[allow(clippy::assertions_on_constants)]
    fn zero_latency_overhead_holds() {
        assert!(ffw_has_zero_latency_overhead());
        assert!(REMAP_READY_FO4 < DATA_ARRAY_COLUMN_MUX_FO4);
    }

    #[test]
    fn stages_within_each_path_are_contiguous_or_waiting() {
        let t = ffw_timeline();
        for path in [
            CachePath::DataArray,
            CachePath::TagArray,
            CachePath::PatternAndRemap,
        ] {
            let stages: Vec<&PathStage> = t.iter().filter(|s| s.path == path).collect();
            for w in stages.windows(2) {
                assert!(
                    w[1].start_fo4 >= w[0].end_fo4() - 1e-9,
                    "{:?}: {} overlaps {}",
                    path,
                    w[1].name,
                    w[0].name
                );
            }
        }
    }

    #[test]
    fn remap_waits_for_way_select() {
        let t = ffw_timeline();
        let way = t.iter().find(|s| s.name == "compare + way select").unwrap();
        let mux1 = t.iter().find(|s| s.name == "MUX1/MUX3 (way)").unwrap();
        assert!(mux1.start_fo4 >= way.end_fo4() - 1e-9);
    }

    #[test]
    fn data_array_is_the_longest_path() {
        let t = ffw_timeline();
        let data_end = t
            .iter()
            .filter(|s| s.path == CachePath::DataArray)
            .map(PathStage::end_fo4)
            .fold(0.0, f64::max);
        for s in &t {
            assert!(
                s.end_fo4() <= data_end + 1e-9,
                "{} outlasts the data array",
                s.name
            );
        }
    }
}
