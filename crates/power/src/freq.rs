//! Voltage → frequency model (Table II; 20 FO4 delays per cycle).

use dvs_sram::MilliVolts;

/// The paper's Table II operating points: (millivolts, MHz).
pub const TABLE2_POINTS: [(u32, u32); 6] = [
    (400, 475),
    (440, 638),
    (480, 818),
    (520, 958),
    (560, 1089),
    (760, 1607),
];

/// Core frequency at `vcc`, in MHz.
///
/// Exact at the Table II anchors; linear interpolation between them, and
/// boundary-slope extrapolation outside (clamped to ≥ 1 MHz).
pub fn freq_mhz(vcc: MilliVolts) -> u32 {
    let v = f64::from(vcc.get());
    let pts = TABLE2_POINTS;
    let seg = if v <= f64::from(pts[0].0) {
        (pts[0], pts[1])
    } else if v >= f64::from(pts[pts.len() - 1].0) {
        (pts[pts.len() - 2], pts[pts.len() - 1])
    } else {
        let hi = pts
            .iter()
            .position(|&(pv, _)| f64::from(pv) >= v)
            .expect("v below last anchor");
        (pts[hi - 1], pts[hi])
    };
    let ((v0, f0), (v1, f1)) = seg;
    let f = f64::from(f0) + (v - f64::from(v0)) * f64::from(f1 - f0) / f64::from(v1 - v0);
    f.max(1.0).round() as u32
}

/// FO4 inverter delay at `vcc`, in picoseconds, from the paper's 20-FO4
/// cycle-time assumption: `FO4 = 1 / (20 · f)`.
pub fn fo4_ps(vcc: MilliVolts) -> f64 {
    1e6 / (20.0 * f64::from(freq_mhz(vcc)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_anchors_exact() {
        for (mv, mhz) in TABLE2_POINTS {
            assert_eq!(freq_mhz(MilliVolts::new(mv)), mhz, "at {mv} mV");
        }
    }

    #[test]
    fn frequency_monotone_in_voltage() {
        let mut last = 0;
        for mv in (350..=900).step_by(10) {
            let f = freq_mhz(MilliVolts::new(mv));
            assert!(f >= last, "frequency dropped at {mv} mV");
            last = f;
        }
    }

    #[test]
    fn interpolates_between_anchors() {
        let f = freq_mhz(MilliVolts::new(420));
        assert!(f > 475 && f < 638);
    }

    #[test]
    fn extrapolates_below_400() {
        let f = freq_mhz(MilliVolts::new(360));
        assert!((1..475).contains(&f));
    }

    #[test]
    fn fo4_at_760mv_is_about_31ps() {
        // 1 / (20 × 1.607 GHz) ≈ 31.1 ps.
        let fo4 = fo4_ps(MilliVolts::new(760));
        assert!((fo4 - 31.11).abs() < 0.2, "fo4 {fo4}");
    }

    #[test]
    fn fo4_grows_as_voltage_drops() {
        assert!(fo4_ps(MilliVolts::new(400)) > 3.0 * fo4_ps(MilliVolts::new(760)));
    }
}
