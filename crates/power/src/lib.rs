//! Area, latency, leakage and energy models.
//!
//! The paper estimates physical overheads with CACTI 6.5, McPAT and HSPICE
//! (Section V). Those tools cannot be embedded here, so this crate
//! substitutes analytical component models whose constants are anchored to
//! the paper's published numbers:
//!
//! * [`freq`] — the DVFS voltage→frequency curve (Table II, 20 FO4 delays
//!   per cycle) and the FO4 delay itself;
//! * [`area`] — normalized cache area and static power per scheme
//!   (Table III), built from a cell-inventory model (6T cell = 1 unit,
//!   8T = 1.3 units, side arrays, CAM entries);
//! * [`fo4`] — the FFW data-cache critical-path timeline (Figure 9) and
//!   the zero-latency-overhead check;
//! * [`energy`] — energy-per-instruction accounting under the paper's
//!   scaling laws (dynamic ∝ V², static power ∝ V, L2 on a fixed voltage
//!   domain), normalized to the 760 mV conventional baseline (Figure 12).
//!
//! # Example
//!
//! ```rust
//! use dvs_power::{area, freq};
//! use dvs_schemes::SchemeKind;
//! use dvs_sram::{CacheGeometry, MilliVolts};
//!
//! // Table II: 400 mV runs at 475 MHz.
//! assert_eq!(freq::freq_mhz(MilliVolts::new(400)), 475);
//! // Table III: the FFW data cache costs ~5.2 % area.
//! let o = area::static_overheads(SchemeKind::Ffw, &CacheGeometry::dsn_l1());
//! assert!((o.normalized_area - 1.052).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod energy;
pub mod fo4;
pub mod freq;

pub use area::{static_overheads, table3, StaticOverheads, Table3Row};
pub use energy::{EnergyModel, RunCounts};
pub use fo4::{ffw_timeline, PathStage};
pub use freq::{fo4_ps, freq_mhz};
