//! Figure 3 instrumentation: per-interval spatial locality and word reuse.
//!
//! The paper examines every 10 000-instruction interval of each benchmark's
//! trace and reports (a) the ratio of data actually used to the touched
//! cache-line capacity ("spatial locality", after Murphy & Kogge) and
//! (b) the fraction of repeated word accesses ("word reuse rate").

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{OpClass, TraceOp};

/// Words per 32 B data-cache block.
const WORDS_PER_BLOCK: u64 = 8;

/// The paper's interval length in instructions.
pub const PAPER_INTERVAL_INSTRS: usize = 10_000;

/// Locality of one instruction interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalLocality {
    /// Mean fraction of each touched block's words that were accessed.
    pub spatial: f64,
    /// Fraction of accesses that repeated an already-touched word.
    pub reuse: f64,
    /// Data accesses observed in the interval.
    pub accesses: u64,
}

/// Aggregated locality over a whole trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalityReport {
    intervals: Vec<IntervalLocality>,
}

impl LocalityReport {
    /// Per-interval measurements.
    pub fn intervals(&self) -> &[IntervalLocality] {
        &self.intervals
    }

    /// Mean spatial locality over intervals.
    pub fn mean_spatial(&self) -> f64 {
        mean(self.intervals.iter().map(|i| i.spatial))
    }

    /// Mean word reuse rate over intervals.
    pub fn mean_reuse(&self) -> f64 {
        mean(self.intervals.iter().map(|i| i.reuse))
    }

    /// Normalized histogram of per-interval spatial locality over `bins`
    /// equal-width bins covering `[0, 1]` (the Figure 3 y-axis).
    pub fn spatial_histogram(&self, bins: usize) -> Vec<f64> {
        histogram(self.intervals.iter().map(|i| i.spatial), bins)
    }

    /// Normalized histogram of per-interval word reuse rate.
    pub fn reuse_histogram(&self, bins: usize) -> Vec<f64> {
        histogram(self.intervals.iter().map(|i| i.reuse), bins)
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn histogram(values: impl Iterator<Item = f64>, bins: usize) -> Vec<f64> {
    assert!(bins > 0, "need at least one bin");
    let mut counts = vec![0usize; bins];
    let mut total = 0usize;
    for v in values {
        let bin = ((v * bins as f64) as usize).min(bins - 1);
        counts[bin] += 1;
        total += 1;
    }
    if total == 0 {
        return vec![0.0; bins];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// Measures data-side locality of a trace, interval by interval.
///
/// Intervals shorter than 10 data accesses are dropped (they carry no
/// signal); pass [`PAPER_INTERVAL_INSTRS`] for the paper's methodology.
///
/// # Panics
///
/// Panics if `interval_instrs` is zero.
///
/// # Example
///
/// ```rust
/// use dvs_workloads::{locality, Benchmark, Layout};
///
/// let wl = Benchmark::Patricia.build(7);
/// let layout = Layout::sequential(wl.program());
/// let report = locality::measure(wl.trace(&layout, 0).take(100_000), 10_000);
/// // Patricia: poor spatial locality, very high reuse (paper Figure 3).
/// assert!(report.mean_spatial() < 0.6);
/// assert!(report.mean_reuse() > 0.7);
/// ```
pub fn measure(trace: impl Iterator<Item = TraceOp>, interval_instrs: usize) -> LocalityReport {
    assert!(interval_instrs > 0, "interval length must be nonzero");
    let mut intervals = Vec::new();
    let mut in_interval = 0usize;
    let mut per_block: HashMap<u64, u8> = HashMap::new();
    let mut unique = 0u64;
    let mut accesses = 0u64;

    let mut flush = |per_block: &mut HashMap<u64, u8>, unique: &mut u64, accesses: &mut u64| {
        if *accesses >= 10 {
            let spatial = per_block
                .values()
                .map(|mask| f64::from(mask.count_ones()) / WORDS_PER_BLOCK as f64)
                .sum::<f64>()
                / per_block.len() as f64;
            intervals.push(IntervalLocality {
                spatial,
                reuse: 1.0 - *unique as f64 / *accesses as f64,
                accesses: *accesses,
            });
        }
        per_block.clear();
        *unique = 0;
        *accesses = 0;
    };

    for op in trace {
        if matches!(op.class, OpClass::Load | OpClass::Store) {
            // Literal-pool loads target the code segment; Figure 3
            // characterizes the application's *data* working set, so they
            // are excluded here (they are still simulated as D-cache
            // traffic by the CPU model).
            if let Some(addr) = op.mem_addr.filter(|&a| a >= crate::DATA_SEGMENT_BASE) {
                let word = addr / 4;
                let block = word / WORDS_PER_BLOCK;
                let bit = 1u8 << (word % WORDS_PER_BLOCK);
                let mask = per_block.entry(block).or_insert(0);
                if *mask & bit == 0 {
                    *mask |= bit;
                    unique += 1;
                }
                accesses += 1;
            }
        }
        in_interval += 1;
        if in_interval == interval_instrs {
            flush(&mut per_block, &mut unique, &mut accesses);
            in_interval = 0;
        }
    }
    flush(&mut per_block, &mut unique, &mut accesses);
    LocalityReport { intervals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, Layout};

    fn report_for(b: Benchmark, instrs: usize) -> LocalityReport {
        let wl = b.build(11);
        let layout = Layout::sequential(wl.program());
        measure(wl.trace(&layout, 0).take(instrs), PAPER_INTERVAL_INSTRS)
    }

    #[test]
    fn patricia_matches_figure3_band() {
        let r = report_for(Benchmark::Patricia, 200_000);
        assert!(
            (0.2..0.6).contains(&r.mean_spatial()),
            "spatial {}",
            r.mean_spatial()
        );
        assert!(r.mean_reuse() > 0.75, "reuse {}", r.mean_reuse());
    }

    #[test]
    fn libquantum_is_high_spatial_low_reuse() {
        let r = report_for(Benchmark::Libquantum, 200_000);
        assert!(r.mean_spatial() > 0.7, "spatial {}", r.mean_spatial());
        assert!(r.mean_reuse() < 0.55, "reuse {}", r.mean_reuse());
    }

    #[test]
    fn all_benchmarks_yield_intervals() {
        for b in Benchmark::ALL {
            let r = report_for(b, 60_000);
            assert!(!r.intervals().is_empty(), "{b} produced no intervals");
            for i in r.intervals() {
                assert!((0.0..=1.0).contains(&i.spatial));
                assert!((0.0..=1.0).contains(&i.reuse));
            }
        }
    }

    #[test]
    fn histograms_normalize_to_one() {
        let r = report_for(Benchmark::Qsort, 100_000);
        for hist in [r.spatial_histogram(10), r.reuse_histogram(10)] {
            let sum: f64 = hist.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "histogram sums to {sum}");
        }
    }

    #[test]
    fn empty_trace_is_empty_report() {
        let r = measure(std::iter::empty(), 1000);
        assert!(r.intervals().is_empty());
        assert_eq!(r.mean_spatial(), 0.0);
        assert_eq!(r.spatial_histogram(5), vec![0.0; 5]);
    }

    #[test]
    fn reuse_ordering_matches_paper() {
        // Patricia reuses far more than libquantum (Figure 3's extremes).
        let hi = report_for(Benchmark::Patricia, 100_000);
        let lo = report_for(Benchmark::Libquantum, 100_000);
        assert!(hi.mean_reuse() > lo.mean_reuse() + 0.2);
    }
}
