//! Synthetic workloads calibrated to the DSN 2016 paper's benchmarks.
//!
//! The paper evaluates 4 SPEC CPU2006 and 6 MiBench benchmarks compiled
//! for ARM (Section V). Those binaries and their reference inputs cannot
//! be redistributed, so this crate substitutes **seeded synthetic
//! generators** whose observable characteristics match what the paper's
//! mechanisms are sensitive to:
//!
//! * the data-side **spatial locality** and **word reuse rate** of each
//!   benchmark (Figure 3) — which drive the FFW data cache;
//! * the **basic-block size distribution** (mean ≈ 5–6 instructions,
//!   Figure 6b) and per-interval instruction footprint — which drive BBR.
//!
//! The crate provides:
//!
//! * [`Program`] — a control-flow graph of [`Block`]s with ARM-like
//!   word-sized instructions, function boundaries and literal pools;
//! * [`Layout`] — the memory placement of blocks (the BBR linker in
//!   `dvs-linker` produces alternative layouts);
//! * [`Workload`] / [`Benchmark`] — the ten named benchmarks;
//! * [`TraceWalker`] — a deterministic instruction-trace iterator that
//!   executes the CFG, synthesizing operand registers and data addresses;
//! * [`locality`] — the Figure 3 measurement instrumentation.
//!
//! # Example
//!
//! ```rust
//! use dvs_workloads::{Benchmark, Layout};
//!
//! let wl = Benchmark::Basicmath.build(42);
//! let layout = Layout::sequential(wl.program());
//! let ops: Vec<_> = wl.trace(&layout, 0).take(1000).collect();
//! assert_eq!(ops.len(), 1000);
//! // Traces are deterministic per seed.
//! let again: Vec<_> = wl.trace(&layout, 0).take(1000).collect();
//! assert_eq!(ops, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench10;
mod datagen;
mod generate;
pub mod locality;
mod opclass;
mod program;
mod template;
mod walker;

pub use bench10::{Benchmark, Workload};
pub use datagen::{DataGen, DataParams};
pub use generate::ProgramSpec;
pub use opclass::{InstrMix, OpClass};
pub use program::{Block, BlockId, Layout, Program, ProgramError, Terminator};
pub use template::{TraceStep, TraceTemplate};
pub use walker::{BranchInfo, StepMeta, TargetRef, TraceOp, TraceWalker};

/// Base byte address of the data segment used by synthetic traces. Code
/// lives at low addresses; keeping the segments disjoint means literal
/// loads (which target code addresses) and data loads never alias.
pub const DATA_SEGMENT_BASE: u64 = 0x4000_0000;
