//! Instruction classes and per-benchmark instruction mixes.

use serde::{Deserialize, Serialize};

/// Class of a dynamic instruction, matching the functional units of the
/// paper's core (Table I: 2 INT ALUs, 1 FP ALU, 1 INT MULT, 1 FP MULT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer ALU operation (1-cycle).
    IntAlu,
    /// Integer multiply (3-cycle, single unit).
    IntMult,
    /// Floating-point ALU operation (3-cycle, single unit).
    FpAlu,
    /// Floating-point multiply (5-cycle, single unit).
    FpMult,
    /// Memory load through the L1 D-cache.
    Load,
    /// Memory store through the write-through L1 D-cache.
    Store,
    /// Control transfer (conditional branch, jump, call or return).
    Branch,
}

impl OpClass {
    /// Whether this class accesses the data cache.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether this class transfers control.
    pub fn is_branch(self) -> bool {
        self == OpClass::Branch
    }
}

/// Relative frequencies of non-branch instruction classes within basic
/// block bodies.
///
/// Branches are not part of the mix: they are produced by block
/// terminators, so the branch fraction emerges from the CFG's block sizes
/// (mean block length ≈ 5–6 ⇒ ≈ 15–20 % branches, matching the embedded
/// benchmarks the paper cites).
///
/// # Example
///
/// ```rust
/// use dvs_workloads::{InstrMix, OpClass};
///
/// let mix = InstrMix::integer_heavy();
/// let class = mix.sample(0.5);
/// assert!(!class.is_branch());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstrMix {
    /// Weight of integer ALU operations.
    pub int_alu: f32,
    /// Weight of integer multiplies.
    pub int_mult: f32,
    /// Weight of floating-point ALU operations.
    pub fp_alu: f32,
    /// Weight of floating-point multiplies.
    pub fp_mult: f32,
    /// Weight of loads.
    pub load: f32,
    /// Weight of stores.
    pub store: f32,
}

impl InstrMix {
    /// A pointer/control-heavy integer mix (mcf, patricia, qsort …).
    pub fn integer_heavy() -> Self {
        InstrMix {
            int_alu: 0.48,
            int_mult: 0.02,
            fp_alu: 0.0,
            fp_mult: 0.0,
            load: 0.34,
            store: 0.16,
        }
    }

    /// A floating-point mix (basicmath, hmmer's scoring loops).
    pub fn float_heavy() -> Self {
        InstrMix {
            int_alu: 0.33,
            int_mult: 0.03,
            fp_alu: 0.18,
            fp_mult: 0.10,
            load: 0.24,
            store: 0.12,
        }
    }

    /// A streaming/kernel mix with fewer loads per ALU op (crc32, adpcm,
    /// libquantum).
    pub fn streaming() -> Self {
        InstrMix {
            int_alu: 0.52,
            int_mult: 0.04,
            fp_alu: 0.02,
            fp_mult: 0.02,
            load: 0.26,
            store: 0.14,
        }
    }

    fn total(&self) -> f32 {
        self.int_alu + self.int_mult + self.fp_alu + self.fp_mult + self.load + self.store
    }

    /// Maps a uniform sample in `[0, 1)` to a class, proportionally to the
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any weight is negative.
    pub fn sample(&self, u: f32) -> OpClass {
        let weights = [
            (OpClass::IntAlu, self.int_alu),
            (OpClass::IntMult, self.int_mult),
            (OpClass::FpAlu, self.fp_alu),
            (OpClass::FpMult, self.fp_mult),
            (OpClass::Load, self.load),
            (OpClass::Store, self.store),
        ];
        let total = self.total();
        assert!(
            total > 0.0 && weights.iter().all(|&(_, w)| w >= 0.0),
            "instruction mix weights must be nonnegative and sum > 0"
        );
        let mut x = u.clamp(0.0, 0.999_999) * total;
        for (class, w) in weights {
            if x < w {
                return class;
            }
            x -= w;
        }
        OpClass::Store
    }

    /// The fraction of body instructions that are loads.
    pub fn load_fraction(&self) -> f32 {
        self.load / self.total()
    }

    /// The fraction of body instructions that are stores.
    pub fn store_fraction(&self) -> f32 {
        self.store / self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_covers_all_weighted_classes() {
        let mix = InstrMix::float_heavy();
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            seen.insert(mix.sample(i as f32 / 1000.0));
        }
        assert!(seen.contains(&OpClass::IntAlu));
        assert!(seen.contains(&OpClass::FpAlu));
        assert!(seen.contains(&OpClass::FpMult));
        assert!(seen.contains(&OpClass::Load));
        assert!(seen.contains(&OpClass::Store));
    }

    #[test]
    fn sample_respects_proportions() {
        let mix = InstrMix::integer_heavy();
        let n = 100_000;
        let loads = (0..n)
            .filter(|&i| mix.sample(i as f32 / n as f32) == OpClass::Load)
            .count();
        let frac = loads as f64 / f64::from(n);
        assert!((frac - f64::from(mix.load_fraction())).abs() < 0.01);
    }

    #[test]
    fn integer_mix_has_no_fp() {
        let mix = InstrMix::integer_heavy();
        for i in 0..1000 {
            let c = mix.sample(i as f32 / 1000.0);
            assert!(!matches!(c, OpClass::FpAlu | OpClass::FpMult));
        }
    }

    #[test]
    fn boundary_samples_are_valid() {
        let mix = InstrMix::streaming();
        let _ = mix.sample(0.0);
        let _ = mix.sample(1.0); // clamped internally
    }

    #[test]
    #[should_panic(expected = "sum > 0")]
    fn zero_mix_panics() {
        let mix = InstrMix {
            int_alu: 0.0,
            int_mult: 0.0,
            fp_alu: 0.0,
            fp_mult: 0.0,
            load: 0.0,
            store: 0.0,
        };
        let _ = mix.sample(0.5);
    }

    #[test]
    fn class_predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::Branch.is_branch());
        assert!(!OpClass::Load.is_branch());
    }
}
