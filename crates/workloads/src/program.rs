//! Control-flow-graph program representation.
//!
//! Programs are ARM-like: fixed 4-byte instructions, basic blocks ended by
//! an explicit terminator word (except fall-through), optional literal
//! pools holding PC-relative constants. This is the object-code view the
//! BBR compiler/linker pipeline (`dvs-linker`) operates on.

use std::fmt;
use std::ops::Range;

use serde::{Deserialize, Serialize};

use dvs_sram::BYTES_PER_WORD;

/// Index of a basic block within a [`Program`].
pub type BlockId = usize;

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Execution continues into the next block; no terminator instruction.
    FallThrough,
    /// Unconditional jump (1 word).
    Jump {
        /// Destination block.
        target: BlockId,
    },
    /// Conditional branch (1 word); falls through to the next block when
    /// not taken.
    CondBranch {
        /// Taken destination block.
        target: BlockId,
        /// Probability the branch is taken on a dynamic execution.
        taken_prob: f32,
    },
    /// Function call (1 word); execution resumes at the next block after
    /// the callee returns.
    Call {
        /// Entry block of the callee function.
        callee: BlockId,
    },
    /// Function return (1 word).
    Return,
}

impl Terminator {
    /// Instruction words the terminator occupies.
    pub fn words(self) -> u32 {
        match self {
            Terminator::FallThrough => 0,
            _ => 1,
        }
    }
}

/// One basic block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Payload (non-control) instructions, in words.
    pub body_len: u32,
    /// How the block ends.
    pub terminator: Terminator,
    /// Literal-pool words this block *references* (constants loaded with
    /// PC-relative loads).
    pub literal_refs: u32,
    /// Literal-pool words placed immediately after this block's code.
    /// Zero before the BBR "move literal pool" transform (constants then
    /// live in the function's shared pool).
    pub literal_words: u32,
    /// Whether an extra unconditional jump was appended by the BBR
    /// transform to make the fall-through path explicit.
    pub explicit_jump: bool,
}

impl Block {
    /// A plain fall-through block of `body_len` instructions.
    pub fn body(body_len: u32) -> Self {
        Block {
            body_len,
            terminator: Terminator::FallThrough,
            literal_refs: 0,
            literal_words: 0,
            explicit_jump: false,
        }
    }

    /// A block with the given terminator.
    pub fn with_terminator(body_len: u32, terminator: Terminator) -> Self {
        Block {
            body_len,
            terminator,
            literal_refs: 0,
            literal_words: 0,
            explicit_jump: false,
        }
    }

    /// Executable words: body + terminator + inserted jump.
    pub fn code_words(&self) -> u32 {
        self.body_len + self.terminator.words() + u32::from(self.explicit_jump)
    }

    /// Cache footprint in words: code plus attached literals.
    pub fn footprint_words(&self) -> u32 {
        self.code_words() + self.literal_words
    }
}

/// Error returned when a [`Program`] is structurally invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramError {
    message: String,
}

impl ProgramError {
    fn new(message: impl Into<String>) -> Self {
        ProgramError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid program: {}", self.message)
    }
}

impl std::error::Error for ProgramError {}

/// A whole program: basic blocks partitioned into functions, plus one
/// shared literal pool per function.
///
/// Function 0 is `main`; its entry (block 0) is where execution starts.
///
/// # Example
///
/// ```rust
/// use dvs_workloads::{Block, Program, Terminator};
///
/// let blocks = vec![
///     Block::body(4),
///     Block::with_terminator(3, Terminator::Jump { target: 0 }),
/// ];
/// let program = Program::new(blocks, vec![0..2], vec![2])?;
/// assert_eq!(program.num_blocks(), 2);
/// assert_eq!(program.total_code_words(), 4 + 3 + 1);
/// # Ok::<(), dvs_workloads::ProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    blocks: Vec<Block>,
    functions: Vec<Range<usize>>,
    /// Shared literal-pool words per function (pre-transform constants).
    pool_words: Vec<u32>,
}

impl Program {
    /// Builds and validates a program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if the functions do not partition the block
    /// list contiguously, a branch target leaves its function, a call
    /// target is not a function entry, a function's last block can fall
    /// off its end, or a block references literals its function does not
    /// have.
    pub fn new(
        blocks: Vec<Block>,
        functions: Vec<Range<usize>>,
        pool_words: Vec<u32>,
    ) -> Result<Self, ProgramError> {
        if blocks.is_empty() {
            return Err(ProgramError::new("program has no blocks"));
        }
        if functions.len() != pool_words.len() {
            return Err(ProgramError::new("one pool size required per function"));
        }
        let mut expected_start = 0;
        for (f, range) in functions.iter().enumerate() {
            if range.start != expected_start || range.end <= range.start {
                return Err(ProgramError::new(format!(
                    "function {f} range {range:?} does not partition the blocks"
                )));
            }
            expected_start = range.end;
        }
        if expected_start != blocks.len() {
            return Err(ProgramError::new("functions do not cover all blocks"));
        }
        let entries: Vec<usize> = functions.iter().map(|r| r.start).collect();
        for (f, range) in functions.iter().enumerate() {
            for id in range.clone() {
                let block = &blocks[id];
                let check_local = |target: BlockId, what: &str| {
                    if target < range.start || target >= range.end {
                        return Err(ProgramError::new(format!(
                            "block {id}: {what} target {target} leaves function {f}"
                        )));
                    }
                    Ok(())
                };
                match block.terminator {
                    Terminator::Jump { target } => check_local(target, "jump")?,
                    Terminator::CondBranch { target, taken_prob } => {
                        check_local(target, "branch")?;
                        if !(0.0..=1.0).contains(&taken_prob) {
                            return Err(ProgramError::new(format!(
                                "block {id}: taken probability {taken_prob} outside [0, 1]"
                            )));
                        }
                        if id + 1 >= range.end {
                            return Err(ProgramError::new(format!(
                                "block {id}: conditional branch at function end has no \
                                 fall-through successor"
                            )));
                        }
                    }
                    Terminator::Call { callee } => {
                        if !entries.contains(&callee) {
                            return Err(ProgramError::new(format!(
                                "block {id}: call target {callee} is not a function entry"
                            )));
                        }
                        if id + 1 >= range.end {
                            return Err(ProgramError::new(format!(
                                "block {id}: call at function end has no return-to block"
                            )));
                        }
                    }
                    Terminator::FallThrough => {
                        if id + 1 >= range.end {
                            return Err(ProgramError::new(format!(
                                "block {id}: function {f} can fall off its end"
                            )));
                        }
                    }
                    Terminator::Return => {}
                }
                if block.literal_refs > 0
                    && block.literal_words == 0
                    && pool_words[f] < block.literal_refs
                {
                    return Err(ProgramError::new(format!(
                        "block {id}: references {} literal words but function {f} pool has {}",
                        block.literal_refs, pool_words[f]
                    )));
                }
            }
        }
        Ok(Program {
            blocks,
            functions,
            pool_words,
        })
    }

    /// The basic blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// One block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id]
    }

    /// Function block ranges (function 0 = `main`).
    pub fn functions(&self) -> &[Range<usize>] {
        &self.functions
    }

    /// Shared-pool words of each function.
    pub fn pool_words(&self) -> &[u32] {
        &self.pool_words
    }

    /// The function owning `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function_of(&self, id: BlockId) -> usize {
        assert!(id < self.blocks.len(), "block {id} out of range");
        self.functions
            .iter()
            .position(|r| r.contains(&id))
            .expect("functions partition all blocks")
    }

    /// Total executable words over all blocks (excluding literal pools).
    pub fn total_code_words(&self) -> u32 {
        self.blocks.iter().map(Block::code_words).sum()
    }

    /// Total footprint including per-block and shared literal pools.
    pub fn total_footprint_words(&self) -> u32 {
        self.blocks.iter().map(Block::footprint_words).sum::<u32>()
            + self.pool_words.iter().sum::<u32>()
    }

    /// Code sizes of every block in words — the Figure 6(b) "basic block
    /// size" distribution.
    pub fn block_sizes(&self) -> Vec<u32> {
        self.blocks.iter().map(Block::code_words).collect()
    }
}

/// Placement of a program in memory: a start byte address per block plus
/// one per function shared pool.
///
/// The default [`Layout::sequential`] packs blocks back-to-back in block
/// order, with each function's shared pool after its last block — the
/// layout an ordinary linker would produce. The BBR linker produces gapped
/// layouts that avoid defective cache words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    block_starts: Vec<u64>,
    pool_starts: Vec<u64>,
    end: u64,
}

impl Layout {
    /// Packs `program` contiguously from byte address 0.
    pub fn sequential(program: &Program) -> Self {
        let mut block_starts = vec![0u64; program.num_blocks()];
        let mut pool_starts = vec![0u64; program.functions().len()];
        let mut cursor = 0u64;
        for (f, range) in program.functions().iter().enumerate() {
            for id in range.clone() {
                block_starts[id] = cursor;
                cursor +=
                    u64::from(program.block(id).footprint_words()) * u64::from(BYTES_PER_WORD);
            }
            pool_starts[f] = cursor;
            cursor += u64::from(program.pool_words()[f]) * u64::from(BYTES_PER_WORD);
        }
        Layout {
            block_starts,
            pool_starts,
            end: cursor,
        }
    }

    /// Builds a layout from explicit placements (used by the BBR linker).
    ///
    /// # Panics
    ///
    /// Panics if any start is not word-aligned or lies at/after `end`.
    pub fn from_parts(block_starts: Vec<u64>, pool_starts: Vec<u64>, end: u64) -> Self {
        for &s in block_starts.iter().chain(&pool_starts) {
            assert!(
                s % u64::from(BYTES_PER_WORD) == 0,
                "start {s:#x} not word-aligned"
            );
            assert!(
                s < end || end == 0,
                "start {s:#x} beyond program end {end:#x}"
            );
        }
        Layout {
            block_starts,
            pool_starts,
            end,
        }
    }

    /// Byte address of the first instruction of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_start(&self, id: BlockId) -> u64 {
        self.block_starts[id]
    }

    /// Byte address of the instruction at word position `word` of `id`.
    pub fn instr_addr(&self, id: BlockId, word: u32) -> u64 {
        self.block_start(id) + u64::from(word) * u64::from(BYTES_PER_WORD)
    }

    /// Byte address a literal load in block `id` targets: the block's own
    /// pool when literals were moved, else the function's shared pool.
    pub fn literal_addr(&self, program: &Program, id: BlockId) -> u64 {
        let block = program.block(id);
        if block.literal_words > 0 {
            self.instr_addr(id, block.code_words())
        } else {
            self.pool_starts[program.function_of(id)]
        }
    }

    /// One-past-the-end byte address of the program image.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Number of placed blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_starts.len()
    }
}

#[cfg(test)]
// Tests build one-function programs, whose span list really is `vec![0..n]`.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;

    fn two_function_program() -> Program {
        let blocks = vec![
            // main: block 0 calls f1, block 1 loops back.
            Block::with_terminator(4, Terminator::Call { callee: 2 }),
            Block::with_terminator(2, Terminator::Jump { target: 0 }),
            // f1: blocks 2..4.
            Block::with_terminator(
                5,
                Terminator::CondBranch {
                    target: 3,
                    taken_prob: 0.5,
                },
            ),
            Block::with_terminator(3, Terminator::Return),
        ];
        Program::new(blocks, vec![0..2, 2..4], vec![0, 2]).unwrap()
    }

    #[test]
    fn valid_program_builds() {
        let p = two_function_program();
        assert_eq!(p.num_blocks(), 4);
        assert_eq!(p.function_of(0), 0);
        assert_eq!(p.function_of(3), 1);
        // code words: (4+1) + (2+1) + (5+1) + (3+1) = 18
        assert_eq!(p.total_code_words(), 18);
        // + pool of f1 (2 words)
        assert_eq!(p.total_footprint_words(), 20);
    }

    #[test]
    fn rejects_cross_function_branch() {
        let blocks = vec![
            Block::with_terminator(1, Terminator::Jump { target: 1 }),
            Block::with_terminator(1, Terminator::Return),
        ];
        let err = Program::new(blocks, vec![0..1, 1..2], vec![0, 0]).unwrap_err();
        assert!(err.to_string().contains("leaves function"));
    }

    #[test]
    fn rejects_fallthrough_off_function_end() {
        let blocks = vec![Block::body(3)];
        assert!(Program::new(blocks, vec![0..1], vec![0]).is_err());
    }

    #[test]
    fn rejects_call_to_non_entry() {
        let blocks = vec![
            Block::with_terminator(1, Terminator::Call { callee: 3 }),
            Block::with_terminator(1, Terminator::Return),
            Block::body(1),
            Block::with_terminator(1, Terminator::Return),
        ];
        assert!(Program::new(blocks, vec![0..2, 2..4], vec![0, 0]).is_err());
    }

    #[test]
    fn rejects_bad_probability() {
        let blocks = vec![
            Block::with_terminator(
                1,
                Terminator::CondBranch {
                    target: 0,
                    taken_prob: 1.5,
                },
            ),
            Block::with_terminator(1, Terminator::Return),
        ];
        assert!(Program::new(blocks, vec![0..2], vec![0]).is_err());
    }

    #[test]
    fn rejects_literal_refs_without_pool() {
        let mut block = Block::with_terminator(1, Terminator::Return);
        block.literal_refs = 3;
        assert!(Program::new(vec![block], vec![0..1], vec![0]).is_err());
    }

    #[test]
    fn rejects_gap_in_functions() {
        let blocks = vec![
            Block::with_terminator(1, Terminator::Return),
            Block::with_terminator(1, Terminator::Return),
        ];
        assert!(Program::new(blocks.clone(), vec![0..1], vec![0]).is_err());
        assert!(Program::new(blocks, vec![0..1, 0..2], vec![0, 0]).is_err());
    }

    #[test]
    fn sequential_layout_packs_blocks() {
        let p = two_function_program();
        let l = Layout::sequential(&p);
        assert_eq!(l.block_start(0), 0);
        assert_eq!(l.block_start(1), 5 * 4);
        assert_eq!(l.block_start(2), 8 * 4);
        assert_eq!(l.block_start(3), 14 * 4);
        // f1 pool after block 3.
        assert_eq!(l.literal_addr(&p, 2), 18 * 4);
        assert_eq!(l.end(), 20 * 4);
    }

    #[test]
    fn moved_literals_addressed_after_block_code() {
        let mut blocks = vec![
            Block::with_terminator(2, Terminator::Jump { target: 0 }),
            Block::with_terminator(1, Terminator::Return),
        ];
        blocks[0].literal_refs = 1;
        blocks[0].literal_words = 1;
        let p = Program::new(blocks, vec![0..2], vec![0]).unwrap();
        let l = Layout::sequential(&p);
        // Block 0: code = 3 words, literal at word 3.
        assert_eq!(l.literal_addr(&p, 0), 12);
        // Block 1 starts after the literal.
        assert_eq!(l.block_start(1), 16);
    }

    #[test]
    fn instr_addr_steps_by_word() {
        let p = two_function_program();
        let l = Layout::sequential(&p);
        assert_eq!(l.instr_addr(2, 0), l.block_start(2));
        assert_eq!(l.instr_addr(2, 3), l.block_start(2) + 12);
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn from_parts_rejects_misaligned() {
        let _ = Layout::from_parts(vec![2], vec![], 64);
    }

    #[test]
    fn block_sizes_reports_code_words() {
        let p = two_function_program();
        assert_eq!(p.block_sizes(), vec![5, 3, 6, 4]);
    }
}
