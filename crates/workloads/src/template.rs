//! Recorded trace templates: walk once, re-emit per layout.
//!
//! Trace generation dominated the per-trial hot path: every trial re-ran
//! the full [`TraceWalker`] CFG interpretation (RNG draws, operand
//! selection, data-address generation) even though, for a fixed benchmark
//! and trace seed, the *dynamic instruction sequence* is identical across
//! trials — only the layout-dependent fields (pc, literal addresses,
//! branch targets) and the relaxation-dependent synthetic jumps differ.
//!
//! A [`TraceTemplate`] records one walk over the **unrelaxed** transformed
//! program (the maximal explicit-jump set) together with each op's
//! layout-independent [`StepMeta`], then resolves it against any
//! `(program, layout)` pair produced by the BBR linker for the same
//! benchmark. Resolution is a linear pass that patches addresses — no RNG,
//! no CFG interpretation.
//!
//! # Why this is exact
//!
//! BBR relaxation only ever *clears* `explicit_jump` flags, and inserted
//! jumps consume no RNG draws (no operand picks, no branch-outcome draw).
//! So a walker over a relaxed program visits the same blocks in the same
//! order with an identical RNG stream; its trace is the recorded trace
//! minus the elided synthetic jumps, with addresses from the new layout.
//! [`TraceTemplate::resolve_into`] reproduces exactly that: it skips
//! recorded synthetic steps whose block no longer carries an explicit
//! jump, recomputes `pc` / literal addresses / branch targets from the new
//! layout, and re-resolves return targets (which depend on whether the
//! *caller* kept its jump).

use crate::walker::{StepMeta, TargetRef};
use crate::{Layout, Program, TraceOp, TraceWalker};

/// One recorded dynamic instruction: the op as emitted under the recording
/// layout plus the layout-independent coordinates needed to re-emit it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStep {
    /// The op as recorded. `pc`, literal `mem_addr`s and branch targets
    /// are placeholders valid only for the recording layout.
    pub op: TraceOp,
    /// Layout-independent coordinates of the op.
    pub meta: StepMeta,
}

/// A recorded instruction trace that can be resolved against any layout
/// (and any relaxation) of the same program.
///
/// Record once per `(benchmark, trace seed)` over the unrelaxed
/// transformed program; resolve per trial against the linked image. The
/// resolving program must be the recording program with a **subset** of
/// its explicit jumps (which is what BBR relaxation produces) — block
/// count, bodies, terminators and literal counts must all match.
#[derive(Debug, Clone)]
pub struct TraceTemplate {
    steps: Vec<TraceStep>,
    /// Number of blocks in the recording program, for cheap compatibility
    /// checks at resolve time.
    num_blocks: usize,
    /// Whether the recorded walk ended on its own (`main` returned) before
    /// the step budget — if so the template covers the *entire* trace and
    /// shorter resolutions are still exact.
    complete: bool,
}

impl TraceTemplate {
    /// Records up to `max_steps` ops from `walker`.
    ///
    /// The walker must be fresh (no ops consumed) and should run over the
    /// unrelaxed transformed program so the template carries the maximal
    /// synthetic-jump set. Budget `max_steps` above the trial trace length:
    /// relaxation removes synthetic steps, so resolving `n` ops can consume
    /// more than `n` recorded steps.
    pub fn record(walker: &mut TraceWalker<'_>, max_steps: usize) -> Self {
        let num_blocks = walker.num_blocks();
        let mut steps = Vec::with_capacity(max_steps);
        let mut complete = false;
        while steps.len() < max_steps {
            match walker.next() {
                Some(op) => steps.push(TraceStep {
                    op,
                    meta: walker.last_step_meta(),
                }),
                None => {
                    complete = true;
                    break;
                }
            }
        }
        TraceTemplate {
            steps,
            num_blocks,
            complete,
        }
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Whether the recorded walk ended on its own before the step budget.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The recorded steps.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Resolves the template against `(program, layout)`, writing up to
    /// `n` ops into `out` (which is cleared first).
    ///
    /// Returns `true` when `out` is exactly what a fresh [`TraceWalker`]
    /// over `(program, layout)` would produce under `take(n)`: either `n`
    /// ops were emitted, or the recorded walk is [`complete`] and the
    /// whole (shorter) trace was emitted. Returns `false` when the
    /// recording ran out of steps first — the caller must fall back to a
    /// fresh walker; `out`'s contents are then meaningless.
    ///
    /// [`complete`]: TraceTemplate::is_complete
    ///
    /// # Panics
    ///
    /// Panics if `program`/`layout` disagree with the recording program's
    /// block count.
    pub fn resolve_into(
        &self,
        program: &Program,
        layout: &Layout,
        n: usize,
        out: &mut Vec<TraceOp>,
    ) -> bool {
        assert_eq!(
            program.num_blocks(),
            self.num_blocks,
            "template does not match program"
        );
        assert_eq!(
            layout.num_blocks(),
            self.num_blocks,
            "template does not match layout"
        );
        out.clear();
        if out.capacity() < n {
            out.reserve(n - out.capacity());
        }
        for step in &self.steps {
            if out.len() == n {
                return true;
            }
            let block = step.meta.block;
            // Relaxation elided this inserted jump: the relaxed walker
            // falls through silently and emits nothing.
            if step.op.synthetic && !program.block(block).explicit_jump {
                continue;
            }
            let mut op = step.op;
            op.pc = layout.instr_addr(block, step.meta.word);
            if let Some(ordinal) = step.meta.literal_ordinal {
                op.mem_addr = Some(layout.literal_addr(program, block) + u64::from(ordinal) * 4);
            }
            if let Some(info) = op.branch.as_mut() {
                info.target = match step.meta.target {
                    Some(TargetRef::Start(target)) => layout.block_start(target),
                    Some(TargetRef::AfterCall(caller)) => {
                        let caller_block = program.block(caller);
                        if caller_block.explicit_jump {
                            layout.instr_addr(caller, caller_block.body_len + 1)
                        } else {
                            layout.block_start(caller + 1)
                        }
                    }
                    Some(TargetRef::SelfPc) => op.pc,
                    // Branches always record a target; keep the recorded
                    // address if one ever slips through.
                    None => info.target,
                };
            }
            out.push(op);
        }
        out.len() >= n || self.complete
    }
}

#[cfg(test)]
// Tests build one-function programs, whose span list really is `vec![0..n]`.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;
    use crate::{Benchmark, Block, DataGen, DataParams, InstrMix, Terminator};
    fn params() -> DataParams {
        DataParams {
            spatial: 0.5,
            reuse: 0.7,
            ws_blocks: 32,
            scattered: false,
            churn: 0.25,
            footprint_blocks: 100_000,
        }
    }

    fn walker_for<'a>(program: &'a Program, layout: &'a Layout, seed: u64) -> TraceWalker<'a> {
        TraceWalker::new(
            program,
            layout,
            InstrMix::integer_heavy(),
            DataGen::new(params(), seed),
            7,
            seed,
        )
    }

    /// Identity resolution: same program, same layout must reproduce the
    /// walker byte for byte.
    #[test]
    fn identity_resolution_matches_walker() {
        let wl = Benchmark::Qsort.build(42);
        let layout = Layout::sequential(wl.program());
        let n = 4000;
        let template = TraceTemplate::record(&mut wl.trace(&layout, 0), n + n / 8 + 64);
        let mut resolved = Vec::new();
        assert!(template.resolve_into(wl.program(), &layout, n, &mut resolved));
        let direct: Vec<TraceOp> = wl.trace(&layout, 0).take(n).collect();
        assert_eq!(resolved, direct);
    }

    /// Resolution against a different layout of the same program rewrites
    /// every address correctly.
    #[test]
    fn relayout_resolution_matches_walker() {
        let wl = Benchmark::Crc32.build(7);
        let program = wl.program();
        let record_layout = Layout::sequential(program);
        let template = TraceTemplate::record(&mut wl.trace(&record_layout, 3), 5000);

        // Shift every block (and each function's literal pool) by one
        // cache line (16 words = 64 bytes).
        let shifted: Vec<u64> = (0..program.num_blocks())
            .map(|id| record_layout.block_start(id) + 64)
            .collect();
        let pools: Vec<u64> = program
            .functions()
            .iter()
            .map(|range| {
                let last = range.end - 1;
                let block = program.block(last);
                record_layout.instr_addr(last, block.footprint_words()) + 64
            })
            .collect();
        let layout = Layout::from_parts(shifted, pools, record_layout.end() + 128);

        let mut resolved = Vec::new();
        assert!(template.resolve_into(program, &layout, 4000, &mut resolved));
        let direct: Vec<TraceOp> = wl.trace(&layout, 3).take(4000).collect();
        assert_eq!(resolved, direct);
    }

    /// The relaxation case: record with an explicit jump present, resolve
    /// against the program with the jump elided. Covers the synthetic-skip
    /// rule and the `AfterCall` return-target re-resolution.
    #[test]
    fn relaxed_resolution_matches_walker() {
        // main: b0 (2 instr, call f1, explicit jump), b1 (2 instr,
        // cond-branch to b0 never taken, explicit jump), b2 (jump b0).
        // f1: b3 (1 instr, return). The return into b0 exercises
        // AfterCall; the never-taken cond branch exercises the
        // fall-through jump path.
        let mut b0 = Block::with_terminator(2, Terminator::Call { callee: 3 });
        b0.explicit_jump = true;
        let mut b1 = Block::with_terminator(
            2,
            Terminator::CondBranch {
                target: 0,
                taken_prob: 0.0,
            },
        );
        b1.explicit_jump = true;
        let blocks = vec![
            b0,
            b1,
            Block::with_terminator(1, Terminator::Jump { target: 0 }),
            Block::with_terminator(1, Terminator::Return),
        ];
        let unrelaxed = Program::new(blocks.clone(), vec![0..3, 3..4], vec![0, 0]).unwrap();
        let record_layout = Layout::sequential(&unrelaxed);
        let template = TraceTemplate::record(&mut walker_for(&unrelaxed, &record_layout, 5), 3000);

        // Relax b0's jump (its return target collapses to b1's start) and
        // keep b1's (the not-taken cond branch still needs it).
        let mut relaxed_blocks = blocks;
        relaxed_blocks[0].explicit_jump = false;
        let relaxed = Program::new(relaxed_blocks, vec![0..3, 3..4], vec![0, 0]).unwrap();
        let layout = Layout::sequential(&relaxed);

        let n = 2000;
        let mut resolved = Vec::new();
        assert!(template.resolve_into(&relaxed, &layout, n, &mut resolved));
        let direct: Vec<TraceOp> = walker_for(&relaxed, &layout, 5).take(n).collect();
        assert_eq!(resolved, direct);
        // The elided jump really was skipped: the template consumed more
        // steps than it emitted.
        assert!(template.len() > n);
        assert!(resolved
            .iter()
            .all(|op| !op.synthetic || op.branch.is_some()));
    }

    /// A template that runs out of steps reports failure instead of
    /// returning a short trace.
    #[test]
    fn exhausted_template_reports_failure() {
        let wl = Benchmark::Dijkstra.build(1);
        let layout = Layout::sequential(wl.program());
        let template = TraceTemplate::record(&mut wl.trace(&layout, 0), 100);
        let mut out = Vec::new();
        assert!(!template.resolve_into(wl.program(), &layout, 5000, &mut out));
        // A within-budget request still succeeds.
        assert!(template.resolve_into(wl.program(), &layout, 50, &mut out));
        assert_eq!(out.len(), 50);
    }

    /// A complete recording (main returned) resolves successfully even
    /// when fewer than `n` ops exist.
    #[test]
    fn complete_short_trace_resolves() {
        let blocks = vec![Block::with_terminator(1, Terminator::Return)];
        let p = Program::new(blocks, vec![0..1], vec![0]).unwrap();
        let l = Layout::sequential(&p);
        let template = TraceTemplate::record(&mut walker_for(&p, &l, 0), 100);
        assert!(template.is_complete());
        let mut out = Vec::new();
        assert!(template.resolve_into(&p, &l, 50, &mut out));
        let direct: Vec<TraceOp> = walker_for(&p, &l, 0).take(50).collect();
        assert_eq!(out, direct);
    }
}
