//! Deterministic CFG execution producing instruction traces.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{BlockId, DataGen, InstrMix, Layout, OpClass, Program, Terminator};

/// Dynamic control-transfer information attached to branch-class ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Whether the control transfer was taken.
    pub taken: bool,
    /// Byte address of the taken destination (the BTB-predictable target).
    pub target: u64,
}

/// One dynamic instruction of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceOp {
    /// Byte address the instruction was fetched from.
    pub pc: u64,
    /// Instruction class.
    pub class: OpClass,
    /// Effective byte address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Destination register, if the instruction writes one.
    pub dest: Option<u8>,
    /// First source register.
    pub src1: Option<u8>,
    /// Second source register.
    pub src2: Option<u8>,
    /// Control-transfer outcome for branch-class instructions.
    pub branch: Option<BranchInfo>,
    /// Whether this instruction is a BBR-inserted fall-through jump
    /// (overhead, not part of the original program's work).
    pub synthetic: bool,
}

/// Layout-independent description of where a recorded branch lands, so a
/// trace captured under one layout can be re-targeted under another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetRef {
    /// The first instruction of a block.
    Start(BlockId),
    /// The resume point after `caller`'s call word. This is *relaxation
    /// dependent*: it is the caller's explicit jump word if the resolving
    /// program still has one, else the start of the next block.
    AfterCall(BlockId),
    /// The instruction's own pc (the trace-ending `main` return).
    SelfPc,
}

/// Layout-independent coordinates of the most recently emitted [`TraceOp`]:
/// which static instruction it was and, for branches, where it went.
/// Everything a [`crate::TraceTemplate`] needs to re-emit the op under a
/// different [`Layout`] or a relaxed [`Program`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepMeta {
    /// Block the instruction belongs to.
    pub block: BlockId,
    /// Word index of the instruction within the block.
    pub word: u32,
    /// For literal-pool loads: index of the literal slot read, used to
    /// recompute the pool address under a new layout. Data-segment
    /// addresses are layout-independent and need no rewrite.
    pub literal_ordinal: Option<u32>,
    /// Where the branch target points, if the op is a branch.
    pub target: Option<TargetRef>,
}

/// Maximum modelled call depth; deeper calls degrade to straight-line
/// execution so the walker can never overflow its stack.
const MAX_CALL_DEPTH: usize = 64;

/// How many recent destination registers feed source-operand selection.
/// Compiled code consumes most values within a couple of instructions of
/// their production, so the window is tight — this is what makes the
/// simulated core properly sensitive to load-to-use latency.
const RECENT_DEST_CAP: usize = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Executing body instruction `pos`.
    Body,
    /// Executing the terminator word.
    Term,
    /// Executing the BBR-inserted fall-through jump.
    ExplicitJump,
}

/// An iterator that executes a [`Program`] under a [`Layout`], emitting one
/// [`TraceOp`] per dynamic instruction.
///
/// Instruction classes and register assignments are a pure function of the
/// static instruction (block id, word position) so that every dynamic
/// instance of an instruction behaves consistently; branch outcomes and
/// data addresses evolve dynamically from the trace seed.
///
/// The walker never terminates on its own for well-formed programs
/// (`main` loops); cut traces with [`Iterator::take`].
#[derive(Debug, Clone)]
pub struct TraceWalker<'a> {
    program: &'a Program,
    layout: &'a Layout,
    mix: InstrMix,
    datagen: DataGen,
    /// Seed for static per-instruction properties (class, registers).
    static_seed: u64,
    /// RNG for dynamic decisions (branch outcomes, operand choice).
    rng: StdRng,
    block: BlockId,
    pos: u32,
    phase: Phase,
    stack: Vec<BlockId>,
    recent_dests: VecDeque<u8>,
    /// Literal loads already served in the current dynamic block instance.
    literal_served: u32,
    /// Layout-independent coordinates of the last emitted op.
    meta: StepMeta,
    done: bool,
}

impl<'a> TraceWalker<'a> {
    /// Creates a walker starting at block 0.
    ///
    /// `static_seed` fixes the program's per-instruction classes and
    /// registers (choose it per workload); `trace_seed` drives dynamic
    /// behaviour (choose it per simulation).
    ///
    /// # Panics
    ///
    /// Panics if the layout does not cover the program's blocks.
    pub fn new(
        program: &'a Program,
        layout: &'a Layout,
        mix: InstrMix,
        datagen: DataGen,
        static_seed: u64,
        trace_seed: u64,
    ) -> Self {
        assert_eq!(
            layout.num_blocks(),
            program.num_blocks(),
            "layout does not match program"
        );
        TraceWalker {
            program,
            layout,
            mix,
            datagen,
            static_seed,
            rng: StdRng::seed_from_u64(trace_seed ^ 0xD51C_EBB2),
            block: 0,
            pos: 0,
            phase: Phase::Body,
            stack: Vec::new(),
            recent_dests: VecDeque::new(),
            literal_served: 0,
            meta: StepMeta::default(),
            done: false,
        }
    }

    /// Layout-independent coordinates of the op most recently returned by
    /// [`Iterator::next`]. Meaningless before the first op.
    pub fn last_step_meta(&self) -> StepMeta {
        self.meta
    }

    /// Number of blocks in the walked program.
    pub fn num_blocks(&self) -> usize {
        self.program.num_blocks()
    }

    fn static_hash(&self, pos: u32, salt: u64) -> u64 {
        let mut z = self
            .static_seed
            .wrapping_add((self.block as u64) << 24)
            .wrapping_add(u64::from(pos) << 2)
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn static_class(&self, pos: u32) -> OpClass {
        // Low-discrepancy (Weyl) assignment: within any block the classes
        // track the mix proportions closely, so even a tiny hot loop has a
        // realistic load/store fraction. The per-block hash phase keeps
        // blocks distinct; the golden-ratio stride equidistributes over
        // positions.
        let phase = (self.static_hash(0, 11) >> 11) as f64 / (1u64 << 53) as f64;
        let u = (phase + f64::from(pos) * 0.618_033_988_749_895).fract();
        self.mix.sample(u as f32)
    }

    fn static_dest(&self, pos: u32) -> u8 {
        2 + (self.static_hash(pos, 2) % 14) as u8
    }

    fn pick_src(&mut self) -> Option<u8> {
        if self.recent_dests.is_empty() {
            None
        } else {
            let idx = self.rng.gen_range(0..self.recent_dests.len());
            Some(self.recent_dests[idx])
        }
    }

    fn note_dest(&mut self, dest: u8) {
        self.recent_dests.push_back(dest);
        if self.recent_dests.len() > RECENT_DEST_CAP {
            self.recent_dests.pop_front();
        }
    }

    /// Enters `block`, resetting per-instance state.
    fn enter(&mut self, block: BlockId) {
        self.block = block;
        self.pos = 0;
        self.phase = Phase::Body;
        self.literal_served = 0;
    }

    /// Moves to the fall-through successor, via the explicit jump if the
    /// current block has one.
    fn leave_fallthrough(&mut self) -> Option<TraceOp> {
        if self.program.block(self.block).explicit_jump {
            self.phase = Phase::ExplicitJump;
            None
        } else {
            self.enter(self.block + 1);
            None
        }
    }

    fn body_op(&mut self) -> TraceOp {
        let block = self.program.block(self.block);
        let pc = self.layout.instr_addr(self.block, self.pos);
        let class = self.static_class(self.pos);
        self.meta = StepMeta {
            block: self.block,
            word: self.pos,
            literal_ordinal: None,
            target: None,
        };
        let mut op = TraceOp {
            pc,
            class,
            mem_addr: None,
            dest: None,
            src1: None,
            src2: None,
            branch: None,
            synthetic: false,
        };
        match class {
            OpClass::Load => {
                // The block's first few loads read its literal constants.
                if self.literal_served < block.literal_refs {
                    let base = self.layout.literal_addr(self.program, self.block);
                    let ordinal = self.literal_served % block.literal_refs.max(1);
                    self.meta.literal_ordinal = Some(ordinal);
                    op.mem_addr = Some(base + u64::from(ordinal) * 4);
                    self.literal_served += 1;
                } else {
                    op.mem_addr = Some(self.datagen.next_addr());
                }
                op.src1 = self.pick_src();
                let dest = self.static_dest(self.pos);
                op.dest = Some(dest);
                self.note_dest(dest);
            }
            OpClass::Store => {
                op.mem_addr = Some(self.datagen.next_addr());
                op.src1 = self.pick_src();
                op.src2 = self.pick_src();
            }
            OpClass::Branch => unreachable!("mix never produces branches"),
            _ => {
                op.src1 = self.pick_src();
                op.src2 = self.pick_src();
                let dest = self.static_dest(self.pos);
                op.dest = Some(dest);
                self.note_dest(dest);
            }
        }
        self.pos += 1;
        op
    }

    fn terminator_op(&mut self) -> Option<TraceOp> {
        let block = *self.program.block(self.block);
        let pc = self.layout.instr_addr(self.block, block.body_len);
        let current = self.block;
        self.meta = StepMeta {
            block: current,
            word: block.body_len,
            literal_ordinal: None,
            target: None,
        };
        let mut op = TraceOp {
            pc,
            class: OpClass::Branch,
            mem_addr: None,
            dest: None,
            src1: self.pick_src(),
            src2: None,
            branch: None,
            synthetic: false,
        };
        match block.terminator {
            Terminator::FallThrough => unreachable!("fall-through has no terminator word"),
            Terminator::Jump { target } => {
                self.meta.target = Some(TargetRef::Start(target));
                op.branch = Some(BranchInfo {
                    taken: true,
                    target: self.layout.block_start(target),
                });
                self.enter(target);
            }
            Terminator::CondBranch { target, taken_prob } => {
                let taken = self.rng.gen::<f32>() < taken_prob;
                self.meta.target = Some(TargetRef::Start(target));
                op.branch = Some(BranchInfo {
                    taken,
                    target: self.layout.block_start(target),
                });
                if taken {
                    self.enter(target);
                } else if block.explicit_jump {
                    self.phase = Phase::ExplicitJump;
                } else {
                    self.enter(current + 1);
                }
            }
            Terminator::Call { callee } => {
                self.meta.target = Some(TargetRef::Start(callee));
                if self.stack.len() < MAX_CALL_DEPTH {
                    op.branch = Some(BranchInfo {
                        taken: true,
                        target: self.layout.block_start(callee),
                    });
                    self.stack.push(current);
                    self.enter(callee);
                } else {
                    // Depth cap: degrade the call to a fall-through.
                    op.branch = Some(BranchInfo {
                        taken: false,
                        target: self.layout.block_start(callee),
                    });
                    if block.explicit_jump {
                        self.phase = Phase::ExplicitJump;
                    } else {
                        self.enter(current + 1);
                    }
                }
            }
            Terminator::Return => match self.stack.pop() {
                Some(caller) => {
                    self.meta.target = Some(TargetRef::AfterCall(caller));
                    let caller_block = self.program.block(caller);
                    // Control resumes right after the call word: at the
                    // caller's explicit jump if present, else at the next
                    // block.
                    let target = if caller_block.explicit_jump {
                        self.layout.instr_addr(caller, caller_block.body_len + 1)
                    } else {
                        self.layout.block_start(caller + 1)
                    };
                    op.branch = Some(BranchInfo {
                        taken: true,
                        target,
                    });
                    if caller_block.explicit_jump {
                        self.block = caller;
                        self.phase = Phase::ExplicitJump;
                        self.literal_served = 0;
                    } else {
                        self.enter(caller + 1);
                    }
                }
                None => {
                    // main returned (cannot happen for generated programs,
                    // but end the trace gracefully for hand-built ones).
                    self.meta.target = Some(TargetRef::SelfPc);
                    self.done = true;
                    op.branch = Some(BranchInfo {
                        taken: true,
                        target: pc,
                    });
                }
            },
        }
        Some(op)
    }

    fn explicit_jump_op(&mut self) -> TraceOp {
        let block = self.program.block(self.block);
        // The inserted jump sits after the body and any terminator word.
        let word = block.body_len + block.terminator.words();
        let pc = self.layout.instr_addr(self.block, word);
        let target_block = self.block + 1;
        self.meta = StepMeta {
            block: self.block,
            word,
            literal_ordinal: None,
            target: Some(TargetRef::Start(target_block)),
        };
        let op = TraceOp {
            pc,
            class: OpClass::Branch,
            mem_addr: None,
            dest: None,
            src1: None,
            src2: None,
            branch: Some(BranchInfo {
                taken: true,
                target: self.layout.block_start(target_block),
            }),
            synthetic: true,
        };
        self.enter(target_block);
        op
    }
}

impl Iterator for TraceWalker<'_> {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        // A bounded number of silent transitions (fall-throughs) can occur
        // before an instruction is produced.
        for _ in 0..1_000_000 {
            if self.done {
                return None;
            }
            match self.phase {
                Phase::Body => {
                    if self.pos < self.program.block(self.block).body_len {
                        return Some(self.body_op());
                    }
                    if self.program.block(self.block).terminator == Terminator::FallThrough {
                        if let Some(op) = self.leave_fallthrough() {
                            return Some(op);
                        }
                    } else {
                        self.phase = Phase::Term;
                    }
                }
                Phase::Term => return self.terminator_op(),
                Phase::ExplicitJump => return Some(self.explicit_jump_op()),
            }
        }
        panic!("trace walker made no progress over 1M transitions");
    }
}

#[cfg(test)]
// Tests build one-function programs, whose span list really is `vec![0..n]`.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;
    use crate::{Block, DataParams, ProgramSpec};
    use rand::SeedableRng;

    fn params() -> DataParams {
        DataParams {
            spatial: 0.5,
            reuse: 0.7,
            ws_blocks: 32,
            scattered: false,
            churn: 0.25,
            footprint_blocks: 100_000,
        }
    }

    fn walker_for<'a>(program: &'a Program, layout: &'a Layout, seed: u64) -> TraceWalker<'a> {
        TraceWalker::new(
            program,
            layout,
            InstrMix::integer_heavy(),
            DataGen::new(params(), seed),
            7,
            seed,
        )
    }

    fn generated() -> Program {
        // The fixture seed is RNG-stream dependent: it must produce a
        // program whose dynamic branch fraction sits in the typical band
        // (most seeds do; a few tail draws generate one dominant
        // straight-line loop).
        ProgramSpec::default().generate(&mut StdRng::seed_from_u64(4))
    }

    #[test]
    fn trace_is_deterministic() {
        let p = generated();
        let l = Layout::sequential(&p);
        let a: Vec<TraceOp> = walker_for(&p, &l, 3).take(5000).collect();
        let b: Vec<TraceOp> = walker_for(&p, &l, 3).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let p = generated();
        let l = Layout::sequential(&p);
        let a: Vec<TraceOp> = walker_for(&p, &l, 3).take(2000).collect();
        let b: Vec<TraceOp> = walker_for(&p, &l, 4).take(2000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn pcs_stay_within_image() {
        let p = generated();
        let l = Layout::sequential(&p);
        for op in walker_for(&p, &l, 1).take(20_000) {
            assert!(
                op.pc < l.end(),
                "pc {:#x} beyond image {:#x}",
                op.pc,
                l.end()
            );
            assert_eq!(op.pc % 4, 0);
        }
    }

    #[test]
    fn branch_ops_only_from_terminators() {
        let p = generated();
        let l = Layout::sequential(&p);
        for op in walker_for(&p, &l, 1).take(20_000) {
            assert_eq!(op.class == OpClass::Branch, op.branch.is_some());
        }
    }

    #[test]
    fn mem_ops_have_addresses() {
        let p = generated();
        let l = Layout::sequential(&p);
        let mut loads = 0;
        let mut stores = 0;
        for op in walker_for(&p, &l, 1).take(20_000) {
            match op.class {
                OpClass::Load | OpClass::Store => {
                    assert!(op.mem_addr.is_some());
                    if op.class == OpClass::Load {
                        loads += 1;
                    } else {
                        stores += 1;
                    }
                }
                _ => assert!(op.mem_addr.is_none()),
            }
        }
        assert!(loads > 2000, "expected plenty of loads, got {loads}");
        assert!(stores > 500, "expected plenty of stores, got {stores}");
    }

    #[test]
    fn branch_fraction_matches_block_structure() {
        let p = generated();
        let l = Layout::sequential(&p);
        let n = 50_000;
        let branches = walker_for(&p, &l, 2)
            .take(n)
            .filter(|op| op.class == OpClass::Branch)
            .count();
        let frac = branches as f64 / n as f64;
        assert!((0.08..0.35).contains(&frac), "branch fraction {frac}");
    }

    #[test]
    fn hand_built_call_and_return_sequence() {
        // main: b0 (1 instr, call f1), b1 (1 instr, jump b0)
        // f1:   b2 (1 instr, return)
        let blocks = vec![
            Block::with_terminator(1, Terminator::Call { callee: 2 }),
            Block::with_terminator(1, Terminator::Jump { target: 0 }),
            Block::with_terminator(1, Terminator::Return),
        ];
        let p = Program::new(blocks, vec![0..2, 2..3], vec![0, 0]).unwrap();
        let l = Layout::sequential(&p);
        let ops: Vec<TraceOp> = walker_for(&p, &l, 0).take(8).collect();
        // Sequence: b0 body, call, b2 body, return, b1 body, jump, b0 body…
        assert_eq!(ops[1].class, OpClass::Branch);
        assert_eq!(ops[1].branch.unwrap().target, l.block_start(2));
        assert_eq!(ops[3].class, OpClass::Branch);
        assert_eq!(ops[3].branch.unwrap().target, l.block_start(1));
        assert_eq!(ops[5].branch.unwrap().target, l.block_start(0));
        assert_eq!(ops[6].pc, l.block_start(0));
    }

    #[test]
    fn explicit_jump_executes_on_fallthrough_path() {
        let mut b0 = Block::with_terminator(
            1,
            Terminator::CondBranch {
                target: 2,
                taken_prob: 0.0, // never taken → must use the inserted jump
            },
        );
        b0.explicit_jump = true;
        let blocks = vec![
            b0,
            Block::with_terminator(1, Terminator::Jump { target: 0 }),
            Block::with_terminator(1, Terminator::Jump { target: 0 }),
        ];
        let p = Program::new(blocks, vec![0..3], vec![0]).unwrap();
        let l = Layout::sequential(&p);
        let ops: Vec<TraceOp> = walker_for(&p, &l, 0).take(4).collect();
        // b0 body, cond branch (not taken), inserted jump (taken to b1), b1 body.
        let cond = ops[1].branch.unwrap();
        assert!(!cond.taken);
        let jump = ops[2].branch.unwrap();
        assert!(jump.taken);
        assert_eq!(jump.target, l.block_start(1));
        assert_eq!(ops[2].pc, l.instr_addr(0, 2));
        assert_eq!(ops[3].pc, l.block_start(1));
    }

    #[test]
    fn main_return_ends_trace() {
        let blocks = vec![Block::with_terminator(1, Terminator::Return)];
        let p = Program::new(blocks, vec![0..1], vec![0]).unwrap();
        let l = Layout::sequential(&p);
        let ops: Vec<TraceOp> = walker_for(&p, &l, 0).collect();
        assert_eq!(ops.len(), 2); // one body op + the return
    }

    #[test]
    fn call_depth_cap_degrades_to_fallthrough() {
        // f1 recurses... the generator never builds recursion, so craft a
        // call chain main -> f1 where f1 calls itself via main? Calls may
        // only target entries; build main(b0 call f1, b1 jump b0) and
        // f1(b2 call f1 — illegal self target? f1's entry IS b2, legal) —
        // infinite recursion, capped by MAX_CALL_DEPTH.
        let blocks = vec![
            Block::with_terminator(1, Terminator::Call { callee: 2 }),
            Block::with_terminator(1, Terminator::Jump { target: 0 }),
            Block::with_terminator(1, Terminator::Call { callee: 2 }),
            Block::with_terminator(1, Terminator::Return),
        ];
        let p = Program::new(blocks, vec![0..2, 2..4], vec![0, 0]).unwrap();
        let l = Layout::sequential(&p);
        // Must not overflow and must keep producing instructions.
        let ops: Vec<TraceOp> = walker_for(&p, &l, 0).take(5000).collect();
        assert_eq!(ops.len(), 5000);
        // Depth-capped calls are emitted as not-taken branches.
        assert!(ops
            .iter()
            .any(|op| op.branch.map(|b| !b.taken).unwrap_or(false)));
    }

    #[test]
    fn zero_body_blocks_are_legal() {
        let blocks = vec![
            Block::with_terminator(0, Terminator::Jump { target: 1 }),
            Block::with_terminator(2, Terminator::Jump { target: 0 }),
        ];
        let p = Program::new(blocks, vec![0..2], vec![0]).unwrap();
        let l = Layout::sequential(&p);
        let ops: Vec<TraceOp> = walker_for(&p, &l, 0).take(10).collect();
        assert_eq!(ops.len(), 10);
        assert_eq!(ops[0].class, OpClass::Branch); // empty body: jump only
    }

    #[test]
    fn literal_loads_target_code_segment() {
        let mut b0 = Block::with_terminator(4, Terminator::Jump { target: 0 });
        b0.literal_refs = 2;
        let p = Program::new(vec![b0], vec![0..1], vec![2]).unwrap();
        let l = Layout::sequential(&p);
        let mut found_literal_load = false;
        for op in walker_for(&p, &l, 5).take(200) {
            if op.class == OpClass::Load && op.mem_addr.unwrap() < crate::DATA_SEGMENT_BASE {
                found_literal_load = true;
                assert!(op.mem_addr.unwrap() >= l.literal_addr(&p, 0));
            }
        }
        assert!(found_literal_load, "no literal loads observed");
    }
}
