//! Random structured-program generation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Block, Program, Terminator};

/// Parameters for synthesizing a program CFG.
///
/// Defaults follow the literature the paper cites: mean basic-block body
/// around 4–5 instructions (≈ 5–6 including the terminator), loop
/// back-edges taken ≈ 85 % of the time.
///
/// # Example
///
/// ```rust
/// use dvs_workloads::ProgramSpec;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let program = ProgramSpec::default().generate(&mut rng);
/// assert!(program.num_blocks() > 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramSpec {
    /// Number of functions including `main`.
    pub functions: u32,
    /// Minimum blocks per function (≥ 2).
    pub min_blocks_per_function: u32,
    /// Maximum blocks per function.
    pub max_blocks_per_function: u32,
    /// Mean body length (non-control instructions per block).
    pub mean_body_len: f64,
    /// Hard cap on body length.
    pub max_body_len: u32,
    /// Per-block probability of ending in a loop back-edge.
    pub loop_prob: f64,
    /// Per-block probability of ending in a forward conditional branch.
    pub diamond_prob: f64,
    /// Per-block probability of ending in a call (to a later function).
    pub call_prob: f64,
    /// Probability a loop back-edge is taken on each dynamic execution.
    pub loop_taken_prob: f32,
    /// Per-block probability of referencing literal-pool constants.
    pub literal_ref_prob: f64,
}

impl Default for ProgramSpec {
    fn default() -> Self {
        ProgramSpec {
            functions: 8,
            min_blocks_per_function: 6,
            max_blocks_per_function: 24,
            mean_body_len: 4.5,
            max_body_len: 24,
            loop_prob: 0.22,
            diamond_prob: 0.22,
            call_prob: 0.10,
            loop_taken_prob: 0.92,
            literal_ref_prob: 0.15,
        }
    }
}

impl ProgramSpec {
    /// Generates a valid program from this spec.
    ///
    /// The CFG is loop-rich but recursion-free: calls only target
    /// later-indexed functions, and `main`'s last block jumps back to its
    /// entry so traces of any length can be drawn.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero functions, min > max, or
    /// fewer than 2 blocks per function).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Program {
        assert!(self.functions >= 1, "need at least one function");
        assert!(
            self.min_blocks_per_function >= 2
                && self.min_blocks_per_function <= self.max_blocks_per_function,
            "blocks-per-function range invalid"
        );
        // First pass: choose per-function block counts so entry ids are
        // known before terminators are drawn.
        let counts: Vec<usize> = (0..self.functions)
            .map(|_| {
                rng.gen_range(
                    self.min_blocks_per_function as usize..=self.max_blocks_per_function as usize,
                )
            })
            .collect();
        let mut entries = Vec::with_capacity(counts.len());
        let mut base = 0usize;
        for &c in &counts {
            entries.push(base);
            base += c;
        }

        let mut blocks = Vec::with_capacity(base);
        let mut functions = Vec::with_capacity(counts.len());
        let mut pool_words = Vec::with_capacity(counts.len());
        for (f, &count) in counts.iter().enumerate() {
            let start = entries[f];
            let mut pool = 0u32;
            for i in 0..count {
                let body_len = self.sample_body_len(rng);
                let terminator = if i == count - 1 {
                    if f == 0 {
                        // main loops forever; traces are cut by budget.
                        Terminator::Jump { target: start }
                    } else {
                        Terminator::Return
                    }
                } else {
                    self.sample_terminator(rng, f, i, start, count, &entries)
                };
                let mut block = Block::with_terminator(body_len, terminator);
                if rng.gen::<f64>() < self.literal_ref_prob {
                    block.literal_refs = rng.gen_range(1..=2);
                    pool += block.literal_refs;
                }
                blocks.push(block);
            }
            functions.push(start..start + count);
            pool_words.push(pool);
        }
        Program::new(blocks, functions, pool_words)
            .expect("generator produces structurally valid programs")
    }

    fn sample_body_len<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        // Shifted geometric-like distribution with the requested mean.
        let extra = -(1.0 - rng.gen::<f64>()).ln() * (self.mean_body_len - 1.0).max(0.0);
        (1 + extra as u32).min(self.max_body_len)
    }

    fn sample_terminator<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        f: usize,
        i: usize,
        start: usize,
        count: usize,
        entries: &[usize],
    ) -> Terminator {
        let id = start + i;
        let u = rng.gen::<f64>();
        let can_loop = i > 0;
        let can_diamond = i + 2 < count;
        let can_call = f + 1 < entries.len() && i + 1 < count;
        if u < self.loop_prob && can_loop {
            // Back-edge to a uniformly chosen earlier block of the function.
            let target = start + rng.gen_range(0..i);
            Terminator::CondBranch {
                target,
                taken_prob: self.loop_taken_prob,
            }
        } else if u < self.loop_prob + self.diamond_prob && can_diamond {
            // Forward branch skipping one or two blocks. Real branches are
            // strongly biased (bimodal predictors reach ~90 % accuracy), so
            // draw the taken probability from the tails.
            let skip = rng.gen_range(2..=2.max((count - 1 - i).min(3)));
            let bias = rng.gen_range(0.03f32..0.15);
            Terminator::CondBranch {
                target: id + skip,
                taken_prob: if rng.gen::<bool>() { bias } else { 1.0 - bias },
            }
        } else if u < self.loop_prob + self.diamond_prob + self.call_prob && can_call {
            // Call a strictly later function: the call graph is a DAG.
            let callee_fn = rng.gen_range(f + 1..entries.len());
            Terminator::Call {
                callee: entries[callee_fn],
            }
        } else {
            Terminator::FallThrough
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_valid_programs_across_seeds() {
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = ProgramSpec::default().generate(&mut rng);
            assert!(p.num_blocks() >= 6 * 8);
            // Program::new already validated; re-validate round-trip.
            let rebuilt = Program::new(
                p.blocks().to_vec(),
                p.functions().to_vec(),
                p.pool_words().to_vec(),
            );
            assert!(rebuilt.is_ok(), "seed {seed} produced invalid program");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ProgramSpec::default().generate(&mut StdRng::seed_from_u64(5));
        let b = ProgramSpec::default().generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn mean_block_size_is_plausible() {
        // Papers report mean basic-block size ≈ 5–6 instructions; check
        // the generator's code-word mean lands in a sane band.
        let mut rng = StdRng::seed_from_u64(1);
        let spec = ProgramSpec {
            functions: 20,
            ..ProgramSpec::default()
        };
        let p = spec.generate(&mut rng);
        let sizes = p.block_sizes();
        let mean = sizes.iter().map(|&s| f64::from(s)).sum::<f64>() / sizes.len() as f64;
        assert!((3.5..8.0).contains(&mean), "mean block size {mean}");
    }

    #[test]
    fn main_last_block_loops_to_entry() {
        let p = ProgramSpec::default().generate(&mut StdRng::seed_from_u64(3));
        let main = &p.functions()[0];
        assert_eq!(
            p.block(main.end - 1).terminator,
            Terminator::Jump { target: 0 }
        );
    }

    #[test]
    fn non_main_functions_return() {
        let p = ProgramSpec::default().generate(&mut StdRng::seed_from_u64(3));
        for range in &p.functions()[1..] {
            assert_eq!(p.block(range.end - 1).terminator, Terminator::Return);
        }
    }

    #[test]
    fn single_function_program_has_no_calls() {
        let spec = ProgramSpec {
            functions: 1,
            ..ProgramSpec::default()
        };
        let p = spec.generate(&mut StdRng::seed_from_u64(7));
        assert!(!p
            .blocks()
            .iter()
            .any(|b| matches!(b.terminator, Terminator::Call { .. })));
    }

    #[test]
    #[should_panic(expected = "range invalid")]
    fn degenerate_spec_panics() {
        let spec = ProgramSpec {
            min_blocks_per_function: 1,
            ..ProgramSpec::default()
        };
        let _ = spec.generate(&mut StdRng::seed_from_u64(0));
    }
}
