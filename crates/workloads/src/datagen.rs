//! Data-address stream generator calibrated to spatial locality and word
//! reuse targets.
//!
//! The paper's Figure 3 characterizes each benchmark by two per-interval
//! quantities measured on its data accesses:
//!
//! * **spatial locality** — the fraction of each touched cache block's
//!   words the application actually uses;
//! * **word reuse rate** — the fraction of accesses that repeat an
//!   already-touched word.
//!
//! [`DataGen`] produces an address stream whose measured statistics land
//! on a requested `(spatial, reuse)` point: new words are drawn from a
//! working set of blocks with only `spatial × words_per_block` usable
//! word slots each, and with probability `reuse` the next access repeats a
//! recently touched word instead.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::DATA_SEGMENT_BASE;

/// Words per data cache block (32 B blocks of 4 B words, Table I).
const WORDS_PER_BLOCK: u32 = 8;

/// Calibration parameters for a benchmark's data-access behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataParams {
    /// Target fraction of words used per touched block, in `(0, 1]`.
    pub spatial: f64,
    /// Target fraction of repeated word accesses, in `[0, 1)`.
    pub reuse: f64,
    /// Blocks in the active working set at any time.
    pub ws_blocks: u32,
    /// Whether used word slots are scattered within a block (pointer-heavy
    /// codes) rather than a contiguous run (streaming codes).
    pub scattered: bool,
    /// Fraction of the working set replaced when it is exhausted, in
    /// `(0, 1]`; smaller values mean a more stable footprint.
    pub churn: f64,
    /// Total distinct data blocks the benchmark ever touches. The working
    /// set cycles through this footprint, so a kernel with a small
    /// footprint becomes cache-resident after warm-up while a large one
    /// keeps missing — this is what separates the MiBench kernels from
    /// mcf/libquantum in the paper's Figure 11 baseline.
    pub footprint_blocks: u64,
}

impl DataParams {
    /// Validates the parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range.
    fn validate(&self) {
        assert!(
            self.spatial > 0.0 && self.spatial <= 1.0,
            "spatial {} outside (0, 1]",
            self.spatial
        );
        assert!(
            (0.0..1.0).contains(&self.reuse),
            "reuse {} outside [0, 1)",
            self.reuse
        );
        assert!(self.ws_blocks > 0, "working set must be nonempty");
        assert!(
            self.churn > 0.0 && self.churn <= 1.0,
            "churn {} outside (0, 1]",
            self.churn
        );
        assert!(
            self.footprint_blocks >= u64::from(self.ws_blocks),
            "footprint ({}) smaller than the working set ({})",
            self.footprint_blocks,
            self.ws_blocks
        );
    }

    /// Word slots used per block under these parameters.
    pub fn words_per_block_used(&self) -> u32 {
        ((self.spatial * f64::from(WORDS_PER_BLOCK)).round() as u32).clamp(1, WORDS_PER_BLOCK)
    }
}

/// A deterministic data-address stream hitting a `(spatial, reuse)` target.
///
/// # Example
///
/// ```rust
/// use dvs_workloads::{DataGen, DataParams};
///
/// let params = DataParams {
///     spatial: 0.5,
///     reuse: 0.8,
///     ws_blocks: 64,
///     scattered: false,
///     churn: 0.25,
///     footprint_blocks: 4096,
/// };
/// let mut gen = DataGen::new(params, 7);
/// let a = gen.next_addr();
/// assert_eq!(a % 4, 0); // word-aligned
/// ```
#[derive(Debug, Clone)]
pub struct DataGen {
    params: DataParams,
    rng: StdRng,
    /// Next block number to allocate when the working set churns.
    next_block: u64,
    /// Fresh `(block, word)` pairs not yet touched, in visit order.
    fresh: VecDeque<(u64, u32)>,
    /// Recently touched `(block, word)` pairs, most recent at the back.
    recent: VecDeque<(u64, u32)>,
    /// Blocks currently in the working set, oldest first.
    active_blocks: VecDeque<u64>,
}

/// How many recently touched words are candidates for reuse.
const RECENT_CAP: usize = 512;

impl DataGen {
    /// Creates a generator; streams are deterministic per `(params, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `params` are out of range (see [`DataParams`]).
    pub fn new(params: DataParams, seed: u64) -> Self {
        params.validate();
        let mut gen = DataGen {
            params,
            rng: StdRng::seed_from_u64(seed),
            next_block: 0,
            fresh: VecDeque::new(),
            recent: VecDeque::new(),
            active_blocks: VecDeque::new(),
        };
        gen.refill(params.ws_blocks as usize);
        gen
    }

    /// The parameters in force.
    pub fn params(&self) -> &DataParams {
        &self.params
    }

    fn word_slots_for_block(&mut self) -> Vec<u32> {
        // The used words of a block are a contiguous run with a random
        // start: struct fields cluster at the object head, stream buffers
        // are prefixes of a line. (`scattered` controls the *visit order*
        // across blocks, not the slot shape — a contiguous used-run is
        // what makes the paper's fault-free *window* able to capture a
        // low-spatial-locality footprint at all.)
        let k = self.params.words_per_block_used();
        let start = self.rng.gen_range(0..=WORDS_PER_BLOCK - k);
        (start..start + k).collect()
    }

    /// Adds `n` new blocks to the working set and queues their usable
    /// word slots as fresh pairs.
    fn refill(&mut self, n: usize) {
        let mut pairs = Vec::new();
        for _ in 0..n {
            // Cycle through the benchmark's bounded footprint.
            let block = self.next_block % self.params.footprint_blocks;
            self.next_block += 1;
            self.active_blocks.push_back(block);
            if self.active_blocks.len() > self.params.ws_blocks as usize {
                self.active_blocks.pop_front();
            }
            for w in self.word_slots_for_block() {
                pairs.push((block, w));
            }
        }
        if self.params.scattered {
            // Interleave across blocks so spatial use builds up gradually.
            for i in (1..pairs.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                pairs.swap(i, j);
            }
        }
        self.fresh.extend(pairs);
    }

    /// Produces the next `(block_number, word_offset)` pair.
    pub fn next_access(&mut self) -> (u64, u32) {
        let want_reuse = !self.recent.is_empty() && self.rng.gen::<f64>() < self.params.reuse;
        let pair = if want_reuse {
            // Bias towards the most recently used words (temporal locality
            // decays): geometric over recency rank.
            let mut idx = 0usize;
            while idx + 1 < self.recent.len() && self.rng.gen::<f64>() < 0.75 {
                idx += 1;
            }
            let back = self.recent.len() - 1 - idx;
            self.recent[back]
        } else {
            if self.fresh.is_empty() {
                let churn_blocks =
                    ((self.params.ws_blocks as f64 * self.params.churn).ceil() as usize).max(1);
                self.refill(churn_blocks);
            }
            self.fresh.pop_front().expect("refill produced pairs")
        };
        self.recent.push_back(pair);
        if self.recent.len() > RECENT_CAP {
            self.recent.pop_front();
        }
        pair
    }

    /// Produces the next access as a byte address in the data segment.
    pub fn next_addr(&mut self) -> u64 {
        let (block, word) = self.next_access();
        DATA_SEGMENT_BASE + block * u64::from(WORDS_PER_BLOCK) * 4 + u64::from(word) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn measure(params: DataParams, n: usize) -> (f64, f64) {
        // Re-implements the Figure 3 metrics over one long interval.
        let mut gen = DataGen::new(params, 42);
        let mut per_block: HashMap<u64, HashSet<u32>> = HashMap::new();
        let mut unique = 0usize;
        for _ in 0..n {
            let (b, w) = gen.next_access();
            if per_block.entry(b).or_default().insert(w) {
                unique += 1;
            }
        }
        let spatial = per_block
            .values()
            .map(|s| s.len() as f64 / f64::from(WORDS_PER_BLOCK))
            .sum::<f64>()
            / per_block.len() as f64;
        let reuse = 1.0 - unique as f64 / n as f64;
        (spatial, reuse)
    }

    #[test]
    fn hits_low_spatial_high_reuse_target() {
        let params = DataParams {
            spatial: 0.4,
            reuse: 0.85,
            ws_blocks: 64,
            scattered: true,
            churn: 0.25,
            footprint_blocks: 100_000,
        };
        let (s, r) = measure(params, 40_000);
        assert!((s - 0.4).abs() < 0.12, "spatial {s}");
        assert!((r - 0.85).abs() < 0.05, "reuse {r}");
    }

    #[test]
    fn hits_high_spatial_low_reuse_target() {
        let params = DataParams {
            spatial: 0.95,
            reuse: 0.3,
            ws_blocks: 64,
            scattered: false,
            churn: 0.5,
            footprint_blocks: 100_000,
        };
        let (s, r) = measure(params, 40_000);
        assert!(s > 0.8, "spatial {s}");
        assert!((r - 0.3).abs() < 0.08, "reuse {r}");
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let params = DataParams {
            spatial: 0.5,
            reuse: 0.7,
            ws_blocks: 32,
            scattered: false,
            churn: 0.25,
            footprint_blocks: 100_000,
        };
        let a: Vec<u64> = {
            let mut g = DataGen::new(params, 1);
            (0..1000).map(|_| g.next_addr()).collect()
        };
        let b: Vec<u64> = {
            let mut g = DataGen::new(params, 1);
            (0..1000).map(|_| g.next_addr()).collect()
        };
        let c: Vec<u64> = {
            let mut g = DataGen::new(params, 2);
            (0..1000).map(|_| g.next_addr()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn addresses_live_in_data_segment_and_are_word_aligned() {
        let params = DataParams {
            spatial: 0.6,
            reuse: 0.6,
            ws_blocks: 16,
            scattered: true,
            churn: 0.5,
            footprint_blocks: 100_000,
        };
        let mut g = DataGen::new(params, 3);
        for _ in 0..1000 {
            let a = g.next_addr();
            assert!(a >= DATA_SEGMENT_BASE);
            assert_eq!(a % 4, 0);
        }
    }

    #[test]
    fn contiguous_slots_for_streaming() {
        let params = DataParams {
            spatial: 0.5,
            reuse: 0.0,
            ws_blocks: 4,
            scattered: false,
            churn: 1.0,
            footprint_blocks: 100_000,
        };
        let mut g = DataGen::new(params, 9);
        // Collect the word set of the first block touched; must be a run.
        let mut per_block: HashMap<u64, Vec<u32>> = HashMap::new();
        for _ in 0..64 {
            let (b, w) = g.next_access();
            per_block.entry(b).or_default().push(w);
        }
        for words in per_block.values() {
            let mut sorted = words.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let contiguous = sorted.windows(2).all(|p| p[1] == p[0] + 1);
            assert!(contiguous, "expected contiguous run, got {sorted:?}");
        }
    }

    #[test]
    #[should_panic(expected = "spatial")]
    fn rejects_zero_spatial() {
        let params = DataParams {
            spatial: 0.0,
            reuse: 0.5,
            ws_blocks: 4,
            scattered: false,
            churn: 0.5,
            footprint_blocks: 100_000,
        };
        let _ = DataGen::new(params, 0);
    }

    #[test]
    fn words_per_block_used_clamps() {
        let p = DataParams {
            spatial: 0.05,
            reuse: 0.0,
            ws_blocks: 1,
            scattered: false,
            churn: 1.0,
            footprint_blocks: 100_000,
        };
        assert_eq!(p.words_per_block_used(), 1);
        let q = DataParams { spatial: 1.0, ..p };
        assert_eq!(q.words_per_block_used(), 8);
    }
}
