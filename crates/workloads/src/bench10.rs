//! The ten benchmarks of the paper's evaluation (Section V).

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use dvs_sram::montecarlo::trial_seed;

use crate::{DataGen, DataParams, InstrMix, Layout, Program, ProgramSpec, TraceWalker};

/// The 4 SPEC CPU2006 and 6 MiBench benchmarks the paper evaluates,
/// reproduced as calibrated synthetic generators (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// 401.bzip2 — compression; moderate spatial locality and reuse.
    Bzip2,
    /// 429.mcf — sparse network simplex; poor spatial locality, high reuse,
    /// large data footprint.
    Mcf,
    /// 456.hmmer — profile HMM search; low spatial locality, high reuse.
    Hmmer,
    /// 462.libquantum — streaming over large vectors; the paper's one
    /// high-spatial / low-reuse outlier.
    Libquantum,
    /// MiBench basicmath — scalar FP math; low spatial locality, high reuse.
    Basicmath,
    /// MiBench qsort — comparison sorting; moderate locality, high reuse.
    Qsort,
    /// MiBench patricia — trie lookups; poorest spatial locality, highest
    /// reuse.
    Patricia,
    /// MiBench dijkstra — graph shortest paths; low spatial locality, high
    /// reuse.
    Dijkstra,
    /// MiBench crc32 — byte-stream checksum; high spatial locality, high
    /// reuse (table lookups).
    Crc32,
    /// MiBench adpcm — audio codec; high spatial locality, moderate reuse.
    Adpcm,
}

impl Benchmark {
    /// All ten benchmarks in the paper's order.
    pub const ALL: [Benchmark; 10] = [
        Benchmark::Bzip2,
        Benchmark::Mcf,
        Benchmark::Hmmer,
        Benchmark::Libquantum,
        Benchmark::Basicmath,
        Benchmark::Qsort,
        Benchmark::Patricia,
        Benchmark::Dijkstra,
        Benchmark::Crc32,
        Benchmark::Adpcm,
    ];

    /// The paper's name for the benchmark.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bzip2 => "401.bzip2",
            Benchmark::Mcf => "429.mcf",
            Benchmark::Hmmer => "456.hmmer",
            Benchmark::Libquantum => "462.libquantum",
            Benchmark::Basicmath => "basicmath",
            Benchmark::Qsort => "qsort",
            Benchmark::Patricia => "patricia",
            Benchmark::Dijkstra => "dijkstra",
            Benchmark::Crc32 => "crc32",
            Benchmark::Adpcm => "adpcm",
        }
    }

    /// Data-side calibration targets, set from the paper's Figure 3
    /// description of each benchmark.
    pub fn data_params(self) -> DataParams {
        match self {
            Benchmark::Bzip2 => DataParams {
                spatial: 0.65,
                reuse: 0.65,
                ws_blocks: 512,
                scattered: false,
                churn: 0.30,
                footprint_blocks: 6144,
            },
            Benchmark::Mcf => DataParams {
                spatial: 0.35,
                reuse: 0.85,
                ws_blocks: 2048,
                scattered: true,
                churn: 0.15,
                footprint_blocks: 24576,
            },
            Benchmark::Hmmer => DataParams {
                spatial: 0.45,
                reuse: 0.85,
                ws_blocks: 256,
                scattered: true,
                churn: 0.20,
                footprint_blocks: 2048,
            },
            Benchmark::Libquantum => DataParams {
                spatial: 0.95,
                reuse: 0.30,
                ws_blocks: 1024,
                scattered: false,
                churn: 0.80,
                footprint_blocks: 32768,
            },
            Benchmark::Basicmath => DataParams {
                spatial: 0.40,
                reuse: 0.82,
                ws_blocks: 96,
                scattered: true,
                churn: 0.25,
                footprint_blocks: 224,
            },
            Benchmark::Qsort => DataParams {
                spatial: 0.50,
                reuse: 0.80,
                ws_blocks: 256,
                scattered: true,
                churn: 0.25,
                footprint_blocks: 640,
            },
            Benchmark::Patricia => DataParams {
                spatial: 0.35,
                reuse: 0.88,
                ws_blocks: 384,
                scattered: true,
                churn: 0.20,
                footprint_blocks: 896,
            },
            Benchmark::Dijkstra => DataParams {
                spatial: 0.45,
                reuse: 0.85,
                ws_blocks: 256,
                scattered: true,
                churn: 0.20,
                footprint_blocks: 640,
            },
            Benchmark::Crc32 => DataParams {
                spatial: 0.70,
                reuse: 0.75,
                ws_blocks: 128,
                scattered: false,
                churn: 0.50,
                footprint_blocks: 256,
            },
            Benchmark::Adpcm => DataParams {
                spatial: 0.62,
                reuse: 0.70,
                ws_blocks: 128,
                scattered: false,
                churn: 0.40,
                footprint_blocks: 320,
            },
        }
    }

    /// Instruction mix.
    pub fn mix(self) -> InstrMix {
        match self {
            Benchmark::Mcf | Benchmark::Qsort | Benchmark::Patricia | Benchmark::Dijkstra => {
                InstrMix::integer_heavy()
            }
            Benchmark::Hmmer | Benchmark::Basicmath => InstrMix::float_heavy(),
            Benchmark::Bzip2 | Benchmark::Libquantum | Benchmark::Crc32 | Benchmark::Adpcm => {
                InstrMix::streaming()
            }
        }
    }

    /// CFG shape: the SPEC codes are larger than the 8K-word L1 I-cache,
    /// the MiBench kernels fit comfortably (the property BBR relies on).
    pub fn program_spec(self) -> ProgramSpec {
        let base = ProgramSpec::default();
        match self {
            Benchmark::Bzip2 => ProgramSpec {
                functions: 72,
                min_blocks_per_function: 12,
                max_blocks_per_function: 32,
                ..base
            },
            Benchmark::Mcf => ProgramSpec {
                functions: 64,
                min_blocks_per_function: 10,
                max_blocks_per_function: 28,
                ..base
            },
            Benchmark::Hmmer => ProgramSpec {
                functions: 48,
                min_blocks_per_function: 10,
                max_blocks_per_function: 28,
                ..base
            },
            Benchmark::Libquantum => ProgramSpec {
                functions: 14,
                min_blocks_per_function: 8,
                max_blocks_per_function: 20,
                ..base
            },
            Benchmark::Basicmath => ProgramSpec {
                functions: 12,
                min_blocks_per_function: 6,
                max_blocks_per_function: 24,
                ..base
            },
            Benchmark::Qsort => ProgramSpec {
                functions: 10,
                min_blocks_per_function: 6,
                max_blocks_per_function: 20,
                ..base
            },
            Benchmark::Patricia => ProgramSpec {
                functions: 12,
                min_blocks_per_function: 6,
                max_blocks_per_function: 22,
                ..base
            },
            Benchmark::Dijkstra => ProgramSpec {
                functions: 10,
                min_blocks_per_function: 6,
                max_blocks_per_function: 20,
                ..base
            },
            Benchmark::Crc32 => ProgramSpec {
                functions: 6,
                min_blocks_per_function: 4,
                max_blocks_per_function: 12,
                ..base
            },
            Benchmark::Adpcm => ProgramSpec {
                functions: 8,
                min_blocks_per_function: 4,
                max_blocks_per_function: 14,
                ..base
            },
        }
    }

    /// Builds the benchmark's program and calibration into a [`Workload`].
    pub fn build(self, seed: u64) -> Workload {
        let program_seed = trial_seed(seed, self as u64);
        let program = self
            .program_spec()
            .generate(&mut StdRng::seed_from_u64(program_seed));
        Workload {
            benchmark: self,
            program,
            static_seed: trial_seed(program_seed, 1),
            base_seed: seed,
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A built benchmark: its program plus everything needed to draw traces.
#[derive(Debug, Clone)]
pub struct Workload {
    benchmark: Benchmark,
    program: Program,
    static_seed: u64,
    base_seed: u64,
}

impl Workload {
    /// Which benchmark this is.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The (untransformed) program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Draws a trace of the workload's own program under `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `layout` was not built for this workload's program.
    pub fn trace<'a>(&'a self, layout: &'a Layout, trace_seed: u64) -> TraceWalker<'a> {
        self.trace_program(&self.program, layout, trace_seed)
    }

    /// Draws a trace of `program` (e.g. the BBR-transformed version of
    /// this workload) under `layout`, with this workload's calibration.
    ///
    /// # Panics
    ///
    /// Panics if `layout` does not match `program`.
    pub fn trace_program<'a>(
        &self,
        program: &'a Program,
        layout: &'a Layout,
        trace_seed: u64,
    ) -> TraceWalker<'a> {
        let datagen = DataGen::new(
            self.benchmark.data_params(),
            trial_seed(self.base_seed ^ trace_seed, 2),
        );
        TraceWalker::new(
            program,
            layout,
            self.benchmark.mix(),
            datagen,
            self.static_seed,
            trial_seed(self.base_seed ^ trace_seed, 3),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_ten_unique_names() {
        let names: std::collections::HashSet<&str> =
            Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn build_is_deterministic() {
        let a = Benchmark::Qsort.build(5);
        let b = Benchmark::Qsort.build(5);
        assert_eq!(a.program(), b.program());
    }

    #[test]
    fn different_benchmarks_differ() {
        let a = Benchmark::Qsort.build(5);
        let b = Benchmark::Dijkstra.build(5);
        assert_ne!(a.program(), b.program());
    }

    #[test]
    fn mibench_kernels_fit_in_the_icache() {
        // 32 KB I-cache = 8192 words; BBR assumes embedded working sets fit.
        for b in [
            Benchmark::Basicmath,
            Benchmark::Qsort,
            Benchmark::Patricia,
            Benchmark::Dijkstra,
            Benchmark::Crc32,
            Benchmark::Adpcm,
        ] {
            let wl = b.build(1);
            let words = wl.program().total_footprint_words();
            assert!(words < 8192, "{b}: {words} words exceed the I-cache");
        }
    }

    #[test]
    fn spec_codes_are_substantially_larger() {
        let small = Benchmark::Crc32.build(1).program().total_footprint_words();
        let big = Benchmark::Bzip2.build(1).program().total_footprint_words();
        assert!(big > 4 * small, "bzip2 {big} vs crc32 {small}");
        assert!(big > 6000, "bzip2 unexpectedly small: {big}");
    }

    #[test]
    fn traces_run_for_every_benchmark() {
        for b in Benchmark::ALL {
            let wl = b.build(3);
            let layout = Layout::sequential(wl.program());
            let n = wl.trace(&layout, 0).take(2000).count();
            assert_eq!(n, 2000, "{b} trace ended early");
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::Mcf.to_string(), "429.mcf");
    }

    #[test]
    fn libquantum_is_the_streaming_outlier() {
        let p = Benchmark::Libquantum.data_params();
        assert!(p.spatial > 0.9);
        assert!(p.reuse < 0.5);
        for b in Benchmark::ALL
            .iter()
            .filter(|&&b| b != Benchmark::Libquantum)
        {
            let q = b.data_params();
            assert!(
                q.reuse > 0.5,
                "{b} should have majority-reuse accesses per Figure 3"
            );
        }
    }
}
