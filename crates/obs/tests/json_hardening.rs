//! Fuzz-style hardening tests for `dvs_obs::json` on untrusted input.
//!
//! The parser doubles as `dvs-serve`'s request-body parser, so it must
//! fail closed — return `Err`, never panic, never overflow the stack —
//! on adversarial documents: pathological nesting, numbers outside f64
//! range, truncated escapes, duplicate keys, and random byte mutations
//! of well-formed input.

use dvs_obs::json::{Value, MAX_DEPTH};

#[test]
fn deep_nesting_errors_instead_of_overflowing_the_stack() {
    // Far deeper than any thread's stack would survive with unbounded
    // recursion (one parse frame per '[').
    for n in [MAX_DEPTH + 1, 10_000, 1_000_000] {
        let input = "[".repeat(n);
        let err = Value::parse(&input).unwrap_err();
        assert!(err.contains("nesting"), "depth {n}: {err}");
        // Same for objects, which recurse through a longer frame.
        let input = "{\"k\":".repeat(n);
        let err = Value::parse(&input).unwrap_err();
        assert!(err.contains("nesting"), "obj depth {n}: {err}");
    }
}

#[test]
fn nesting_right_at_the_limit_still_parses() {
    let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
    assert!(Value::parse(&ok).is_ok());
    let too_deep = format!(
        "{}1{}",
        "[".repeat(MAX_DEPTH + 1),
        "]".repeat(MAX_DEPTH + 1)
    );
    assert!(Value::parse(&too_deep).is_err());
}

#[test]
fn mixed_array_object_nesting_counts_every_level() {
    let n = MAX_DEPTH; // alternating [{" levels: 2 per repetition
    let input = format!("{}1{}", "[{\"k\":".repeat(n), "}]".repeat(n));
    let err = Value::parse(&input).unwrap_err();
    assert!(err.contains("nesting"), "{err}");
}

#[test]
fn huge_numbers_are_rejected_not_infinity() {
    for bad in [
        "1e999",
        "-1e999",
        "1e+99999",
        "-1.5e999",
        "123456789e999999999999",
    ] {
        let err = Value::parse(bad).unwrap_err();
        assert!(err.contains("out of f64 range"), "{bad}: {err}");
        // Inside containers too.
        assert!(Value::parse(&format!("[{bad}]")).is_err());
        assert!(Value::parse(&format!("{{\"n\":{bad}}}")).is_err());
    }
    // The largest finite f64s still parse.
    for ok in ["1e308", "-1.7976931348623157e308", "5e-324", "0", "-0.0"] {
        let v = Value::parse(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        assert!(v.as_f64().unwrap().is_finite());
    }
    // Subnormal underflow collapses to 0.0 — finite, so accepted.
    assert_eq!(Value::parse("1e-999").unwrap().as_f64(), Some(0.0));
}

#[test]
fn nan_and_inf_literals_are_rejected() {
    for bad in ["NaN", "nan", "Infinity", "-Infinity", "inf", "-inf"] {
        assert!(Value::parse(bad).is_err(), "{bad} must not parse");
    }
}

#[test]
fn truncated_escapes_and_strings_fail_closed() {
    for bad in [
        "\"\\",        // escape introducer at end of input
        "\"\\u",       // \u with no digits
        "\"\\u12",     // \u with too few digits
        "\"\\u123",    // one digit short
        "\"\\u123g\"", // non-hex digit
        "\"\\ud834\"", // lone surrogate half
        "\"\\x41\"",   // unknown escape
        "\"abc",       // unterminated string
        "{\"a\": \"b", // unterminated inside object
        "[\"\\u0041",  // valid escape, unterminated string
    ] {
        assert!(Value::parse(bad).is_err(), "{bad:?} must not parse");
    }
    // The well-formed versions do parse.
    assert_eq!(Value::parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
}

#[test]
fn duplicate_keys_are_rejected_at_every_level() {
    for bad in [
        r#"{"a":1,"a":2}"#,
        r#"{"a":1,"b":{"x":1,"x":2}}"#,
        r#"{"a":[{"k":1,"k":1}]}"#,
        // Identical after escape processing, different in source form.
        "{\"a\":1,\"\\u0061\":2}",
    ] {
        let err = Value::parse(bad).unwrap_err();
        assert!(err.contains("duplicate key"), "{bad}: {err}");
    }
    // Distinct keys are of course fine.
    assert!(Value::parse(r#"{"a":1,"b":{"a":2}}"#).is_ok());
}

#[test]
fn truncations_of_a_valid_document_never_panic() {
    let doc = r#"{"counters":{"serve.requests":12,"x":-3.5e2},"arr":[1,true,null,"s\u00e9q"],"nested":{"deep":[[[{"k":"v"}]]]}}"#;
    assert!(Value::parse(doc).is_ok());
    for cut in 1..doc.len() {
        if !doc.is_char_boundary(cut) {
            continue;
        }
        // Every strict prefix is incomplete: must error, never panic.
        assert!(
            Value::parse(&doc[..cut]).is_err(),
            "prefix of length {cut} unexpectedly parsed"
        );
    }
}

#[test]
fn single_byte_mutations_never_panic() {
    let doc = r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#;
    let bytes = doc.as_bytes();
    // Flip each byte through a handful of interesting values; the parser
    // must always return (Ok or Err), never panic or hang.
    for i in 0..bytes.len() {
        for &replacement in &[b'{', b'}', b'"', b'\\', b'0', b'e', 0x00, 0xFF] {
            let mut mutated = bytes.to_vec();
            mutated[i] = replacement;
            if let Ok(s) = std::str::from_utf8(&mutated) {
                let _ = Value::parse(s);
            }
        }
    }
}

#[test]
fn error_offsets_point_into_the_input() {
    let err = Value::parse(r#"{"a": }"#).unwrap_err();
    assert!(err.contains("byte"), "{err}");
}
