//! Property tests for [`dvs_obs::LogHistogram`]: merge associativity,
//! quantile monotonicity, and no sample loss under bucket saturation.

use dvs_obs::LogHistogram;
use proptest::collection::vec;
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// (a ∪ b) ∪ c == a ∪ (b ∪ c): merging is associative, so worker
    /// threads can combine local histograms in any grouping.
    fn merge_is_associative(
        a in vec(any::<u64>(), 0..40),
        b in vec(any::<u64>(), 0..40),
        c in vec(any::<u64>(), 0..40),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        // Both groupings also equal recording everything into one.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &hist_of(&all));
    }

    /// Merge order does not matter either (commutativity), which together
    /// with associativity makes any reduction tree valid.
    fn merge_is_commutative(
        a in vec(any::<u64>(), 0..60),
        b in vec(any::<u64>(), 0..60),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// quantile(q) is monotonically non-decreasing in q and bracketed by
    /// the observed min and max.
    fn quantiles_are_monotonic_and_bracketed(
        values in vec(any::<u64>(), 1..120),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let h = hist_of(&values);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(
            h.quantile(lo) <= h.quantile(hi),
            "quantile({lo}) = {} > quantile({hi}) = {}",
            h.quantile(lo),
            h.quantile(hi)
        );
        prop_assert!(h.quantile(0.0) >= h.min());
        prop_assert!(h.quantile(1.0) <= h.max());
        prop_assert_eq!(h.quantile(1.0), h.max());
    }

    /// Even when the saturating sum pins at `u64::MAX`, no sample is
    /// lost: count, per-bucket totals, min and max all stay exact.
    fn saturation_loses_no_samples(
        huge_count in 1u64..16,
        small in vec(0u64..1024, 0..32),
    ) {
        let mut h = LogHistogram::new();
        h.record_n(u64::MAX, huge_count);
        for &v in &small {
            h.record(v);
        }
        prop_assert_eq!(h.count(), huge_count + small.len() as u64);
        prop_assert_eq!(h.sum(), u64::MAX, "sum must saturate, not wrap");
        prop_assert_eq!(h.max(), u64::MAX);
        let bucket_total: u64 = h.buckets().iter().sum();
        prop_assert_eq!(bucket_total, h.count(), "every sample lands in a bucket");

        // Merging a saturated histogram stays saturated and exact.
        let other = hist_of(&small);
        let mut merged = h.clone();
        merged.merge(&other);
        prop_assert_eq!(merged.count(), h.count() + other.count());
        prop_assert_eq!(merged.sum(), u64::MAX);
    }

    /// count/sum/mean stay mutually consistent under arbitrary input.
    fn summary_stats_are_consistent(values in vec(0u64..1_000_000, 0..100)) {
        let h = hist_of(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        let exact: u64 = values.iter().sum();
        prop_assert_eq!(h.sum(), exact);
        if values.is_empty() {
            prop_assert!(h.is_empty());
            prop_assert_eq!(h.mean(), 0.0);
        } else {
            prop_assert_eq!(h.min(), *values.iter().min().unwrap());
            prop_assert_eq!(h.max(), *values.iter().max().unwrap());
            let mean = exact as f64 / values.len() as f64;
            prop_assert!((h.mean() - mean).abs() < 1e-9);
        }
    }
}
