//! Observability layer for the deep-voltage-scaling simulator.
//!
//! The crate provides the pieces the rest of the workspace instruments
//! itself with, behind one seam:
//!
//! - [`Recorder`] — the trait every subsystem records through. All
//!   methods default to no-ops; subsystems hold an
//!   `Option<Arc<dyn Recorder>>`, so with no recorder attached the hot
//!   paths cost one `Option` check and nothing else (no allocation, no
//!   cloning).
//! - [`MetricsRegistry`] — the concrete sink: monotonic counters,
//!   gauges, log-scale value/timer histograms, and a bounded ring buffer
//!   of structured [`TraceEvent`]s.
//! - [`LogHistogram`] — a fixed-footprint power-of-two histogram with
//!   p50/p95/p99 queries, mergeable so hot loops collect locally and
//!   flush once.
//! - [`Span`] — a scoped wall-clock timer recording on drop.
//! - [`MetricsSnapshot`] — immutable export with text and JSON renderers
//!   that keep deterministic (counters, value histograms) and volatile
//!   (gauges, timers, events) sections strictly apart, so same-seed runs
//!   produce byte-identical deterministic JSON.
//! - [`json`] — a dependency-free JSON value model and parser used to
//!   structurally diff golden snapshots and validate exported documents.
//!
//! # Determinism contract
//!
//! Counters ([`Recorder::add`]) and value histograms
//! ([`Recorder::observe`], [`Recorder::observe_hist`]) must only receive
//! simulation-derived quantities (cycles, counts, fault totals) — never
//! wall-clock readings. Durations, gauges and events are volatile and are
//! rendered under a single `"volatile"` JSON key, which tests strip
//! before comparing runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
pub mod json;
mod recorder;
mod registry;
mod snapshot;

pub use hist::{LogHistogram, BUCKETS};
pub use recorder::{NullRecorder, Recorder, Span};
pub use registry::{MetricsRegistry, TraceEvent, DEFAULT_TRACE_CAPACITY};
pub use snapshot::{HistSummary, MetricsSnapshot};
