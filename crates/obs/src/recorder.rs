//! The [`Recorder`] trait — the single seam every subsystem records
//! through — plus the disabled [`NullRecorder`] and the scoped [`Span`]
//! timer.

use std::fmt;
use std::time::Instant;

use crate::hist::LogHistogram;

/// Sink for metrics and trace events.
///
/// Subsystems hold an `Option<Arc<dyn Recorder>>` (or are handed a
/// `&dyn Recorder`); when no recorder is attached the hot paths skip all
/// instrumentation — no allocation, no cloning, one `Option` check. All
/// methods default to no-ops so implementations record only what they
/// care about.
///
/// Determinism contract: [`Recorder::add`] and [`Recorder::observe`] /
/// [`Recorder::observe_hist`] feed the *deterministic* sections of an
/// exported snapshot — callers must only pass values derived from
/// simulation state (cycles, counts), never from wall-clock time.
/// Wall-clock durations go through [`Recorder::duration`] and gauges and
/// events are likewise volatile; exporters keep the two classes apart so
/// two runs with the same seed render byte-identical deterministic
/// sections.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// Whether this recorder stores anything. Callers may use this to
    /// skip expensive metric preparation entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the monotonic counter `name` (deterministic).
    fn add(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the gauge `name` to `value` (volatile, last write wins).
    fn gauge(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Records one sample into the value histogram `name` (deterministic;
    /// the value must be simulation-derived, e.g. a latency in cycles).
    fn observe(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Merges a locally collected histogram into the value histogram
    /// `name` (deterministic). Hot loops record into a private
    /// [`LogHistogram`] and flush once through this method.
    fn observe_hist(&self, name: &'static str, hist: &LogHistogram) {
        let _ = (name, hist);
    }

    /// Records a wall-clock duration in nanoseconds into the timer
    /// histogram `name` (volatile).
    fn duration(&self, name: &'static str, nanos: u64) {
        let _ = (name, nanos);
    }

    /// Appends a structured event to the trace ring buffer (volatile).
    fn event(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }
}

/// A recorder that drops everything and reports itself disabled.
///
/// # Example
///
/// ```rust
/// use dvs_obs::{NullRecorder, Recorder};
///
/// let r = NullRecorder;
/// assert!(!r.enabled());
/// r.add("anything", 1); // no-op
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
}

/// A scoped wall-clock timer: measures from construction to drop and
/// records the elapsed nanoseconds through [`Recorder::duration`].
///
/// # Example
///
/// ```rust
/// use dvs_obs::{MetricsRegistry, Span};
///
/// let reg = MetricsRegistry::new();
/// {
///     let _span = Span::enter(&reg, "work_nanos");
///     // ... timed work ...
/// }
/// assert_eq!(reg.snapshot().timers["work_nanos"].count, 1);
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    recorder: &'a dyn Recorder,
    name: &'static str,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Starts a span that will record into timer `name` when dropped.
    pub fn enter(recorder: &'a dyn Recorder, name: &'static str) -> Self {
        Span {
            recorder,
            name,
            start: Instant::now(),
        }
    }

    /// Elapsed nanoseconds so far (the span keeps running).
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.recorder
            .duration(self.name, self.start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let r = NullRecorder;
        assert!(!r.enabled());
        r.add("c", 1);
        r.gauge("g", 2);
        r.observe("h", 3);
        r.duration("t", 4);
        r.event("e", 5);
        let mut h = LogHistogram::new();
        h.record(1);
        r.observe_hist("h", &h);
    }

    #[test]
    fn span_records_a_duration_on_drop() {
        let reg = MetricsRegistry::new();
        {
            let span = Span::enter(&reg, "scope_nanos");
            assert!(span.elapsed_nanos() < u64::MAX);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.timers["scope_nanos"].count, 1);
    }
}
