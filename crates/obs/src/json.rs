//! A minimal JSON value model and recursive-descent parser.
//!
//! The workspace's vendored serde speaks only its internal binary format,
//! so the observability exporters emit JSON by hand; this module provides
//! the *reading* side — enough to structurally diff golden snapshots and
//! to validate exported documents (no NaN, no negative counters) without
//! any external dependency. Numbers are held as `f64`, which is exact for
//! every integer the exporters emit below 2^53.
//!
//! The parser also serves as `dvs-serve`'s request-body parser, so it is
//! hardened for **untrusted** input and fails closed:
//!
//! * nesting is limited to [`MAX_DEPTH`] levels, so `[[[[…` input errors
//!   out instead of overflowing the parse stack;
//! * numbers that do not fit a finite `f64` (`1e999`) are rejected
//!   rather than silently becoming `inf`;
//! * duplicate object keys are rejected rather than last-wins merged
//!   (two readers could otherwise disagree about what was accepted);
//! * truncated escapes, unpaired surrogates and invalid UTF-8 are
//!   rejected with a byte offset.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum container nesting depth [`Value::parse`] accepts. Deep enough
/// for any document the exporters emit, shallow enough that parsing
/// adversarial input can never exhaust the thread's stack.
pub const MAX_DEPTH: usize = 128;

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is normalized (sorted), so two objects with
    /// the same members compare equal regardless of source order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected). Safe on untrusted input: see the module docs
    /// for the fail-closed guarantees.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the byte offset of the
    /// first malformed construct.
    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` for non-objects and missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Walks the whole tree and returns the path of the first number
    /// that is non-finite or negative — the invariant every exported
    /// counter/histogram document must satisfy. `Ok` when clean.
    ///
    /// # Errors
    ///
    /// Returns the JSON-pointer-style path of the offending number.
    pub fn check_numbers_finite_nonneg(&self) -> Result<(), String> {
        fn walk(v: &Value, path: &str) -> Result<(), String> {
            match v {
                Value::Num(n) => {
                    if !n.is_finite() {
                        return Err(format!("{path}: non-finite number"));
                    }
                    if *n < 0.0 {
                        return Err(format!("{path}: negative number {n}"));
                    }
                    Ok(())
                }
                Value::Arr(items) => items
                    .iter()
                    .enumerate()
                    .try_for_each(|(i, item)| walk(item, &format!("{path}/{i}"))),
                Value::Obj(map) => map
                    .iter()
                    .try_for_each(|(k, item)| walk(item, &format!("{path}/{k}"))),
                _ => Ok(()),
            }
        }
        walk(self, "")
    }

    /// Structural copy with the object member `key` removed at every
    /// nesting level — used to strip volatile sections before diffing.
    #[must_use]
    pub fn without_key(&self, key: &str) -> Value {
        match self {
            Value::Arr(items) => Value::Arr(items.iter().map(|v| v.without_key(key)).collect()),
            Value::Obj(map) => Value::Obj(
                map.iter()
                    .filter(|(k, _)| k.as_str() != key)
                    .map(|(k, v)| (k.clone(), v.without_key(key)))
                    .collect(),
            ),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write!(f, "\"{}\"", json_escape(s)),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", json_escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

/// Guards one container nesting level; the recursion in
/// `parse_array`/`parse_object` must stay bounded on adversarial input.
fn deeper(depth: usize, pos: usize) -> Result<usize, String> {
    if depth >= MAX_DEPTH {
        Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"))
    } else {
        Ok(depth + 1)
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let parsed = std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))?;
    // Rust's f64 parser happily returns inf for "1e999"; a validator
    // built on this parser must see such input as malformed, not as a
    // number that later fails arithmetic in surprising ways.
    if !parsed.is_finite() {
        return Err(format!("number out of f64 range at byte {start}"));
    }
    Ok(Value::Num(parsed))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid utf-8 in string".to_string());
            }
            b'\\' => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let c = char::from_u32(hex)
                            .ok_or_else(|| format!("bad codepoint at byte {pos}"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
                *pos += 1;
            }
            _ => {
                out.push(b);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    let depth = deeper(depth, *pos)?;
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    let depth = deeper(depth, *pos)?;
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key_at = *pos;
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth)?;
        if map.insert(key.clone(), value).is_some() {
            // Last-wins would let two readers of the same document accept
            // different content; fail closed instead.
            return Err(format!(
                "duplicate key \"{}\" at byte {key_at}",
                json_escape(&key)
            ));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = Value::parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\":1} trailing").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }

    #[test]
    fn roundtrip_display_parses_back_equal() {
        let src = r#"{"counters":{"x":12},"histograms":{"h":{"count":2,"p50":3}},"arr":[1,"s"]}"#;
        let v = Value::parse(src).unwrap();
        let v2 = Value::parse(&v.to_string()).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn number_check_flags_negatives() {
        let clean = Value::parse(r#"{"a":1,"b":[0,2]}"#).unwrap();
        assert!(clean.check_numbers_finite_nonneg().is_ok());
        let dirty = Value::parse(r#"{"a":{"deep":[1,-2]}}"#).unwrap();
        let err = dirty.check_numbers_finite_nonneg().unwrap_err();
        assert!(err.contains("/a/deep/1"), "{err}");
    }

    #[test]
    fn without_key_strips_at_every_level() {
        let v = Value::parse(r#"{"keep":1,"volatile":{"x":2},"nest":{"volatile":[3]}}"#).unwrap();
        let stripped = v.without_key("volatile");
        assert!(stripped.get("volatile").is_none());
        assert!(stripped.get("nest").unwrap().get("volatile").is_none());
        assert_eq!(stripped.get("keep"), Some(&Value::Num(1.0)));
    }

    #[test]
    fn escape_covers_control_characters() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
