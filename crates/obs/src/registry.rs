//! The concrete metrics registry and its trace ring buffer.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

use crate::hist::LogHistogram;
use crate::recorder::Recorder;
use crate::snapshot::{HistSummary, MetricsSnapshot};

/// Default capacity of the structured-event ring buffer.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// One structured trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (total events emitted, including any the
    /// ring has since dropped).
    pub seq: u64,
    /// Nanoseconds since the registry was created.
    pub nanos: u64,
    /// Event name.
    pub name: &'static str,
    /// Event payload.
    pub value: u64,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    values: BTreeMap<&'static str, LogHistogram>,
    timers: BTreeMap<&'static str, LogHistogram>,
    events: VecDeque<TraceEvent>,
    seq: u64,
}

/// Thread-safe metrics registry: named counters, gauges, value
/// histograms, wall-clock timer histograms, and a bounded ring buffer of
/// structured events.
///
/// All mutation goes through the [`Recorder`] trait. A single mutex
/// guards the maps — recording happens at trial/link/flush granularity
/// (hot per-access loops collect into local [`LogHistogram`]s and merge
/// once), so contention is negligible.
///
/// # Example
///
/// ```rust
/// use dvs_obs::{MetricsRegistry, Recorder};
///
/// let reg = MetricsRegistry::new();
/// reg.add("cache.l1i.accesses", 10);
/// reg.observe("cache.l1i.access_cycles", 2);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counters["cache.l1i.accesses"], 10);
/// assert_eq!(snap.values["cache.l1i.access_cycles"].count, 1);
/// ```
#[derive(Debug)]
pub struct MetricsRegistry {
    start: Instant,
    trace_capacity: usize,
    inner: Mutex<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry with the default trace capacity.
    pub fn new() -> Self {
        MetricsRegistry::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An empty registry whose event ring holds at most `capacity`
    /// events (older events are dropped first).
    pub fn with_trace_capacity(capacity: usize) -> Self {
        MetricsRegistry {
            start: Instant::now(),
            trace_capacity: capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("metrics registry lock poisoned")
    }

    /// Current value of counter `name` (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// An immutable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            values: inner
                .values
                .iter()
                .map(|(k, h)| ((*k).to_string(), HistSummary::of(h)))
                .collect(),
            timers: inner
                .timers
                .iter()
                .map(|(k, h)| ((*k).to_string(), HistSummary::of(h)))
                .collect(),
            events: inner.events.iter().copied().collect(),
        }
    }
}

impl Recorder for MetricsRegistry {
    fn add(&self, name: &'static str, delta: u64) {
        *self.lock().counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: u64) {
        self.lock().gauges.insert(name, value);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.lock().values.entry(name).or_default().record(value);
    }

    fn observe_hist(&self, name: &'static str, hist: &LogHistogram) {
        if hist.is_empty() {
            return;
        }
        self.lock().values.entry(name).or_default().merge(hist);
    }

    fn duration(&self, name: &'static str, nanos: u64) {
        self.lock().timers.entry(name).or_default().record(nanos);
    }

    fn event(&self, name: &'static str, value: u64) {
        let nanos = self.start.elapsed().as_nanos() as u64;
        let mut inner = self.lock();
        let seq = inner.seq;
        inner.seq += 1;
        if self.trace_capacity == 0 {
            return;
        }
        if inner.events.len() == self.trace_capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(TraceEvent {
            seq,
            nanos,
            name,
            value,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let reg = MetricsRegistry::new();
        reg.add("c", 2);
        reg.add("c", 3);
        reg.gauge("g", 7);
        reg.gauge("g", 9);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(reg.counter("c"), 5);
        assert_eq!(reg.counter("missing"), 0);
        assert_eq!(snap.gauges["g"], 9);
    }

    #[test]
    fn histogram_merge_feeds_values_section() {
        let reg = MetricsRegistry::new();
        let mut local = LogHistogram::new();
        local.record(4);
        local.record(100);
        reg.observe_hist("lat", &local);
        reg.observe("lat", 1);
        reg.observe_hist("lat", &LogHistogram::new()); // empty merge is a no-op
        let snap = reg.snapshot();
        assert_eq!(snap.values["lat"].count, 3);
        assert_eq!(snap.values["lat"].min, 1);
        assert_eq!(snap.values["lat"].max, 100);
    }

    #[test]
    fn trace_ring_drops_oldest_but_keeps_sequence() {
        let reg = MetricsRegistry::with_trace_capacity(2);
        reg.event("a", 0);
        reg.event("b", 1);
        reg.event("c", 2);
        let snap = reg.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].name, "b");
        assert_eq!(snap.events[0].seq, 1);
        assert_eq!(snap.events[1].name, "c");
        assert_eq!(snap.events[1].seq, 2);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        use std::sync::Arc;
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = reg.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        r.add("n", 1);
                        r.observe("v", 3);
                    }
                });
            }
        });
        assert_eq!(reg.counter("n"), 400);
        assert_eq!(reg.snapshot().values["v"].count, 400);
    }
}
