//! Log-scale histogram over `u64` samples.
//!
//! The simulator's interesting distributions (access latencies in cycles,
//! span durations in nanoseconds) range over many decades, so the
//! histogram buckets by power of two: bucket 0 holds the value 0 and
//! bucket *i* ≥ 1 holds values in `[2^(i-1), 2^i)`, with the final bucket
//! absorbing everything up to `u64::MAX`. Recording is a `leading_zeros`
//! plus an array increment — cheap enough for per-access hot paths — and
//! merging two histograms is element-wise addition, so per-thread local
//! histograms can be combined without locks on the recording path.

/// Number of buckets: one for zero plus one per bit position.
pub const BUCKETS: usize = 65;

/// A fixed-footprint log-scale histogram of `u64` samples.
///
/// Tracks per-bucket counts plus exact count/sum/min/max, and answers
/// quantile queries with bucket-upper-bound resolution (within 2× of the
/// true value, exact for the min/max ends).
///
/// # Example
///
/// ```rust
/// use dvs_obs::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), 100);
/// assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    /// Saturating sum — `min(u64::MAX, Σ samples)`. Saturating addition of
    /// non-negative values is associative, which keeps merges order-free.
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Bucket a value falls into: 0 for 0, else `64 - leading_zeros`.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Largest value bucket `i` can hold.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples (used by merges and batch feeds).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_of(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one. No sample is ever lost:
    /// counts add exactly even when the sum saturates.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts (bucket 0 = value 0, bucket *i* = `[2^(i-1), 2^i)`).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The `q`-quantile (bucket-upper-bound resolution, clamped to the
    /// observed maximum). Returns 0 for an empty histogram.
    ///
    /// Monotonic in `q`: `quantile(a) <= quantile(b)` whenever `a <= b`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket resolution).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket resolution).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        // p50 of 1..=1000 is ~500; bucket resolution gives the upper bound
        // of the bucket holding rank 500 (values 256..511 → 511).
        assert!(h.p50() >= 500 && h.p50() <= 1000, "p50 {}", h.p50());
        assert!(h.p99() >= 990, "p99 {}", h.p99());
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let values = [0u64, 1, 5, 9, 1 << 20, u64::MAX, 3, 3, 3];
        let mut whole = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn saturated_sum_still_counts_every_sample() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record_n(7, 5);
        for _ in 0..5 {
            b.record(7);
        }
        assert_eq!(a, b);
        a.record_n(9, 0);
        assert_eq!(a.count(), 5);
    }
}
