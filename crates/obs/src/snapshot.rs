//! Immutable snapshots of a registry plus the text and JSON exporters.
//!
//! A snapshot splits cleanly into a **deterministic** half (counters and
//! value histograms, which depend only on simulation state) and a
//! **volatile** half (gauges, wall-clock timers, trace events). The JSON
//! exporter nests the volatile half under a single `"volatile"` key so
//! golden tests and determinism checks can compare the rest byte for
//! byte.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::LogHistogram;
use crate::json::json_escape;
use crate::registry::TraceEvent;

/// Summary statistics of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    /// Recorded samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median, at bucket resolution.
    pub p50: u64,
    /// 95th percentile, at bucket resolution.
    pub p95: u64,
    /// 99th percentile, at bucket resolution.
    pub p99: u64,
}

impl HistSummary {
    /// Summarizes a histogram.
    pub fn of(h: &LogHistogram) -> Self {
        HistSummary {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
        }
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            self.count, self.sum, self.min, self.max, self.p50, self.p95, self.p99
        )
    }
}

/// Everything a [`crate::MetricsRegistry`] held at snapshot time.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters (deterministic).
    pub counters: BTreeMap<String, u64>,
    /// Gauges (volatile).
    pub gauges: BTreeMap<String, u64>,
    /// Value histograms (deterministic).
    pub values: BTreeMap<String, HistSummary>,
    /// Wall-clock timer histograms, in nanoseconds (volatile).
    pub timers: BTreeMap<String, HistSummary>,
    /// Trace events still in the ring (volatile).
    pub events: Vec<TraceEvent>,
}

fn json_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", json_escape(k));
    }
    out.push('}');
}

fn json_hist_map(out: &mut String, map: &BTreeMap<String, HistSummary>) {
    out.push('{');
    for (i, (k, h)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(k), h.to_json());
    }
    out.push('}');
}

impl MetricsSnapshot {
    /// Renders the snapshot as one JSON object.
    ///
    /// The deterministic sections (`"counters"`, `"histograms"`) always
    /// appear; with `include_volatile` the gauges, timers and trace
    /// events are added under `"volatile"`. Two same-seed runs render
    /// identical JSON when `include_volatile` is false.
    pub fn to_json(&self, include_volatile: bool) -> String {
        let mut out = String::from("{\"counters\":");
        json_u64_map(&mut out, &self.counters);
        out.push_str(",\"histograms\":");
        json_hist_map(&mut out, &self.values);
        if include_volatile {
            out.push_str(",\"volatile\":{\"gauges\":");
            json_u64_map(&mut out, &self.gauges);
            out.push_str(",\"timings\":");
            json_hist_map(&mut out, &self.timers);
            out.push_str(",\"events\":[");
            for (i, e) in self.events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"seq\":{},\"nanos\":{},\"name\":\"{}\",\"value\":{}}}",
                    e.seq,
                    e.nanos,
                    json_escape(e.name),
                    e.value
                );
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }

    /// Renders the snapshot for humans: counters, histograms and (when
    /// present) timers as aligned text blocks.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self.counters.keys().map(String::len).max().unwrap_or(0);
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:width$}  {v}");
            }
        }
        if !self.values.is_empty() {
            out.push_str("histograms (count / mean / p50 / p95 / p99 / max):\n");
            let width = self.values.keys().map(String::len).max().unwrap_or(0);
            for (k, h) in &self.values {
                let _ = writeln!(
                    out,
                    "  {k:width$}  {} / {:.1} / {} / {} / {} / {}",
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                );
            }
        }
        if !self.timers.is_empty() {
            out.push_str("timers (count / total ms / mean µs / p99 µs):\n");
            let width = self.timers.keys().map(String::len).max().unwrap_or(0);
            for (k, h) in &self.timers {
                let _ = writeln!(
                    out,
                    "  {k:width$}  {} / {:.2} / {:.1} / {:.1}",
                    h.count,
                    h.sum as f64 / 1e6,
                    h.mean() / 1e3,
                    h.p99 as f64 / 1e3
                );
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k}  {v}");
            }
        }
        out
    }

    /// Total wall-clock nanoseconds recorded under timer `name` (0 when
    /// the timer never fired).
    pub fn timer_total_nanos(&self, name: &str) -> u64 {
        self.timers.get(name).map_or(0, |h| h.sum)
    }

    /// Value of counter `name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use crate::recorder::Recorder;
    use crate::registry::MetricsRegistry;

    fn sample() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.add("a.count", 3);
        reg.gauge("depth", 2);
        reg.observe("lat", 7);
        reg.observe("lat", 9);
        reg.duration("t", 1000);
        reg.event("done", 1);
        reg.snapshot()
    }

    #[test]
    fn json_without_volatile_is_deterministic_shape() {
        let json = sample().to_json(false);
        assert!(json.contains("\"counters\":{\"a.count\":3}"));
        assert!(json.contains("\"histograms\":{\"lat\":{\"count\":2"));
        assert!(!json.contains("volatile"));
        let parsed = Value::parse(&json).expect("well-formed");
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("a.count")),
            Some(&Value::Num(3.0))
        );
    }

    #[test]
    fn json_with_volatile_nests_everything_under_one_key() {
        let json = sample().to_json(true);
        let parsed = Value::parse(&json).expect("well-formed");
        let vol = parsed.get("volatile").expect("volatile section");
        assert!(vol.get("gauges").is_some());
        assert!(vol.get("timings").is_some());
        assert!(vol.get("events").is_some());
    }

    #[test]
    fn text_render_mentions_every_section() {
        let text = sample().to_text();
        assert!(text.contains("counters:"));
        assert!(text.contains("a.count"));
        assert!(text.contains("histograms"));
        assert!(text.contains("timers"));
        assert!(text.contains("gauges:"));
    }

    #[test]
    fn helpers_read_totals() {
        let snap = sample();
        assert_eq!(snap.counter("a.count"), 3);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.timer_total_nanos("t"), 1000);
        assert_eq!(snap.timer_total_nanos("missing"), 0);
    }
}
