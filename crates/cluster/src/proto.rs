//! Pure JSON wire vocabulary of the cluster protocol.
//!
//! No sockets, no threads, no clocks — every shape here is a plain value
//! with a `to_json` renderer and a fail-closed `from_json` parser (built
//! on the hardened [`dvs_obs::json`] parser), so both coordinator and
//! worker sides are unit-testable offline. Result payloads travel as
//! hex-encoded [`StoredCell::to_bytes`] images, whose trailing checksum
//! makes wire corruption a decode failure instead of wrong data.

use dvs_core::{CellKey, EvalConfig, Scheme, StoredCell};
use dvs_obs::json::{json_escape, Value};
use dvs_sram::{FaultModel, MilliVolts};
use dvs_workloads::Benchmark;

/// The result-relevant slice of [`EvalConfig`] that every lease carries:
/// a worker applying these over its own base config reproduces the
/// coordinator's cells bit-identically, whatever its local parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConfig {
    /// Fault maps (Monte-Carlo trials) per operating point.
    pub maps: u64,
    /// Dynamic instructions simulated per trial.
    pub trace_instrs: usize,
    /// Root seed.
    pub seed: u64,
    /// BBR split-threshold override.
    pub bbr_max_block_words: Option<u32>,
    /// Fault-injection model.
    pub fault_model: FaultModel,
}

impl WireConfig {
    /// Captures the result-relevant fields of `cfg`.
    pub fn of(cfg: &EvalConfig) -> Self {
        WireConfig {
            maps: cfg.maps,
            trace_instrs: cfg.trace_instrs,
            seed: cfg.seed,
            bbr_max_block_words: cfg.bbr_max_block_words,
            fault_model: cfg.fault_model,
        }
    }

    /// `base` with this wire config's result-relevant fields applied.
    /// Parallelism and checking knobs (`threads`,
    /// `max_parallel_trials`, `validate_images`, ...) stay the node
    /// operator's choice — they can never change results.
    pub fn apply(&self, base: &EvalConfig) -> EvalConfig {
        EvalConfig {
            maps: self.maps,
            trace_instrs: self.trace_instrs,
            seed: self.seed,
            bbr_max_block_words: self.bbr_max_block_words,
            fault_model: self.fault_model,
            ..*base
        }
    }

    /// Renders the config as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"maps\":{},\"trace_instrs\":{},\"seed\":{},\"bbr_max_block_words\":{},\
             \"model\":\"{}\"}}",
            self.maps,
            self.trace_instrs,
            self.seed,
            self.bbr_max_block_words
                .map_or("null".to_string(), |w| w.to_string()),
            json_escape(self.fault_model.name()),
        )
    }

    /// Parses a config object rendered by [`WireConfig::to_json`].
    ///
    /// # Errors
    ///
    /// A description of the first missing or malformed field.
    pub fn from_json(v: &Value) -> Result<WireConfig, String> {
        let num = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .filter(|f| f.fract() == 0.0 && *f >= 0.0)
                .map(|f| f as u64)
                .ok_or_else(|| format!("config field {key:?} must be a non-negative integer"))
        };
        let bbr = match v.get("bbr_max_block_words") {
            None | Some(Value::Null) => None,
            Some(w) => Some(
                w.as_f64()
                    .filter(|f| f.fract() == 0.0 && (0.0..=f64::from(u32::MAX)).contains(f))
                    .map(|f| f as u32)
                    .ok_or("config field \"bbr_max_block_words\" must be an integer or null")?,
            ),
        };
        let maps = num("maps")?;
        let trace_instrs = num("trace_instrs")? as usize;
        let seed = num("seed")?;
        let model = v
            .get("model")
            .and_then(Value::as_str)
            .ok_or("config field \"model\" must be a string")?;
        Ok(WireConfig {
            maps,
            trace_instrs,
            seed,
            bbr_max_block_words: bbr,
            fault_model: FaultModel::parse(model)
                .ok_or_else(|| format!("unknown fault model {model:?}"))?,
        })
    }
}

/// Identity of one work unit: the `index`-th cell of `campaign`'s plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnitRef {
    /// The campaign the unit belongs to.
    pub campaign: u64,
    /// The cell's index in the campaign's plan order.
    pub index: usize,
}

/// Renders a cell as the wire object `{"benchmark":..,"scheme":..,
/// "vcc_mv":..}` (names, not ordinals, so the wire survives enum
/// reordering).
pub fn cell_to_json(key: &CellKey) -> String {
    format!(
        "{{\"benchmark\":\"{}\",\"scheme\":\"{}\",\"vcc_mv\":{}}}",
        json_escape(key.benchmark.name()),
        json_escape(key.scheme.name()),
        key.vcc_mv,
    )
}

/// Parses a [`cell_to_json`] object.
///
/// # Errors
///
/// A description of the first missing or unknown field.
pub fn cell_from_json(v: &Value) -> Result<CellKey, String> {
    let benchmark = v
        .get("benchmark")
        .and_then(Value::as_str)
        .ok_or("cell field \"benchmark\" must be a string")?;
    let benchmark =
        parse_benchmark(benchmark).ok_or_else(|| format!("unknown benchmark {benchmark:?}"))?;
    let scheme = v
        .get("scheme")
        .and_then(Value::as_str)
        .ok_or("cell field \"scheme\" must be a string")?;
    let scheme = parse_scheme(scheme).ok_or_else(|| format!("unknown scheme {scheme:?}"))?;
    let vcc = v
        .get("vcc_mv")
        .and_then(Value::as_f64)
        .filter(|f| f.fract() == 0.0 && (0.0..=f64::from(u32::MAX)).contains(f))
        .ok_or("cell field \"vcc_mv\" must be an integer")?;
    Ok(CellKey::new(benchmark, scheme, MilliVolts::new(vcc as u32)))
}

/// Looks a benchmark up by its paper name (`"401.bzip2"`) or bare name
/// (`"bzip2"`), the same aliases the serve API accepts.
pub fn parse_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| {
        let full = b.name();
        full == name || full.split_once('.').is_some_and(|(_, bare)| bare == name)
    })
}

/// Looks a scheme up by its figure-legend name, case-insensitively.
pub fn parse_scheme(name: &str) -> Option<Scheme> {
    Scheme::ALL
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
}

/// Hex-encodes a binary payload for transport inside JSON strings.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
        out.push(char::from_digit(u32::from(b & 0xF), 16).expect("nibble"));
    }
    out
}

/// Decodes [`hex_encode`] output; `None` on odd length or non-hex bytes.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

/// Renders a completed cell payload for the push/sync wire.
pub fn cell_payload_to_hex(cell: &StoredCell) -> String {
    hex_encode(&cell.to_bytes())
}

/// Decodes a pushed cell payload; `None` on any corruption (the caller
/// must treat that exactly like a missing result).
pub fn cell_payload_from_hex(hex: &str) -> Option<StoredCell> {
    StoredCell::from_bytes(&hex_decode(hex)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_config_round_trips_and_applies_only_result_fields() {
        let mut cfg = EvalConfig::quick();
        cfg.maps = 7;
        cfg.trace_instrs = 1234;
        cfg.seed = 99;
        cfg.bbr_max_block_words = Some(12);
        cfg.fault_model = FaultModel::clustered();
        let wire = WireConfig::of(&cfg);
        let parsed =
            WireConfig::from_json(&Value::parse(&wire.to_json()).expect("valid JSON")).unwrap();
        assert_eq!(parsed, wire);

        // Applying over a different base keeps the base's parallelism.
        let base = EvalConfig {
            threads: 3,
            ..EvalConfig::standard()
        };
        let applied = wire.apply(&base);
        assert_eq!(applied.maps, 7);
        assert_eq!(applied.trace_instrs, 1234);
        assert_eq!(applied.seed, 99);
        assert_eq!(applied.bbr_max_block_words, Some(12));
        assert_eq!(applied.fault_model, FaultModel::clustered());
        assert_eq!(applied.threads, 3);

        // A None split threshold survives the round trip as null.
        let wire = WireConfig::of(&EvalConfig::quick());
        let parsed =
            WireConfig::from_json(&Value::parse(&wire.to_json()).expect("valid JSON")).unwrap();
        assert_eq!(parsed.bbr_max_block_words, None);
    }

    #[test]
    fn wire_config_parsing_fails_closed() {
        for (body, needle) in [
            ("{}", "maps"),
            (
                "{\"maps\":1.5,\"trace_instrs\":1,\"seed\":0,\"model\":\"iid\"}",
                "maps",
            ),
            (
                "{\"maps\":1,\"trace_instrs\":1,\"seed\":0,\"model\":\"gauss\"}",
                "unknown fault model",
            ),
            (
                "{\"maps\":1,\"trace_instrs\":1,\"seed\":0,\"model\":3}",
                "must be a string",
            ),
        ] {
            let err = WireConfig::from_json(&Value::parse(body).expect("valid JSON")).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn cell_round_trips_through_the_wire() {
        let key = CellKey::new(Benchmark::Bzip2, Scheme::FfwBbr, MilliVolts::new(480));
        let parsed =
            cell_from_json(&Value::parse(&cell_to_json(&key)).expect("valid JSON")).unwrap();
        assert_eq!(parsed, key);
        for s in Scheme::ALL {
            for b in Benchmark::ALL {
                let key = CellKey::new(b, s, MilliVolts::new(400));
                let parsed = cell_from_json(&Value::parse(&cell_to_json(&key)).unwrap()).unwrap();
                assert_eq!(parsed, key);
            }
        }
    }

    #[test]
    fn hex_round_trips_and_rejects_junk() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).as_deref(), Some(&bytes[..]));
        assert_eq!(hex_encode(&[]), "");
        assert_eq!(hex_decode(""), Some(Vec::new()));
        assert!(hex_decode("abc").is_none()); // odd length
        assert!(hex_decode("zz").is_none()); // non-hex
    }

    #[test]
    fn cell_payloads_survive_the_wire_and_fail_closed() {
        let cell = StoredCell {
            failed_links: 3,
            trials: Vec::new(),
        };
        let hex = cell_payload_to_hex(&cell);
        assert_eq!(cell_payload_from_hex(&hex), Some(cell));
        // A flipped nibble is a decode failure, never wrong data.
        let mut bad = hex.into_bytes();
        bad[0] = if bad[0] == b'0' { b'1' } else { b'0' };
        let bad = String::from_utf8(bad).unwrap();
        assert_eq!(cell_payload_from_hex(&bad), None);
        assert_eq!(cell_payload_from_hex("nothex"), None);
    }
}
