//! The worker: a pull–execute–push loop plus a heartbeat thread.
//!
//! A worker joins a coordinator, leases cell-granular units, reassembles
//! them into partial [`ExperimentPlan`]s that [`Evaluator::run_plan`]
//! executes bit-identically to a single-node run, and pushes the
//! resulting [`StoredCell`] images back. While the (possibly long)
//! evaluation runs, a separate heartbeat thread renews the worker's
//! leases over its own connection; if the process is SIGKILLed both
//! threads die, heartbeats stop, and the coordinator requeues the units
//! — no cleanup path needs to run on the dying node.
//!
//! When idle, the worker tails the coordinator's sync log into its local
//! [`ResultStore`], so after a campaign converges *any* node can answer
//! point queries for the whole campaign from local disk.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dvs_core::{
    CancelToken, CellKey, EvalConfig, EvalError, Evaluator, ExperimentPlan, ResultStore, StoreKey,
    StoredCell,
};
use dvs_cpu::CoreConfig;
use dvs_obs::json::{json_escape, Value};
use dvs_obs::{MetricsRegistry, Recorder};
use dvs_sram::CacheGeometry;

use crate::client::HttpClient;
use crate::proto::{
    cell_from_json, cell_payload_from_hex, cell_payload_to_hex, UnitRef, WireConfig,
};

/// Configuration of one worker node.
#[derive(Debug)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub coordinator: String,
    /// Self-reported name (diagnostics only).
    pub name: String,
    /// Base evaluation config; its parallelism/checking knobs apply
    /// locally, its result-relevant fields are overridden per lease.
    pub base: EvalConfig,
    /// Local result store (also the sync-log destination).
    pub store: ResultStore,
    /// Units requested per lease call.
    pub lease_units: usize,
    /// Heartbeat period; must be well under the coordinator's lease TTL.
    pub heartbeat: Duration,
    /// Poll period while no work is available.
    pub idle_poll: Duration,
    /// Socket timeout for coordinator requests.
    pub timeout: Duration,
}

impl WorkerConfig {
    /// A worker talking to `coordinator` with defaults sized for the
    /// default [`crate::ClusterConfig`].
    pub fn new(coordinator: impl Into<String>, base: EvalConfig, store: ResultStore) -> Self {
        WorkerConfig {
            coordinator: coordinator.into(),
            name: format!("worker-{}", std::process::id()),
            base,
            store,
            lease_units: 2,
            heartbeat: Duration::from_millis(1000),
            idle_poll: Duration::from_millis(200),
            timeout: Duration::from_secs(10),
        }
    }
}

/// Handle to a running worker; dropping it does **not** stop the worker.
#[derive(Debug)]
pub struct WorkerHandle {
    stop: Arc<AtomicBool>,
    cancel: CancelToken,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerHandle {
    /// Asks the worker to stop: in-flight evaluation is cancelled at the
    /// next trial boundary and both threads wind down.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.cancel.cancel();
    }

    /// Waits for the worker's threads to finish.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Spawns the worker loop and its heartbeat thread.
pub fn spawn_worker(cfg: WorkerConfig, registry: Arc<MetricsRegistry>) -> WorkerHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let cancel = CancelToken::new();
    let worker_id: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));

    let hb = {
        let stop = stop.clone();
        let worker_id = worker_id.clone();
        let addr = cfg.coordinator.clone();
        let period = cfg.heartbeat;
        let timeout = cfg.timeout;
        std::thread::spawn(move || heartbeat_loop(&addr, timeout, period, &stop, &worker_id))
    };
    let main = {
        let stop = stop.clone();
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            let mut rt = Runtime {
                client: HttpClient::new(cfg.coordinator.clone(), cfg.timeout),
                cfg,
                registry,
                stop,
                cancel,
                worker_id,
                eval: None,
                sync_seq: 0,
            };
            rt.run();
        })
    };
    WorkerHandle {
        stop,
        cancel,
        threads: vec![main, hb],
    }
}

/// Sleeps `total` in short slices so a stop request is honored quickly.
fn pause(stop: &AtomicBool, total: Duration) {
    let mut left = total;
    while !stop.load(Ordering::Relaxed) && !left.is_zero() {
        let slice = left.min(Duration::from_millis(25));
        std::thread::sleep(slice);
        left = left.saturating_sub(slice);
    }
}

fn heartbeat_loop(
    addr: &str,
    timeout: Duration,
    period: Duration,
    stop: &AtomicBool,
    worker_id: &Mutex<Option<u64>>,
) {
    let mut client = HttpClient::new(addr, timeout);
    while !stop.load(Ordering::Relaxed) {
        let id = *worker_id.lock().expect("worker id lock");
        if let Some(id) = id {
            match client.request(
                "POST",
                "/v1/cluster/heartbeat",
                Some(&format!("{{\"worker\":{id}}}")),
            ) {
                // The coordinator no longer knows us (e.g. a long GC-like
                // stall outlived the TTL): force the main loop to rejoin.
                Ok((status, _)) if !(200..300).contains(&status) => {
                    *worker_id.lock().expect("worker id lock") = None;
                }
                _ => {}
            }
        }
        pause(stop, period);
    }
}

struct Runtime {
    cfg: WorkerConfig,
    registry: Arc<MetricsRegistry>,
    client: HttpClient,
    stop: Arc<AtomicBool>,
    cancel: CancelToken,
    worker_id: Arc<Mutex<Option<u64>>>,
    /// The most recent (wire config, evaluator) pair; campaigns almost
    /// always share one config, so one slot of reuse is enough to keep
    /// benchmark artifacts and memory-cached cells warm.
    eval: Option<(WireConfig, Evaluator)>,
    sync_seq: u64,
}

impl Runtime {
    fn run(&mut self) {
        while !self.stop.load(Ordering::Relaxed) {
            let Some(id) = self.ensure_joined() else {
                break; // stop requested while joining
            };
            match self.lease(id) {
                LeaseOutcome::Units(units) => self.execute(id, units),
                LeaseOutcome::Idle => {
                    self.sync_pull();
                    pause(&self.stop, self.cfg.idle_poll);
                }
                LeaseOutcome::Expired => {
                    *self.worker_id.lock().expect("worker id lock") = None;
                }
                LeaseOutcome::Transport => pause(&self.stop, self.cfg.idle_poll),
            }
        }
    }

    /// Joins (or rejoins) the coordinator, retrying until stopped.
    fn ensure_joined(&mut self) -> Option<u64> {
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(id) = *self.worker_id.lock().expect("worker id lock") {
                return Some(id);
            }
            let body = format!("{{\"name\":\"{}\"}}", json_escape(&self.cfg.name));
            let joined = match self.client.request("POST", "/v1/cluster/join", Some(&body)) {
                Ok((200, body)) => Value::parse(&body)
                    .ok()
                    .and_then(|v| v.get("worker").and_then(Value::as_f64))
                    .map(|f| f as u64),
                _ => None,
            };
            if let Some(id) = joined {
                *self.worker_id.lock().expect("worker id lock") = Some(id);
                self.registry.add("cluster.worker.joins", 1);
                return Some(id);
            }
            pause(&self.stop, self.cfg.idle_poll);
        }
    }

    fn lease(&mut self, id: u64) -> LeaseOutcome {
        let body = format!(
            "{{\"worker\":{id},\"max_units\":{}}}",
            self.cfg.lease_units.max(1)
        );
        let response = self
            .client
            .request("POST", "/v1/cluster/lease", Some(&body));
        let (status, body) = match response {
            Ok(r) => r,
            Err(_) => return LeaseOutcome::Transport,
        };
        if !(200..300).contains(&status) {
            return LeaseOutcome::Expired;
        }
        let Some(units) = Value::parse(&body).ok().and_then(|v| parse_lease_units(&v)) else {
            return LeaseOutcome::Transport;
        };
        if units.is_empty() {
            LeaseOutcome::Idle
        } else {
            LeaseOutcome::Units(units)
        }
    }

    /// Executes leased units grouped by wire config and reports each
    /// cell's outcome.
    fn execute(&mut self, id: u64, units: Vec<(UnitRef, CellKey, WireConfig)>) {
        let mut groups: Vec<(WireConfig, Vec<(UnitRef, CellKey)>)> = Vec::new();
        for (unit, key, wire) in units {
            match groups.iter_mut().find(|(w, _)| *w == wire) {
                Some((_, members)) => members.push((unit, key)),
                None => groups.push((wire, vec![(unit, key)])),
            }
        }
        for (wire, members) in groups {
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            let plan = ExperimentPlan::for_cells(members.iter().map(|(_, k)| *k));
            let results = self.evaluator_for(wire).run_plan(&plan);
            if self.stop.load(Ordering::Relaxed) {
                return; // cancelled mid-plan: let the leases expire
            }
            for (unit, key) in members {
                let outcome = results
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, r)| r)
                    .expect("run_plan returns every planned cell");
                match outcome {
                    Ok(run) => self.push_complete(
                        id,
                        unit,
                        &StoredCell {
                            failed_links: run.failed_links,
                            trials: run.trials.clone(),
                        },
                    ),
                    // All links failing is a *result* (the store encodes
                    // it as zero surviving trials), not a retryable error.
                    Err(EvalError::AllLinksFailed { attempts, .. }) => self.push_complete(
                        id,
                        unit,
                        &StoredCell {
                            failed_links: *attempts,
                            trials: Vec::new(),
                        },
                    ),
                    Err(e) => self.push_fail(id, unit, &e.to_string()),
                }
            }
        }
    }

    fn evaluator_for(&mut self, wire: WireConfig) -> &mut Evaluator {
        let rebuild = !matches!(&self.eval, Some((w, _)) if *w == wire);
        if rebuild {
            let eval = Evaluator::new(wire.apply(&self.cfg.base))
                .with_store(self.cfg.store.clone())
                .with_cancel_token(self.cancel.clone())
                .with_recorder(self.registry.clone() as Arc<dyn Recorder>);
            self.eval = Some((wire, eval));
        }
        &mut self.eval.as_mut().expect("evaluator just ensured").1
    }

    fn push_complete(&mut self, id: u64, unit: UnitRef, cell: &StoredCell) {
        let body = format!(
            "{{\"worker\":{id},\"campaign\":{},\"index\":{},\"payload\":\"{}\"}}",
            unit.campaign,
            unit.index,
            cell_payload_to_hex(cell),
        );
        // Push with a few retries; an undeliverable result is not lost —
        // the lease expires and another worker recomputes the cell.
        for _ in 0..3 {
            match self
                .client
                .request("POST", "/v1/cluster/complete", Some(&body))
            {
                Ok((status, _)) if (200..300).contains(&status) => {
                    self.registry.add("cluster.worker.units.completed", 1);
                    return;
                }
                Ok(_) => return, // coordinator rejected the ref: drop it
                Err(_) => pause(&self.stop, Duration::from_millis(50)),
            }
        }
    }

    fn push_fail(&mut self, id: u64, unit: UnitRef, error: &str) {
        let body = format!(
            "{{\"worker\":{id},\"campaign\":{},\"index\":{},\"error\":\"{}\"}}",
            unit.campaign,
            unit.index,
            json_escape(error),
        );
        let _ = self.client.request("POST", "/v1/cluster/fail", Some(&body));
        self.registry.add("cluster.worker.units.failed", 1);
    }

    /// Tails the coordinator's sync log into the local store so this
    /// node can answer point queries for cells other workers computed.
    fn sync_pull(&mut self) {
        loop {
            let path = format!("/v1/cluster/sync?after={}&limit=64", self.sync_seq);
            let Ok((200, body)) = self.client.request("GET", &path, None) else {
                return;
            };
            let Some(v) = Value::parse(&body).ok() else {
                return;
            };
            let latest = v
                .get("latest")
                .and_then(Value::as_f64)
                .map_or(self.sync_seq, |f| f as u64);
            let Some(entries) = v.get("entries").and_then(Value::as_arr) else {
                return;
            };
            if entries.is_empty() {
                self.sync_seq = self.sync_seq.max(latest);
                return;
            }
            for entry in entries {
                let Some((seq, wire, key, cell)) = parse_sync_entry(entry) else {
                    // A malformed entry would repeat forever; skip past it.
                    self.sync_seq += 1;
                    continue;
                };
                let store_key = StoreKey::for_cell(
                    &wire.apply(&self.cfg.base),
                    &CoreConfig::dsn2016(),
                    &CacheGeometry::dsn_l1(),
                    &key,
                );
                if self.cfg.store.load(&store_key).is_none()
                    && self.cfg.store.save(&store_key, &cell).is_ok()
                {
                    self.registry.add("cluster.worker.sync_cells", 1);
                }
                self.sync_seq = self.sync_seq.max(seq);
            }
            if self.sync_seq >= latest {
                return;
            }
        }
    }
}

enum LeaseOutcome {
    Units(Vec<(UnitRef, CellKey, WireConfig)>),
    Idle,
    /// The coordinator no longer recognizes this worker id.
    Expired,
    Transport,
}

fn parse_lease_units(v: &Value) -> Option<Vec<(UnitRef, CellKey, WireConfig)>> {
    let arr = v.get("units").and_then(Value::as_arr)?;
    let mut units = Vec::with_capacity(arr.len());
    for u in arr {
        let campaign = u.get("campaign").and_then(Value::as_f64)? as u64;
        let index = u.get("index").and_then(Value::as_f64)? as usize;
        let key = cell_from_json(u.get("cell")?).ok()?;
        let wire = WireConfig::from_json(u.get("config")?).ok()?;
        units.push((UnitRef { campaign, index }, key, wire));
    }
    Some(units)
}

fn parse_sync_entry(v: &Value) -> Option<(u64, WireConfig, CellKey, StoredCell)> {
    let seq = v.get("seq").and_then(Value::as_f64)? as u64;
    let wire = WireConfig::from_json(v.get("config")?).ok()?;
    let key = cell_from_json(v.get("cell")?).ok()?;
    let cell = cell_payload_from_hex(v.get("payload").and_then(Value::as_str)?)?;
    Some((seq, wire, key, cell))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::cell_to_json;
    use dvs_core::Scheme;
    use dvs_sram::MilliVolts;
    use dvs_workloads::Benchmark;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    fn read_request(stream: &mut std::net::TcpStream) -> Option<(String, String)> {
        let mut buf = Vec::new();
        let header_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk).ok()?;
            if n == 0 {
                return None;
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(buf[..header_end].to_vec()).ok()?;
        let mut content_length = 0usize;
        for line in head.split("\r\n").skip(1) {
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok()?;
                }
            }
        }
        let body_start = header_end + 4;
        while buf.len() < body_start + content_length {
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk).ok()?;
            if n == 0 {
                return None;
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        let target = head.split(' ').take(2).collect::<Vec<_>>().join(" ");
        let body = String::from_utf8(buf[body_start..body_start + content_length].to_vec()).ok()?;
        Some((target, body))
    }

    fn respond(stream: &mut std::net::TcpStream, body: &str) {
        let resp = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(resp.as_bytes()).expect("write response");
    }

    /// Drives the full worker loop against a scripted fake coordinator:
    /// join → lease one real (tiny) cell → expect the computed result
    /// pushed back → serve a sync entry → idle. Exercises every request
    /// the worker makes without a real server.
    #[test]
    fn worker_loop_executes_a_lease_and_tails_the_sync_log() {
        let base = EvalConfig {
            maps: 1,
            trace_instrs: 400,
            threads: 1,
            ..EvalConfig::quick()
        };
        let wire = WireConfig::of(&base);
        let leased = CellKey::new(Benchmark::Crc32, Scheme::DefectFree, MilliVolts::new(760));
        let synced = CellKey::new(Benchmark::Qsort, Scheme::DefectFree, MilliVolts::new(760));
        let synced_cell = StoredCell {
            failed_links: 4,
            trials: Vec::new(),
        };

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let lease_body = format!(
            "{{\"units\":[{{\"campaign\":1,\"index\":0,\"stolen\":false,\
             \"cell\":{},\"config\":{}}}]}}",
            cell_to_json(&leased),
            wire.to_json(),
        );
        let sync_body = format!(
            "{{\"latest\":1,\"entries\":[{{\"seq\":1,\"config\":{},\"cell\":{},\
             \"payload\":\"{}\"}}]}}",
            wire.to_json(),
            cell_to_json(&synced),
            cell_payload_to_hex(&synced_cell),
        );
        let server = std::thread::spawn(move || {
            let mut leased_out = false;
            let mut completed: Option<String> = None;
            let mut sync_served = false;
            // Serve connections (worker + heartbeat threads) until the
            // scripted interaction has fully played out.
            listener.set_nonblocking(false).expect("blocking listener");
            'outer: loop {
                let (mut stream, _) = listener.accept().expect("accept");
                while let Some((target, body)) = read_request(&mut stream) {
                    match target.as_str() {
                        "POST /v1/cluster/join" => {
                            assert!(body.contains("\"name\""));
                            respond(&mut stream, "{\"worker\":7}");
                        }
                        "POST /v1/cluster/heartbeat" => respond(&mut stream, "{\"ok\":true}"),
                        "POST /v1/cluster/lease" => {
                            assert!(body.contains("\"worker\":7"));
                            if leased_out {
                                respond(&mut stream, "{\"units\":[]}");
                            } else {
                                leased_out = true;
                                respond(&mut stream, &lease_body);
                            }
                        }
                        "POST /v1/cluster/complete" => {
                            completed = Some(body);
                            respond(&mut stream, "{\"ok\":true}");
                        }
                        target if target.starts_with("GET /v1/cluster/sync") => {
                            if sync_served && completed.is_some() {
                                respond(&mut stream, "{\"latest\":1,\"entries\":[]}");
                                break 'outer;
                            }
                            sync_served = true;
                            respond(&mut stream, &sync_body);
                        }
                        other => panic!("unexpected request {other} ({body})"),
                    }
                }
            }
            completed.expect("worker pushed a completed cell")
        });

        let dir = std::env::temp_dir().join(format!("dvs-worker-loop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).expect("store");
        let mut cfg = WorkerConfig::new(addr, base, store.clone());
        cfg.heartbeat = Duration::from_millis(50);
        cfg.idle_poll = Duration::from_millis(20);
        let registry = Arc::new(MetricsRegistry::new());
        let handle = spawn_worker(cfg, registry.clone());

        let completed = server.join().expect("fake coordinator");
        handle.stop();
        handle.join();

        // The pushed payload decodes to the locally stored result.
        let hex = completed
            .split("\"payload\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("payload field");
        let pushed = cell_payload_from_hex(hex).expect("payload decodes");
        let leased_key = StoreKey::for_cell(
            &wire.apply(&base),
            &CoreConfig::dsn2016(),
            &CacheGeometry::dsn_l1(),
            &leased,
        );
        assert_eq!(store.load(&leased_key), Some(pushed));

        // The sync entry landed in the local store byte-for-byte.
        let synced_key = StoreKey::for_cell(
            &wire.apply(&base),
            &CoreConfig::dsn2016(),
            &CacheGeometry::dsn_l1(),
            &synced,
        );
        assert_eq!(store.load(&synced_key), Some(synced_cell));
        assert_eq!(registry.counter("cluster.worker.units.completed"), 1);
        assert_eq!(registry.counter("cluster.worker.sync_cells"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
