//! The coordinator: a lock-protected lease/retry/steal state machine.
//!
//! Every public transition takes the current [`Instant`] as an argument
//! instead of reading the clock, so unit tests drive lease expiry, retry
//! backoff and work stealing by passing fabricated times — no sleeping.
//! The serve layer passes `Instant::now()`; expiry is evaluated lazily
//! on every call ([`Coordinator::tick`] runs at the top of `lease`,
//! `heartbeat` and the status accessors), so no background reaper thread
//! is needed.
//!
//! Correctness argument for duplicate dispatch: a cell is a pure
//! function of its [`StoreKey`], so any two workers computing the same
//! unit produce bit-identical [`StoredCell`]s. The coordinator keeps the
//! first result it sees and counts later ones as duplicates — losing a
//! race never loses information.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dvs_core::{CellKey, EvalConfig, ExperimentPlan, ResultStore, StoreKey, StoredCell};
use dvs_cpu::CoreConfig;
use dvs_obs::{MetricsRegistry, Recorder};
use dvs_sram::CacheGeometry;

use crate::proto::{UnitRef, WireConfig};

/// Tuning knobs of the lease protocol.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// A lease (and a worker registration) expires this long after the
    /// last heartbeat; heartbeats renew every lease the worker holds.
    pub lease_ttl: Duration,
    /// An in-flight unit becomes stealable (eligible for duplicate
    /// dispatch to an idle worker) this long after it was first leased.
    pub steal_after: Duration,
    /// A unit that has failed or expired this many times is terminal.
    pub max_attempts: u32,
    /// Requeue backoff is `retry_backoff * attempts` (linear).
    pub retry_backoff: Duration,
    /// Units granted per lease call at most.
    pub lease_units: usize,
    /// Concurrent leases per unit at most (1 = no stealing).
    pub max_duplicates: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            lease_ttl: Duration::from_secs(5),
            steal_after: Duration::from_secs(3),
            max_attempts: 5,
            retry_backoff: Duration::from_millis(500),
            lease_units: 2,
            max_duplicates: 2,
        }
    }
}

/// One granted lease, as returned to the leasing worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseGrant {
    /// The unit leased.
    pub unit: UnitRef,
    /// The cell to compute.
    pub key: CellKey,
    /// The result-relevant config to compute it under.
    pub wire: WireConfig,
    /// Whether this grant duplicates a still-live lease (work stealing).
    pub stolen: bool,
}

/// Terminal or in-flight outcome of one cell, in campaign plan order.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// Not finished yet (pending, backing off, or leased).
    Pending,
    /// Computed (possibly with zero surviving trials — all links
    /// failed — which is a *result*, not an error).
    Completed(StoredCell),
    /// Gave up after [`ClusterConfig::max_attempts`].
    Failed(String),
}

/// Progress snapshot of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignProgress {
    /// Campaign id.
    pub id: u64,
    /// The campaign's result-relevant config.
    pub wire: WireConfig,
    /// Planned cells.
    pub total: usize,
    /// Cells completed.
    pub completed: usize,
    /// Cells terminally failed.
    pub failed: usize,
    /// Whether every cell is terminal.
    pub done: bool,
    /// Per-cell outcomes in plan order.
    pub results: Vec<(CellKey, CellOutcome)>,
}

/// Registration status of one worker.
#[derive(Debug, Clone)]
pub struct WorkerStatus {
    /// Worker id.
    pub id: u64,
    /// Self-reported name.
    pub name: String,
    /// Whether the worker is currently considered alive.
    pub alive: bool,
    /// Units this worker completed first.
    pub units_done: u64,
}

/// One completed cell in the sync log; workers tail the log to converge
/// their local stores on the whole campaign.
#[derive(Debug, Clone)]
pub struct SyncEntry {
    /// Position in the log, starting at 1.
    pub seq: u64,
    /// Config the cell was computed under.
    pub wire: WireConfig,
    /// The cell.
    pub key: CellKey,
    /// Its result payload.
    pub cell: StoredCell,
}

#[derive(Debug)]
struct Lease {
    worker: u64,
    expires_at: Instant,
}

#[derive(Debug)]
enum UnitState {
    /// Waiting to be leased; `available_at` implements retry backoff.
    Pending {
        available_at: Option<Instant>,
    },
    Leased,
    Completed(StoredCell),
    Failed(String),
}

#[derive(Debug)]
struct Unit {
    key: CellKey,
    attempts: u32,
    leases: Vec<Lease>,
    first_leased_at: Option<Instant>,
    state: UnitState,
}

#[derive(Debug)]
struct Campaign {
    wire: WireConfig,
    units: Vec<Unit>,
}

#[derive(Debug)]
struct WorkerSlot {
    name: String,
    last_seen: Instant,
    alive: bool,
    units_done: u64,
}

#[derive(Debug, Default)]
struct Inner {
    next_worker: u64,
    workers: BTreeMap<u64, WorkerSlot>,
    next_campaign: u64,
    campaigns: BTreeMap<u64, Campaign>,
    sync_log: Vec<SyncEntry>,
}

/// The coordinator node's cluster state. Shared between the HTTP routes
/// via `Arc`; one mutex guards everything (transitions are cheap — the
/// expensive part, simulation, happens on workers).
#[derive(Debug)]
pub struct Coordinator {
    cfg: ClusterConfig,
    base: EvalConfig,
    store: Option<ResultStore>,
    registry: Arc<MetricsRegistry>,
    inner: Mutex<Inner>,
}

impl Coordinator {
    /// Creates a coordinator. `base` supplies the non-result-relevant
    /// config defaults; `store` (when present) pre-resolves submitted
    /// cells and persists pushed results.
    pub fn new(
        cfg: ClusterConfig,
        base: EvalConfig,
        store: Option<ResultStore>,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        Coordinator {
            cfg,
            base,
            store,
            registry,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The protocol knobs.
    pub fn cfg(&self) -> &ClusterConfig {
        &self.cfg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("coordinator lock poisoned")
    }

    fn store_key(&self, wire: &WireConfig, key: &CellKey) -> StoreKey {
        // The StoreKey excludes every non-result-relevant field, so
        // applying the wire config over *any* base yields the same key;
        // using the coordinator's own base is purely for convenience.
        StoreKey::for_cell(
            &wire.apply(&self.base),
            &CoreConfig::dsn2016(),
            &CacheGeometry::dsn_l1(),
            key,
        )
    }

    /// Registers a worker and returns its id.
    pub fn join(&self, name: &str, now: Instant) -> u64 {
        let mut inner = self.lock();
        inner.next_worker += 1;
        let id = inner.next_worker;
        inner.workers.insert(
            id,
            WorkerSlot {
                name: name.to_string(),
                last_seen: now,
                alive: true,
                units_done: 0,
            },
        );
        self.registry.add("cluster.workers.joined", 1);
        self.registry.gauge(
            "cluster.workers.alive",
            inner.workers.values().filter(|w| w.alive).count() as u64,
        );
        id
    }

    /// Renews a worker's registration and every lease it holds.
    ///
    /// # Errors
    ///
    /// When the worker is unknown or already declared dead — the worker
    /// must rejoin (its leases have been requeued).
    pub fn heartbeat(&self, worker: u64, now: Instant) -> Result<(), String> {
        let mut inner = self.lock();
        self.expire(&mut inner, now);
        let slot = inner
            .workers
            .get_mut(&worker)
            .filter(|w| w.alive)
            .ok_or_else(|| format!("unknown or expired worker {worker}"))?;
        slot.last_seen = now;
        let mut renewed = 0u64;
        for campaign in inner.campaigns.values_mut() {
            for unit in &mut campaign.units {
                for lease in unit.leases.iter_mut().filter(|l| l.worker == worker) {
                    lease.expires_at = now + self.cfg.lease_ttl;
                    renewed += 1;
                }
            }
        }
        if renewed > 0 {
            self.registry.add("cluster.leases.renewed", renewed);
        }
        Ok(())
    }

    /// Submits a campaign; returns its id. Cells the coordinator's own
    /// store already holds complete immediately (and enter the sync log)
    /// without ever being dispatched.
    pub fn submit(&self, wire: WireConfig, plan: &ExperimentPlan, now: Instant) -> u64 {
        let _ = now;
        let resolved: Vec<Option<StoredCell>> = plan
            .cells()
            .iter()
            .map(|key| {
                self.store
                    .as_ref()
                    .and_then(|s| s.load(&self.store_key(&wire, key)))
            })
            .collect();
        let mut inner = self.lock();
        inner.next_campaign += 1;
        let id = inner.next_campaign;
        let mut units = Vec::with_capacity(plan.len());
        let mut hits = 0u64;
        for (key, hit) in plan.cells().iter().zip(resolved) {
            let state = match hit {
                Some(cell) => {
                    hits += 1;
                    Self::log_sync(&mut inner.sync_log, &wire, key, &cell);
                    UnitState::Completed(cell)
                }
                None => UnitState::Pending { available_at: None },
            };
            units.push(Unit {
                key: *key,
                attempts: 0,
                leases: Vec::new(),
                first_leased_at: None,
                state,
            });
        }
        inner.campaigns.insert(id, Campaign { wire, units });
        self.registry.add("cluster.campaigns.submitted", 1);
        if hits > 0 {
            self.registry.add("cluster.units.store_hits", hits);
        }
        id
    }

    /// Grants up to `max_units` (clamped to [`ClusterConfig::lease_units`])
    /// units to a worker. Pending units are granted first, in campaign
    /// and plan order; an otherwise-idle worker instead *steals* — takes
    /// a duplicate lease on — in-flight units older than
    /// [`ClusterConfig::steal_after`], never its own and never beyond
    /// [`ClusterConfig::max_duplicates`] concurrent leases.
    ///
    /// # Errors
    ///
    /// When the worker is unknown or expired (it must rejoin).
    pub fn lease(
        &self,
        worker: u64,
        max_units: usize,
        now: Instant,
    ) -> Result<Vec<LeaseGrant>, String> {
        let mut inner = self.lock();
        self.expire(&mut inner, now);
        let slot = inner
            .workers
            .get_mut(&worker)
            .filter(|w| w.alive)
            .ok_or_else(|| format!("unknown or expired worker {worker}"))?;
        slot.last_seen = now;
        let budget = max_units.min(self.cfg.lease_units).max(1);
        let mut grants = Vec::new();
        let expires_at = now + self.cfg.lease_ttl;
        for (&cid, campaign) in inner.campaigns.iter_mut() {
            if grants.len() >= budget {
                break;
            }
            for (index, unit) in campaign.units.iter_mut().enumerate() {
                if grants.len() >= budget {
                    break;
                }
                let ready = match unit.state {
                    UnitState::Pending { available_at } => available_at.is_none_or(|at| at <= now),
                    _ => false,
                };
                if !ready {
                    continue;
                }
                unit.state = UnitState::Leased;
                unit.leases.push(Lease { worker, expires_at });
                unit.first_leased_at.get_or_insert(now);
                grants.push(LeaseGrant {
                    unit: UnitRef {
                        campaign: cid,
                        index,
                    },
                    key: unit.key,
                    wire: campaign.wire,
                    stolen: false,
                });
            }
        }
        if grants.is_empty() {
            // Idle worker: duplicate-dispatch slow in-flight units.
            'steal: for (&cid, campaign) in inner.campaigns.iter_mut() {
                for (index, unit) in campaign.units.iter_mut().enumerate() {
                    if grants.len() >= budget {
                        break 'steal;
                    }
                    let slow = matches!(unit.state, UnitState::Leased)
                        && unit
                            .first_leased_at
                            .is_some_and(|at| now.duration_since(at) >= self.cfg.steal_after)
                        && unit.leases.len() < self.cfg.max_duplicates
                        && unit.leases.iter().all(|l| l.worker != worker);
                    if !slow {
                        continue;
                    }
                    unit.leases.push(Lease { worker, expires_at });
                    grants.push(LeaseGrant {
                        unit: UnitRef {
                            campaign: cid,
                            index,
                        },
                        key: unit.key,
                        wire: campaign.wire,
                        stolen: true,
                    });
                }
            }
        }
        let stolen = grants.iter().filter(|g| g.stolen).count() as u64;
        if stolen > 0 {
            self.registry.add("cluster.leases.stolen", stolen);
        }
        let fresh = grants.len() as u64 - stolen;
        if fresh > 0 {
            self.registry.add("cluster.leases.granted", fresh);
        }
        Ok(grants)
    }

    /// Accepts a completed cell. First writer wins: a duplicate of an
    /// already-completed unit is counted and discarded (determinism
    /// guarantees its bytes were identical anyway). Late results are
    /// accepted from any worker — even one declared dead or a unit
    /// already marked failed — because a computed result is correct
    /// regardless of who delivers it or when.
    ///
    /// # Errors
    ///
    /// When the unit reference does not exist.
    pub fn complete(
        &self,
        worker: u64,
        unit_ref: UnitRef,
        cell: &StoredCell,
        now: Instant,
    ) -> Result<(), String> {
        let _ = now;
        let save = {
            let mut inner = self.lock();
            let campaign = inner
                .campaigns
                .get_mut(&unit_ref.campaign)
                .ok_or_else(|| format!("unknown campaign {}", unit_ref.campaign))?;
            let wire = campaign.wire;
            let unit = campaign
                .units
                .get_mut(unit_ref.index)
                .ok_or_else(|| format!("campaign has no unit {}", unit_ref.index))?;
            if matches!(unit.state, UnitState::Completed(_)) {
                self.registry.add("cluster.units.duplicate", 1);
                return Ok(());
            }
            let key = unit.key;
            unit.leases.clear();
            unit.state = UnitState::Completed(cell.clone());
            Self::log_sync(&mut inner.sync_log, &wire, &key, cell);
            if let Some(slot) = inner.workers.get_mut(&worker) {
                slot.units_done += 1;
            }
            self.registry.add("cluster.units.completed", 1);
            (wire, key)
        };
        // Persist outside the lock: a slow disk must not stall leasing.
        if let Some(store) = &self.store {
            let (wire, key) = save;
            if let Err(e) = store.save(&self.store_key(&wire, &key), cell) {
                // A failed save degrades restart resumability, not
                // correctness — the in-memory result stands.
                self.registry.add("cluster.store.save_errors", 1);
                let _ = e;
            }
        }
        Ok(())
    }

    /// Records a worker-reported failure of a leased unit (e.g. an
    /// invariant violation). Drops that worker's lease; when no live
    /// lease remains the unit requeues with backoff, or fails terminally
    /// after [`ClusterConfig::max_attempts`].
    ///
    /// # Errors
    ///
    /// When the unit reference does not exist.
    pub fn fail(
        &self,
        worker: u64,
        unit_ref: UnitRef,
        error: &str,
        now: Instant,
    ) -> Result<(), String> {
        let mut inner = self.lock();
        let campaign = inner
            .campaigns
            .get_mut(&unit_ref.campaign)
            .ok_or_else(|| format!("unknown campaign {}", unit_ref.campaign))?;
        let unit = campaign
            .units
            .get_mut(unit_ref.index)
            .ok_or_else(|| format!("campaign has no unit {}", unit_ref.index))?;
        if matches!(unit.state, UnitState::Completed(_)) {
            return Ok(()); // a duplicate already delivered the result
        }
        unit.leases.retain(|l| l.worker != worker);
        if unit.leases.is_empty() {
            self.requeue(unit, error, now);
        }
        Ok(())
    }

    /// Lazily applies the passage of time: leases past their expiry are
    /// dropped, units left with no live lease requeue (or fail
    /// terminally), workers silent past the TTL are declared dead.
    pub fn tick(&self, now: Instant) {
        let mut inner = self.lock();
        self.expire(&mut inner, now);
    }

    fn expire(&self, inner: &mut Inner, now: Instant) {
        let mut died = 0u64;
        for slot in inner.workers.values_mut() {
            if slot.alive && now.duration_since(slot.last_seen) > self.cfg.lease_ttl {
                slot.alive = false;
                died += 1;
            }
        }
        if died > 0 {
            self.registry.add("cluster.workers.dead", died);
            self.registry.gauge(
                "cluster.workers.alive",
                inner.workers.values().filter(|w| w.alive).count() as u64,
            );
        }
        let mut expired = 0u64;
        for campaign in inner.campaigns.values_mut() {
            for unit in &mut campaign.units {
                let before = unit.leases.len();
                unit.leases.retain(|l| l.expires_at > now);
                expired += (before - unit.leases.len()) as u64;
                if matches!(unit.state, UnitState::Leased) && unit.leases.is_empty() {
                    self.requeue(unit, "lease expired", now);
                }
            }
        }
        if expired > 0 {
            self.registry.add("cluster.leases.expired", expired);
        }
    }

    fn requeue(&self, unit: &mut Unit, error: &str, now: Instant) {
        unit.attempts += 1;
        unit.first_leased_at = None;
        if unit.attempts >= self.cfg.max_attempts {
            unit.state =
                UnitState::Failed(format!("{error} ({} attempts exhausted)", unit.attempts));
            self.registry.add("cluster.units.failed", 1);
        } else {
            unit.state = UnitState::Pending {
                available_at: Some(now + self.cfg.retry_backoff * unit.attempts),
            };
            self.registry.add("cluster.units.requeued", 1);
        }
    }

    fn log_sync(log: &mut Vec<SyncEntry>, wire: &WireConfig, key: &CellKey, cell: &StoredCell) {
        let seq = log.len() as u64 + 1;
        log.push(SyncEntry {
            seq,
            wire: *wire,
            key: *key,
            cell: cell.clone(),
        });
    }

    /// Progress (and per-cell outcomes, in plan order) of a campaign.
    /// Runs lease expiry first so status polls alone keep time moving.
    pub fn progress(&self, id: u64, now: Instant) -> Option<CampaignProgress> {
        let mut inner = self.lock();
        self.expire(&mut inner, now);
        let campaign = inner.campaigns.get(&id)?;
        let mut completed = 0;
        let mut failed = 0;
        let results: Vec<(CellKey, CellOutcome)> = campaign
            .units
            .iter()
            .map(|u| {
                let outcome = match &u.state {
                    UnitState::Completed(cell) => {
                        completed += 1;
                        CellOutcome::Completed(cell.clone())
                    }
                    UnitState::Failed(e) => {
                        failed += 1;
                        CellOutcome::Failed(e.clone())
                    }
                    _ => CellOutcome::Pending,
                };
                (u.key, outcome)
            })
            .collect();
        Some(CampaignProgress {
            id,
            wire: campaign.wire,
            total: results.len(),
            completed,
            failed,
            done: completed + failed == results.len(),
            results,
        })
    }

    /// Ids of all submitted campaigns, in submission order.
    pub fn campaign_ids(&self) -> Vec<u64> {
        self.lock().campaigns.keys().copied().collect()
    }

    /// Registration status of every worker ever joined.
    pub fn workers(&self, now: Instant) -> Vec<WorkerStatus> {
        let mut inner = self.lock();
        self.expire(&mut inner, now);
        inner
            .workers
            .iter()
            .map(|(&id, w)| WorkerStatus {
                id,
                name: w.name.clone(),
                alive: w.alive,
                units_done: w.units_done,
            })
            .collect()
    }

    /// Units currently waiting to be (re)leased, across all campaigns —
    /// the coordinator's notion of queue depth.
    pub fn pending_units(&self) -> usize {
        self.lock()
            .campaigns
            .values()
            .flat_map(|c| &c.units)
            .filter(|u| matches!(u.state, UnitState::Pending { .. }))
            .count()
    }

    /// Sync-log entries with `seq > after`, up to `limit`, plus the
    /// latest sequence number. Workers poll this to converge their local
    /// stores on every completed cell of every campaign.
    pub fn sync_since(&self, after: u64, limit: usize) -> (Vec<SyncEntry>, u64) {
        let inner = self.lock();
        let latest = inner.sync_log.len() as u64;
        let from = (after.min(latest)) as usize;
        let entries = inner.sync_log[from..].iter().take(limit).cloned().collect();
        (entries, latest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_core::Scheme;
    use dvs_sram::MilliVolts;
    use dvs_workloads::Benchmark;

    fn coordinator(cfg: ClusterConfig) -> Coordinator {
        Coordinator::new(
            cfg,
            EvalConfig::quick(),
            None,
            Arc::new(MetricsRegistry::new()),
        )
    }

    fn quick_cfg() -> ClusterConfig {
        ClusterConfig {
            lease_ttl: Duration::from_millis(100),
            steal_after: Duration::from_millis(50),
            max_attempts: 3,
            retry_backoff: Duration::from_millis(10),
            lease_units: 2,
            max_duplicates: 2,
        }
    }

    fn plan2() -> ExperimentPlan {
        ExperimentPlan::for_cells([
            CellKey::new(Benchmark::Crc32, Scheme::FfwBbr, MilliVolts::new(480)),
            CellKey::new(Benchmark::Qsort, Scheme::FfwBbr, MilliVolts::new(480)),
        ])
    }

    fn cell(n: u64) -> StoredCell {
        StoredCell {
            failed_links: n,
            trials: Vec::new(),
        }
    }

    #[test]
    fn leases_grant_in_plan_order_up_to_budget() {
        let c = coordinator(quick_cfg());
        let t0 = Instant::now();
        let w = c.join("w", t0);
        let id = c.submit(WireConfig::of(&EvalConfig::quick()), &plan2(), t0);
        let grants = c.lease(w, 8, t0).unwrap();
        assert_eq!(grants.len(), 2); // clamped to lease_units
        assert_eq!(
            grants[0].unit,
            UnitRef {
                campaign: id,
                index: 0
            }
        );
        assert_eq!(
            grants[1].unit,
            UnitRef {
                campaign: id,
                index: 1
            }
        );
        assert!(grants.iter().all(|g| !g.stolen));
        // Everything is leased now; an idle second worker gets nothing
        // until the steal threshold passes.
        let w2 = c.join("w2", t0);
        assert!(c.lease(w2, 1, t0).unwrap().is_empty());
    }

    #[test]
    fn heartbeats_keep_leases_alive_and_silence_kills_them() {
        let cfg = quick_cfg();
        let c = coordinator(cfg);
        let t0 = Instant::now();
        let w = c.join("w", t0);
        let id = c.submit(WireConfig::of(&EvalConfig::quick()), &plan2(), t0);
        let g = c.lease(w, 1, t0).unwrap();
        assert_eq!(g.len(), 1);

        // Renewed at 80ms and 160ms: still leased at 200ms.
        let t1 = t0 + Duration::from_millis(80);
        c.heartbeat(w, t1).unwrap();
        let t2 = t0 + Duration::from_millis(160);
        c.heartbeat(w, t2).unwrap();
        let p = c.progress(id, t0 + Duration::from_millis(200)).unwrap();
        assert_eq!(p.completed, 0);
        assert_eq!(p.failed, 0);

        // Silence past the TTL: the lease expires, the worker is dead,
        // the unit requeues with backoff.
        let t3 = t2 + cfg.lease_ttl + Duration::from_millis(1);
        c.tick(t3);
        assert!(c.heartbeat(w, t3).is_err(), "dead worker must rejoin");
        assert_eq!(c.pending_units(), 2);
        // Backoff holds the unit back, then releases it.
        let w2 = c.join("w2", t3);
        let g = c.lease(w2, 2, t3).unwrap();
        assert_eq!(g.len(), 1, "requeued unit still backing off");
        let t4 = t3 + cfg.retry_backoff;
        let g = c.lease(w2, 2, t4).unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn repeated_expiry_fails_terminally_after_max_attempts() {
        let cfg = quick_cfg();
        let c = coordinator(cfg);
        let t0 = Instant::now();
        let plan = ExperimentPlan::for_cells([CellKey::new(
            Benchmark::Crc32,
            Scheme::FfwBbr,
            MilliVolts::new(480),
        )]);
        let id = c.submit(WireConfig::of(&EvalConfig::quick()), &plan, t0);
        let mut now = t0;
        for attempt in 1..=cfg.max_attempts {
            let w = c.join("w", now);
            now += cfg.retry_backoff * attempt; // clear any backoff
            let g = c.lease(w, 1, now).unwrap();
            assert_eq!(g.len(), 1, "attempt {attempt}");
            now += cfg.lease_ttl + Duration::from_millis(1);
            c.tick(now);
        }
        let p = c.progress(id, now).unwrap();
        assert_eq!(p.failed, 1);
        assert!(p.done);
        assert!(matches!(&p.results[0].1, CellOutcome::Failed(e) if e.contains("lease expired")));
    }

    #[test]
    fn idle_worker_steals_slow_units_but_never_its_own() {
        let cfg = quick_cfg();
        let c = coordinator(cfg);
        let t0 = Instant::now();
        let w1 = c.join("w1", t0);
        let id = c.submit(WireConfig::of(&EvalConfig::quick()), &plan2(), t0);
        assert_eq!(c.lease(w1, 2, t0).unwrap().len(), 2);

        // w1 itself can never duplicate its own leases.
        let t1 = t0 + cfg.steal_after;
        c.heartbeat(w1, t1).unwrap();
        assert!(c.lease(w1, 2, t1).unwrap().is_empty());

        // An idle second worker steals both (max_duplicates = 2).
        let w2 = c.join("w2", t1);
        let g = c.lease(w2, 2, t1).unwrap();
        assert_eq!(g.len(), 2);
        assert!(g.iter().all(|g| g.stolen));

        // A third worker finds nothing: duplicate cap reached.
        let w3 = c.join("w3", t1);
        assert!(c.lease(w3, 2, t1).unwrap().is_empty());

        // First writer wins; the duplicate is absorbed silently.
        c.complete(w2, g[0].unit, &cell(1), t1).unwrap();
        c.complete(w1, g[0].unit, &cell(1), t1).unwrap();
        let p = c.progress(id, t1).unwrap();
        assert_eq!(p.completed, 1);
        assert_eq!(
            c.workers(t1)
                .iter()
                .find(|w| w.id == w2)
                .unwrap()
                .units_done,
            1,
            "the first writer gets the credit"
        );
    }

    #[test]
    fn reported_failure_requeues_with_backoff_then_fails_terminally() {
        let cfg = quick_cfg();
        let c = coordinator(cfg);
        let t0 = Instant::now();
        let w = c.join("w", t0);
        let plan = ExperimentPlan::for_cells([CellKey::new(
            Benchmark::Crc32,
            Scheme::FfwBbr,
            MilliVolts::new(480),
        )]);
        let id = c.submit(WireConfig::of(&EvalConfig::quick()), &plan, t0);
        let mut now = t0;
        for attempt in 1..=cfg.max_attempts {
            now += cfg.retry_backoff * attempt;
            c.heartbeat(w, now).unwrap();
            let g = c.lease(w, 1, now).unwrap();
            assert_eq!(g.len(), 1, "attempt {attempt}");
            c.fail(w, g[0].unit, "invariant violation", now).unwrap();
        }
        let p = c.progress(id, now).unwrap();
        assert!(p.done);
        assert!(
            matches!(&p.results[0].1, CellOutcome::Failed(e) if e.contains("invariant violation"))
        );
        // A straggler's late result still flips the unit to completed.
        c.complete(
            w,
            UnitRef {
                campaign: id,
                index: 0,
            },
            &cell(7),
            now,
        )
        .unwrap();
        let p = c.progress(id, now).unwrap();
        assert_eq!(p.completed, 1);
        assert_eq!(p.failed, 0);
    }

    #[test]
    fn store_prefilled_cells_complete_without_dispatch() {
        let dir = std::env::temp_dir().join(format!("dvs-cluster-prefill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let base = EvalConfig::quick();
        let wire = WireConfig::of(&base);
        let done = CellKey::new(Benchmark::Crc32, Scheme::FfwBbr, MilliVolts::new(480));
        let c = Coordinator::new(
            quick_cfg(),
            base,
            Some(ResultStore::open(&dir).unwrap()),
            Arc::new(MetricsRegistry::new()),
        );
        store.save(&c.store_key(&wire, &done), &cell(5)).unwrap();
        let t0 = Instant::now();
        let id = c.submit(wire, &plan2(), t0);
        let p = c.progress(id, t0).unwrap();
        assert_eq!(p.completed, 1);
        assert_eq!(p.results[0].1, CellOutcome::Completed(cell(5)));
        // Only the unresolved cell is dispatched.
        let w = c.join("w", t0);
        let g = c.lease(w, 2, t0).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].key, plan2().cells()[1]);
        // The pre-resolved cell entered the sync log.
        let (entries, latest) = c.sync_since(0, 16);
        assert_eq!(latest, 1);
        assert_eq!(entries[0].key, done);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capped_store_eviction_is_a_miss_never_an_error() {
        let dir = std::env::temp_dir().join(format!("dvs-cluster-capped-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // One byte: after every save the store immediately evicts back
        // down to the single just-written (protected) cell.
        let store = ResultStore::open(&dir).unwrap().with_max_bytes(1);
        let base = EvalConfig::quick();
        let wire = WireConfig::of(&base);
        let c = Coordinator::new(
            quick_cfg(),
            base,
            Some(store.clone()),
            Arc::new(MetricsRegistry::new()),
        );
        let t0 = Instant::now();
        let id = c.submit(wire, &plan2(), t0);
        let w = c.join("w", t0);
        let g = c.lease(w, 2, t0).unwrap();
        assert_eq!(g.len(), 2, "an empty capped store pre-resolves nothing");
        c.complete(w, g[0].unit, &cell(1), t0).unwrap();
        c.complete(w, g[1].unit, &cell(2), t0).unwrap();

        // The campaign ledger is untouched by eviction: both results
        // land even though the store kept at most one of them.
        let p = c.progress(id, t0).unwrap();
        assert!(p.done);
        assert_eq!(p.completed, 2);
        assert_eq!(p.results[0].1, CellOutcome::Completed(cell(1)));
        assert_eq!(p.results[1].1, CellOutcome::Completed(cell(2)));
        let stats = store.stats();
        assert!(stats.evictions >= 1, "{stats:?}");
        assert!(stats.cells <= 1, "{stats:?}");

        // Resubmitting the same plan treats the evicted cell as a plain
        // miss: it is dispatched again, the survivor pre-resolves.
        let id2 = c.submit(wire, &plan2(), t0);
        let p2 = c.progress(id2, t0).unwrap();
        assert_eq!(p2.completed, 1, "only the surviving cell pre-resolves");
        let g2 = c.lease(w, 2, t0).unwrap();
        assert_eq!(g2.len(), 1, "evicted cell must be re-dispatched");
        assert_eq!(g2[0].key, plan2().cells()[0]);
        c.complete(w, g2[0].unit, &cell(1), t0).unwrap();
        assert!(c.progress(id2, t0).unwrap().done);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_log_pages_in_order() {
        let c = coordinator(quick_cfg());
        let t0 = Instant::now();
        let w = c.join("w", t0);
        let id = c.submit(WireConfig::of(&EvalConfig::quick()), &plan2(), t0);
        let g = c.lease(w, 2, t0).unwrap();
        c.complete(w, g[0].unit, &cell(1), t0).unwrap();
        c.complete(w, g[1].unit, &cell(2), t0).unwrap();
        let (page1, latest) = c.sync_since(0, 1);
        assert_eq!(latest, 2);
        assert_eq!(page1.len(), 1);
        assert_eq!(page1[0].seq, 1);
        let (page2, _) = c.sync_since(page1[0].seq, 16);
        assert_eq!(page2.len(), 1);
        assert_eq!(page2[0].seq, 2);
        assert!(c.sync_since(2, 16).0.is_empty());
        assert_eq!(c.progress(id, t0).unwrap().completed, 2);
    }
}
