//! A minimal keep-alive HTTP/1.1 client over `std::net` — just enough
//! wire for the cluster protocol (and nothing the dependency-free rule
//! would forbid).
//!
//! One [`HttpClient`] owns one connection; requests reconnect lazily
//! after any transport error, so callers retry by simply calling again.
//! Responses are read to completion (`Content-Length` framed, like
//! everything `dvs-serve` emits) so the connection stays reusable.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A lazily-connected, keep-alive HTTP/1.1 client bound to one server.
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    timeout: Duration,
    conn: Option<(TcpStream, Vec<u8>)>,
}

impl HttpClient {
    /// Creates a client for `addr` (`host:port`). No connection is made
    /// until the first request.
    pub fn new(addr: impl Into<String>, timeout: Duration) -> Self {
        HttpClient {
            addr: addr.into(),
            timeout,
            conn: None,
        }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Issues one request and reads the full response.
    ///
    /// # Errors
    ///
    /// A transport-level description (connect/read/write/parse). The
    /// connection is dropped on error; the next call reconnects.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        let result = self.request_inner(method, path, body);
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    fn request_inner(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .map_err(|e| format!("connect {}: {e}", self.addr))?;
            stream
                .set_read_timeout(Some(self.timeout))
                .map_err(|e| e.to_string())?;
            stream
                .set_write_timeout(Some(self.timeout))
                .map_err(|e| e.to_string())?;
            self.conn = Some((stream, Vec::new()));
        }
        let (stream, buf) = self.conn.as_mut().expect("connection just ensured");
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: keep-alive\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            self.addr,
            body.len(),
        );
        stream
            .write_all(request.as_bytes())
            .map_err(|e| format!("write: {e}"))?;

        // Read head.
        let header_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-response".to_string());
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head =
            std::str::from_utf8(&buf[..header_end]).map_err(|_| "non-UTF-8 head".to_string())?;
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad status line {head:?}"))?;
        let mut content_length = 0usize;
        let mut keep_alive = true;
        for line in head.split("\r\n").skip(1) {
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim();
                if name == "content-length" {
                    content_length = value
                        .parse()
                        .map_err(|_| "bad content-length".to_string())?;
                } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                }
            }
        }

        // Read body.
        let body_start = header_end + 4;
        while buf.len() < body_start + content_length {
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-body".to_string());
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        let response = String::from_utf8(buf[body_start..body_start + content_length].to_vec())
            .map_err(|_| "non-UTF-8 body".to_string())?;
        buf.drain(..body_start + content_length);
        if !keep_alive {
            self.conn = None;
        }
        Ok((status, response))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn keep_alive_requests_reuse_one_connection_and_errors_reconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let mut accepted = 0usize;
            // First connection serves two requests then closes; the
            // client must transparently reconnect for the third.
            for served_per_conn in [2usize, 1] {
                let (mut stream, _) = listener.accept().expect("accept");
                accepted += 1;
                for _ in 0..served_per_conn {
                    let mut chunk = [0u8; 4096];
                    let mut req = Vec::new();
                    loop {
                        let n = stream.read(&mut chunk).expect("read");
                        req.extend_from_slice(&chunk[..n]);
                        if n == 0 || req.windows(4).any(|w| w == b"\r\n\r\n") {
                            break;
                        }
                    }
                    assert!(req.starts_with(b"POST /x HTTP/1.1\r\n"));
                    let body = b"{\"ok\":true}";
                    let resp = format!("HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n", body.len());
                    stream.write_all(resp.as_bytes()).expect("write");
                    stream.write_all(body).expect("write");
                }
                drop(stream);
            }
            accepted
        });

        let mut client = HttpClient::new(addr, Duration::from_secs(5));
        for _ in 0..2 {
            let (status, body) = client.request("POST", "/x", Some("{}")).expect("request");
            assert_eq!(status, 200);
            assert_eq!(body, "{\"ok\":true}");
        }
        // The server closed the first connection; this request fails,
        // and the retry reconnects.
        let retried = client
            .request("POST", "/x", Some("{}"))
            .or_else(|_| client.request("POST", "/x", Some("{}")))
            .expect("retry after reconnect");
        assert_eq!(retried.0, 200);
        assert_eq!(server.join().expect("server"), 2);
    }
}
