//! `dvs-cluster` — distributed campaign execution for the experiment
//! engine.
//!
//! A **coordinator** decomposes a campaign ([`dvs_core::ExperimentPlan`]
//! plus the result-relevant slice of [`dvs_core::EvalConfig`]) into
//! cell-granular work units and hands them to registered **workers**
//! over the existing dependency-free HTTP layer (`dvs-serve` exposes the
//! endpoints; `dvs-serve --join <coordinator>` runs the worker loop).
//!
//! The protocol is lease-based and idempotent by construction:
//!
//! * Workers *pull* work with [`Coordinator::lease`]; a lease expires
//!   unless renewed by the worker's heartbeat, so a SIGKILLed node's
//!   units requeue automatically (bounded retry with linear backoff).
//! * When a worker is idle and no unit is pending, leases older than the
//!   steal threshold are **duplicate-dispatched** (work stealing of slow
//!   cells). Duplicates are provably harmless: every cell is a pure
//!   function of its [`dvs_core::StoreKey`], so two workers computing
//!   the same unit produce bit-identical bytes and the coordinator
//!   keeps whichever finishes first (first-writer-wins).
//! * Completed cells are pushed back as checksummed
//!   [`dvs_core::StoredCell`] images; the coordinator persists them in
//!   its [`dvs_core::ResultStore`] and appends them to a **sync log**
//!   that any worker can tail, so after convergence *any* node answers
//!   `GET /v1/results` for the whole campaign from its local store.
//!
//! Layering: [`proto`] is the pure JSON wire vocabulary, [`coordinator`]
//! is the lock-protected lease/retry/steal state machine (time is passed
//! in, so every transition is unit-testable without sleeping),
//! [`client`] is a minimal keep-alive HTTP/1.1 client, and [`worker`]
//! is the pull-execute-push loop with its heartbeat thread. Everything
//! observable flows through `cluster.*` metrics on a shared
//! [`dvs_obs::MetricsRegistry`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod proto;
pub mod worker;

pub use client::HttpClient;
pub use coordinator::{ClusterConfig, Coordinator};
pub use proto::{UnitRef, WireConfig};
pub use worker::{spawn_worker, WorkerConfig, WorkerHandle};
