//! The transform pipeline checked with the `dvs-analysis` equivalence
//! checker — each stage individually, then the full pipeline, then the
//! relaxed program the linker emits.

use dvs_analysis::{check_trace_equivalence, EquivConfig};
use dvs_linker::{bbr_transform, break_blocks, insert_jumps, move_literal_pools, BbrLinker};
use dvs_sram::{CacheGeometry, FaultMap};
use dvs_workloads::{Benchmark, ProgramSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn each_transform_stage_preserves_the_trace() {
    let cfg = EquivConfig::default();
    for seed in 0..8 {
        let p = ProgramSpec::default().generate(&mut StdRng::seed_from_u64(seed));
        let jumps = insert_jumps(&p);
        check_trace_equivalence(&p, &jumps, &cfg)
            .unwrap_or_else(|d| panic!("seed {seed}: insert_jumps: {d}"));
        let broken = break_blocks(&jumps, 8);
        check_trace_equivalence(&p, &broken, &cfg)
            .unwrap_or_else(|d| panic!("seed {seed}: break_blocks: {d}"));
        let moved = move_literal_pools(&broken);
        check_trace_equivalence(&p, &moved, &cfg)
            .unwrap_or_else(|d| panic!("seed {seed}: move_literal_pools: {d}"));
    }
}

#[test]
fn relaxed_linker_output_preserves_the_trace() {
    // Relaxation rewrites explicit jumps away; the placed program must
    // still be equivalent to the *pre-transform* benchmark program.
    let cfg = EquivConfig::default();
    let geom = CacheGeometry::dsn_l1();
    for bench in [Benchmark::Crc32, Benchmark::Dijkstra, Benchmark::Hmmer] {
        let wl = bench.build(4);
        let t = bbr_transform(wl.program(), 8);
        for seed in 0..4 {
            let fmap = FaultMap::sample(&geom, 0.1, &mut StdRng::seed_from_u64(seed));
            if let Ok(image) = BbrLinker::new(geom).link(&t, &fmap) {
                check_trace_equivalence(wl.program(), image.program(), &cfg)
                    .unwrap_or_else(|d| panic!("{bench} seed {seed}: {d}"));
            }
        }
    }
}
