//! The three BBR code transformations (paper Figure 8).

use dvs_workloads::{Block, Program, Terminator};

/// Transformation 1 — **inserting jumps**: append an explicit unconditional
/// jump to every block whose fall-through path could otherwise be taken
/// (plain fall-throughs, the not-taken side of conditional branches, and
/// the return path of calls). Afterwards every block is position-
/// independent: the linker relocates it by rewriting the jump target.
///
/// Idempotent: blocks that already have an explicit jump are unchanged.
pub fn insert_jumps(program: &Program) -> Program {
    let blocks: Vec<Block> = program
        .blocks()
        .iter()
        .map(|b| {
            let needs_jump = matches!(
                b.terminator,
                Terminator::FallThrough | Terminator::CondBranch { .. } | Terminator::Call { .. }
            );
            Block {
                explicit_jump: b.explicit_jump || needs_jump,
                ..*b
            }
        })
        .collect();
    Program::new(
        blocks,
        program.functions().to_vec(),
        program.pool_words().to_vec(),
    )
    .expect("inserting jumps preserves validity")
}

/// Transformation 2 — **breaking basic blocks**: split every block whose
/// total footprint exceeds `max_footprint_words` into a chain of smaller
/// blocks connected by unconditional jumps, so each piece fits a modest
/// fault-free chunk.
///
/// Run [`insert_jumps`] first (this pass asserts the program already has
/// explicit fall-through jumps) and [`move_literal_pools`] after.
///
/// # Panics
///
/// Panics if `max_footprint_words` is too small to hold even a minimal
/// piece (body 1 + terminator + jump + the block's literals), or if a
/// fall-through block without an explicit jump is encountered.
pub fn break_blocks(program: &Program, max_footprint_words: u32) -> Program {
    assert!(
        max_footprint_words >= 4,
        "cannot split into pieces smaller than 4 words"
    );
    // Pass 1: decide the piece count of every block and the new id of each
    // original block's first piece.
    let mut first_piece = Vec::with_capacity(program.num_blocks());
    let mut pieces = Vec::with_capacity(program.num_blocks());
    let mut next_id = 0usize;
    for b in program.blocks() {
        assert!(
            b.terminator != Terminator::FallThrough || b.explicit_jump,
            "break_blocks requires insert_jumps to have run first"
        );
        first_piece.push(next_id);
        let n = piece_count(b, max_footprint_words);
        pieces.push(n);
        next_id += n;
    }

    let mut blocks = Vec::with_capacity(next_id);
    let mut functions = Vec::with_capacity(program.functions().len());
    for range in program.functions() {
        let new_start = first_piece[range.start];
        let mut new_end = new_start;
        for id in range.clone() {
            let b = program.block(id);
            let n = pieces[id];
            new_end += n;
            // Leading pieces: as much body as fits beside a jump word.
            let lead_body = max_footprint_words - 1;
            let mut remaining_body = b.body_len;
            for p in 0..n {
                if p + 1 < n {
                    let body = remaining_body.min(lead_body);
                    remaining_body -= body;
                    blocks.push(Block {
                        body_len: body,
                        terminator: Terminator::Jump {
                            target: first_piece[id] + p + 1,
                        },
                        literal_refs: 0,
                        literal_words: 0,
                        explicit_jump: false,
                    });
                } else {
                    // Final piece: the original terminator, retargeted, plus
                    // the block's literals and explicit jump.
                    blocks.push(Block {
                        body_len: remaining_body,
                        terminator: retarget(b.terminator, &first_piece),
                        literal_refs: b.literal_refs,
                        literal_words: b.literal_words,
                        explicit_jump: b.explicit_jump,
                    });
                }
            }
        }
        functions.push(new_start..new_end);
    }
    Program::new(blocks, functions, program.pool_words().to_vec())
        .expect("splitting preserves validity")
}

fn piece_count(b: &Block, max_footprint_words: u32) -> usize {
    // The final piece must carry the terminator, optional explicit jump and
    // the literals; leading pieces carry body + one jump word.
    let tail_overhead = b.terminator.words()
        + u32::from(b.explicit_jump)
        + b.literal_words
        + if b.literal_words == 0 {
            b.literal_refs
        } else {
            0
        };
    // Conservative: reserve room for literals that move_literal_pools will
    // attach later (literal_refs), so pieces stay small enough afterwards.
    let tail_capacity = max_footprint_words.saturating_sub(tail_overhead).max(1);
    let lead_capacity = max_footprint_words - 1;
    let mut n = 1usize;
    let mut body = b.body_len;
    while body > tail_capacity {
        body -= body.min(lead_capacity).max(1);
        n += 1;
    }
    n
}

fn retarget(t: Terminator, first_piece: &[usize]) -> Terminator {
    match t {
        Terminator::Jump { target } => Terminator::Jump {
            target: first_piece[target],
        },
        Terminator::CondBranch { target, taken_prob } => Terminator::CondBranch {
            target: first_piece[target],
            taken_prob,
        },
        Terminator::Call { callee } => Terminator::Call {
            callee: first_piece[callee],
        },
        other => other,
    }
}

/// Transformation 3 — **moving literal pools**: relocate each referenced
/// constant from its function's shared pool to the end of the block that
/// loads it, so a PC-relative load always stays within reach (4 KB on ARM)
/// no matter where the linker places the block.
pub fn move_literal_pools(program: &Program) -> Program {
    let blocks: Vec<Block> = program
        .blocks()
        .iter()
        .map(|b| Block {
            literal_words: b.literal_words.max(b.literal_refs),
            ..*b
        })
        .collect();
    let pools = vec![0; program.functions().len()];
    Program::new(blocks, program.functions().to_vec(), pools)
        .expect("moving literals preserves validity")
}

/// Largest block footprint (in words) the BBR compiler keeps whole at
/// word-failure probability `p_word`.
///
/// A block of `m` words needs a fault-free chunk of `m` words; the chance
/// a given cache position starts one is `(1-p)^m`. Splitting costs an
/// executed jump per piece, so the compiler only splits when chunks of the
/// block's size become scarce — here, when fewer than 2 % of positions
/// would fit it. Clamped to `[6, 32]`.
///
/// # Panics
///
/// Panics if `p_word` is outside `[0, 1)`.
pub fn adaptive_max_block_words(p_word: f64) -> u32 {
    assert!(
        (0.0..1.0).contains(&p_word),
        "p_word {p_word} outside [0, 1)"
    );
    if p_word == 0.0 {
        return 32;
    }
    let m = (0.02f64.ln() / (1.0 - p_word).ln()).floor();
    (m as u32).clamp(6, 32)
}

/// The full BBR compilation pipeline: insert jumps, break blocks larger
/// than `max_footprint_words`, and move literal pools.
///
/// Applied to "all of the program components including the program code,
/// standard libraries and run time libraries" — in this model, to every
/// function of the program.
pub fn bbr_transform(program: &Program, max_footprint_words: u32) -> Program {
    move_literal_pools(&break_blocks(&insert_jumps(program), max_footprint_words))
}

#[cfg(test)]
// Tests build one-function programs, whose span list really is `vec![0..n]`.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;
    use dvs_workloads::{Benchmark, Layout, ProgramSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_program() -> Program {
        ProgramSpec::default().generate(&mut StdRng::seed_from_u64(4))
    }

    #[test]
    fn insert_jumps_targets_fallthrough_paths() {
        let p = sample_program();
        let t = insert_jumps(&p);
        for (a, b) in p.blocks().iter().zip(t.blocks()) {
            let expect = matches!(
                a.terminator,
                Terminator::FallThrough | Terminator::CondBranch { .. } | Terminator::Call { .. }
            );
            assert_eq!(b.explicit_jump, expect || a.explicit_jump);
            assert_eq!(a.body_len, b.body_len);
        }
    }

    #[test]
    fn insert_jumps_is_idempotent() {
        let p = sample_program();
        let once = insert_jumps(&p);
        let twice = insert_jumps(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn break_blocks_bounds_every_footprint() {
        let p = insert_jumps(&sample_program());
        for limit in [6, 8, 12] {
            let t = break_blocks(&p, limit);
            let t = move_literal_pools(&t);
            for (id, b) in t.blocks().iter().enumerate() {
                assert!(
                    b.footprint_words() <= limit,
                    "block {id} footprint {} exceeds {limit}",
                    b.footprint_words()
                );
            }
        }
    }

    #[test]
    fn break_blocks_preserves_total_body() {
        let p = insert_jumps(&sample_program());
        let t = break_blocks(&p, 6);
        let before: u32 = p.blocks().iter().map(|b| b.body_len).sum();
        let after: u32 = t.blocks().iter().map(|b| b.body_len).sum();
        assert_eq!(before, after);
        assert!(t.num_blocks() >= p.num_blocks());
    }

    #[test]
    fn break_blocks_chains_pieces_with_jumps() {
        // One big block: body 20, jump terminator.
        let blocks = vec![
            Block::with_terminator(20, Terminator::Jump { target: 0 }),
            Block::with_terminator(1, Terminator::Jump { target: 0 }),
        ];
        let p = Program::new(blocks, vec![0..2], vec![0]).unwrap();
        let t = break_blocks(&p, 8);
        // Piece sizes ≤ 8; pieces linked: 0 → 1 → … ; final piece jumps to
        // new id of original target 0, which is 0.
        assert!(t.num_blocks() > 2);
        for (id, b) in t.blocks().iter().enumerate() {
            assert!(b.footprint_words() <= 8);
            if let Terminator::Jump { target } = b.terminator {
                assert!(target < t.num_blocks(), "block {id} target {target}");
            }
        }
        // Walk the chain of the first original block.
        let mut id = 0usize;
        let mut body = 0u32;
        loop {
            body += t.block(id).body_len;
            match t.block(id).terminator {
                Terminator::Jump { target } if target == id + 1 => id = target,
                Terminator::Jump { target } => {
                    assert_eq!(target, 0);
                    break;
                }
                other => panic!("unexpected terminator {other:?}"),
            }
        }
        assert_eq!(body, 20);
    }

    #[test]
    fn move_literal_pools_empties_shared_pools() {
        let p = sample_program();
        let t = move_literal_pools(&p);
        assert!(t.pool_words().iter().all(|&w| w == 0));
        for (a, b) in p.blocks().iter().zip(t.blocks()) {
            assert_eq!(b.literal_words, a.literal_words.max(a.literal_refs));
        }
        // Total footprint does not grow (pool words become block words).
        assert!(t.total_footprint_words() <= p.total_footprint_words());
    }

    #[test]
    fn full_pipeline_on_all_benchmarks() {
        for b in Benchmark::ALL {
            let wl = b.build(2);
            let t = bbr_transform(wl.program(), 8);
            for blk in t.blocks() {
                assert!(blk.footprint_words() <= 8, "{b}");
                // Every fall-through path is explicit.
                if matches!(
                    blk.terminator,
                    Terminator::FallThrough
                        | Terminator::CondBranch { .. }
                        | Terminator::Call { .. }
                ) {
                    assert!(blk.explicit_jump, "{b}: implicit fall-through remains");
                }
            }
            assert!(t.pool_words().iter().all(|&w| w == 0), "{b}");
        }
    }

    #[test]
    fn transformed_program_still_traces() {
        let wl = Benchmark::Qsort.build(9);
        let t = bbr_transform(wl.program(), 8);
        let layout = Layout::sequential(&t);
        let n = wl.trace_program(&t, &layout, 0).take(20_000).count();
        assert_eq!(n, 20_000);
    }

    #[test]
    fn transformation_overhead_is_modest() {
        // Inserted jumps and split blocks grow the code, but only by a
        // bounded fraction (the paper's static code-size cost).
        let p = sample_program();
        let t = bbr_transform(&p, 8);
        let before = f64::from(p.total_footprint_words());
        let after = f64::from(t.total_footprint_words());
        let growth = after / before;
        assert!(growth < 1.5, "code growth {growth}");
        assert!(growth >= 1.0);
    }

    #[test]
    #[should_panic(expected = "insert_jumps")]
    fn break_blocks_requires_explicit_jumps() {
        let blocks = vec![
            Block::body(30),
            Block::with_terminator(1, Terminator::Jump { target: 0 }),
        ];
        let p = Program::new(blocks, vec![0..2], vec![0]).unwrap();
        let _ = break_blocks(&p, 8);
    }
}
