//! The fault-map-aware linker — Algorithm 1 of the paper.

use std::fmt;

use serde::{Deserialize, Serialize};

use dvs_obs::{Recorder, Span};
use dvs_sram::{BitGrid, CacheGeometry, FaultMap};
use dvs_workloads::{Layout, Program};

use crate::diag::{lint_ids, Diagnostic, Location};

/// Error returned when a program cannot be linked against a fault map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A block's footprint exceeds the whole cache.
    BlockTooLarge {
        /// Offending block id.
        block: usize,
        /// Its footprint in words.
        footprint: u32,
    },
    /// The scan looped the entire cache without finding a chunk that fits
    /// (the fault map has no run of `footprint` fault-free words).
    NoChunkFits {
        /// Offending block id.
        block: usize,
        /// Its footprint in words.
        footprint: u32,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::BlockTooLarge { block, footprint } => {
                write!(f, "block {block} ({footprint} words) exceeds the cache")
            }
            LinkError::NoChunkFits { block, footprint } => write!(
                f,
                "no fault-free chunk of {footprint} words for block {block}"
            ),
        }
    }
}

impl std::error::Error for LinkError {}

/// Placement statistics of a linked image.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Total words of the placed image (address space consumed).
    pub image_words: u32,
    /// Words of actual code + literals.
    pub code_words: u32,
    /// Gap words the linker inserted to skip defective cache words.
    pub padding_words: u32,
    /// Distinct cache words covered by at least one block.
    pub cache_words_used: u32,
    /// Cache words covered by more than one block (chunk sharing — these
    /// cause extra direct-mapped conflicts).
    pub cache_words_shared: u32,
    /// Fault-free words available in the cache.
    pub fault_free_words: u32,
}

impl LinkStats {
    /// Fraction of the cache covered by placed code (Figure 6a's
    /// "effective capacity" for a fully resident program).
    pub fn utilization(&self, geometry: &CacheGeometry) -> f64 {
        f64::from(self.cache_words_used) / f64::from(geometry.total_words())
    }
}

/// A successfully linked program image.
///
/// Owns the final program: the linker performs *relaxation* — an explicit
/// fall-through jump whose target ends up immediately after it is elided,
/// exactly as binutils-style linkers shorten jumps to the next address.
/// Algorithm 1 places blocks in program order, so most fall-through jumps
/// elide whenever no defective word interrupts the chunk, which keeps
/// BBR's dynamic overhead low at mild defect densities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkedImage {
    program: Program,
    layout: Layout,
    stats: LinkStats,
}

impl LinkedImage {
    /// The linked program (with elided fall-through jumps removed). Trace
    /// this program, not the transform's output.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The block placement.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Consumes the image, returning `(program, layout)`.
    pub fn into_parts(self) -> (Program, Layout) {
        (self.program, self.layout)
    }

    /// Placement statistics.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Verifies that no placed instruction or literal maps to a defective
    /// cache word, and that every elided fall-through lands exactly on the
    /// next block. Returns the first finding as a structured
    /// [`Diagnostic`] (lint id, severity, location, message); the
    /// `dvs-analysis` crate runs the same checks — and more — through its
    /// lint registry when every finding is wanted.
    pub fn verify(&self, fmap: &FaultMap) -> Result<(), Diagnostic> {
        let csize = u64::from(fmap.geometry().total_words());
        for id in 0..self.program.num_blocks() {
            let block = self.program.block(id);
            let start = self.layout.block_start(id);
            for k in 0..block.footprint_words() {
                let cache_word = ((start / 4 + u64::from(k)) % csize) as u32;
                if fmap.linear_is_faulty(cache_word) {
                    return Err(Diagnostic::deny(
                        lint_ids::CHUNK_CONTAINMENT,
                        Location::Block { id, word: Some(k) },
                        format!("placed word maps to defective cache word {cache_word}"),
                    ));
                }
            }
            // An implicit fall-through (elided jump) must be adjacent.
            let falls_through = !block.explicit_jump
                && matches!(
                    block.terminator,
                    dvs_workloads::Terminator::FallThrough
                        | dvs_workloads::Terminator::CondBranch { .. }
                        | dvs_workloads::Terminator::Call { .. }
                );
            if falls_through {
                let end = start + u64::from(block.footprint_words()) * 4;
                let next = self.layout.block_start(id + 1);
                if next != end {
                    return Err(Diagnostic::deny(
                        lint_ids::LAYOUT_SOUNDNESS,
                        Location::Block {
                            id,
                            word: Some(block.footprint_words()),
                        },
                        format!(
                            "fall-through block ends at {end:#x} but block {} starts at {next:#x}",
                            id + 1
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The BBR linker: places each basic block of a transformed program into
/// the first fault-free chunk that fits, scanning with a single global
/// pointer that wraps around the cache (paper Algorithm 1).
///
/// # Example
///
/// See the crate-level example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbrLinker {
    geometry: CacheGeometry,
    relax: bool,
}

impl BbrLinker {
    /// Creates a linker for the given instruction-cache geometry, with
    /// jump relaxation enabled.
    pub fn new(geometry: CacheGeometry) -> Self {
        BbrLinker {
            geometry,
            relax: true,
        }
    }

    /// Disables jump relaxation (every transform-inserted jump survives).
    /// Used by the ablation study to quantify what relaxation saves.
    pub fn without_relaxation(mut self) -> Self {
        self.relax = false;
        self
    }

    /// Links `program` against `fmap`, producing a layout in which every
    /// block occupies only fault-free cache words.
    ///
    /// Run [`crate::bbr_transform`] on the program first: un-transformed
    /// programs have implicit fall-through paths that relocation would
    /// break (this is asserted).
    ///
    /// # Errors
    ///
    /// Returns [`LinkError`] if some block cannot be placed anywhere in
    /// the cache.
    ///
    /// # Panics
    ///
    /// Panics if `fmap`'s geometry differs from the linker's, if the
    /// program still has shared literal pools, or if any fall-through path
    /// lacks an explicit jump.
    pub fn link(&self, program: &Program, fmap: &FaultMap) -> Result<LinkedImage, LinkError> {
        self.link_inner(program, fmap, None)
    }

    /// [`BbrLinker::link`] with observability: placement counters
    /// (`linker.links`, `linker.blocks_placed`, `linker.jumps_elided`,
    /// `linker.scan_steps`, `linker.padding_words` — all deterministic)
    /// plus wall-clock timings (`linker.link_nanos` for the whole link,
    /// `linker.chunk_scan_nanos` per block scanned) go to `recorder`.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError`] exactly as [`BbrLinker::link`] does; the
    /// recorder never changes the placement.
    pub fn link_recorded(
        &self,
        program: &Program,
        fmap: &FaultMap,
        recorder: &dyn Recorder,
    ) -> Result<LinkedImage, LinkError> {
        self.link_inner(program, fmap, Some(recorder))
    }

    fn link_inner(
        &self,
        program: &Program,
        fmap: &FaultMap,
        recorder: Option<&dyn Recorder>,
    ) -> Result<LinkedImage, LinkError> {
        let _link_span = recorder.map(|r| Span::enter(r, "linker.link_nanos"));
        assert_eq!(
            fmap.geometry(),
            &self.geometry,
            "fault map geometry mismatch"
        );
        assert!(
            program.pool_words().iter().all(|&w| w == 0),
            "run move_literal_pools before linking"
        );
        for (id, b) in program.blocks().iter().enumerate() {
            let relocatable = b.explicit_jump
                || matches!(
                    b.terminator,
                    dvs_workloads::Terminator::Jump { .. } | dvs_workloads::Terminator::Return
                );
            assert!(
                relocatable,
                "block {id} is not relocatable; run insert_jumps"
            );
        }

        let csize = self.geometry.total_words();
        let mut mem_word = 0u64; // the global pointer, in words
        let mut block_starts = Vec::with_capacity(program.num_blocks());
        let mut blocks: Vec<dvs_workloads::Block> = Vec::with_capacity(program.num_blocks());
        let mut jumps_elided = 0u64;
        let mut scan_steps = 0u64;

        for (id, block) in program.blocks().iter().enumerate() {
            let footprint = block.footprint_words();
            if footprint > csize {
                return Err(LinkError::BlockTooLarge {
                    block: id,
                    footprint,
                });
            }
            // Relaxation: if the previous block ends in an explicit
            // fall-through jump (and nothing after it), try to place this
            // block in the jump's own slot — the jump then targets the
            // next address and is removed.
            let prev_elidable = self.relax && id > 0 && {
                let pb = &blocks[id - 1];
                pb.explicit_jump && pb.literal_words == 0
            };
            let mut elided = false;
            if prev_elidable {
                let candidate = mem_word - 1;
                let cache_addr = (candidate % u64::from(csize)) as u32;
                if crate::chunks::first_faulty_in_run(fmap, cache_addr, footprint).is_none() {
                    blocks[id - 1].explicit_jump = false;
                    mem_word = candidate;
                    elided = true;
                    jumps_elided += 1;
                }
            }
            if !elided {
                // Scan forward until the chunk starting at the pointer's
                // cache image holds `footprint` fault-free words; give up
                // after one full loop around the cache.
                let scan_timer = recorder.map(|_| std::time::Instant::now());
                let scan_start = mem_word;
                loop {
                    let cache_addr = (mem_word % u64::from(csize)) as u32;
                    match crate::chunks::first_faulty_in_run(fmap, cache_addr, footprint) {
                        None => break,
                        Some(offset) => {
                            // Jump past the defective word that broke the run.
                            mem_word += u64::from(offset) + 1;
                            scan_steps += 1;
                            if mem_word - scan_start >= u64::from(csize) + u64::from(footprint) {
                                return Err(LinkError::NoChunkFits {
                                    block: id,
                                    footprint,
                                });
                            }
                        }
                    }
                }
                if let (Some(r), Some(t)) = (recorder, scan_timer) {
                    r.duration("linker.chunk_scan_nanos", t.elapsed().as_nanos() as u64);
                }
            }
            block_starts.push(mem_word * 4);
            blocks.push(*block);
            mem_word += u64::from(footprint);
        }

        // Statistics over the final (relaxed) blocks.
        let mut used = BitGrid::new(csize as usize);
        let mut shared = 0u32;
        let mut code_words = 0u32;
        for (start, block) in block_starts.iter().zip(&blocks) {
            let footprint = block.footprint_words();
            code_words += footprint;
            for k in 0..footprint {
                let w = ((start / 4 + u64::from(k)) % u64::from(csize)) as usize;
                if used.get(w) {
                    shared += 1;
                } else {
                    used.set(w, true);
                }
            }
        }

        let image_words = mem_word as u32;
        let stats = LinkStats {
            image_words,
            code_words,
            padding_words: image_words - code_words,
            cache_words_used: used.count_ones() as u32,
            cache_words_shared: shared,
            fault_free_words: csize - fmap.faulty_words() as u32,
        };
        let relaxed = Program::new(
            blocks,
            program.functions().to_vec(),
            program.pool_words().to_vec(),
        )
        .expect("relaxation preserves validity");
        if let Some(r) = recorder {
            r.add("linker.links", 1);
            r.add("linker.blocks_placed", block_starts.len() as u64);
            r.add("linker.jumps_elided", jumps_elided);
            r.add("linker.scan_steps", scan_steps);
            r.add("linker.padding_words", u64::from(stats.padding_words));
        }
        let pool_starts = vec![0u64; program.functions().len()];
        let layout = Layout::from_parts(block_starts, pool_starts, mem_word * 4);
        Ok(LinkedImage {
            program: relaxed,
            layout,
            stats,
        })
    }
}

#[cfg(test)]
// Tests build one-function programs, whose span list really is `vec![0..n]`.
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;
    use crate::bbr_transform;
    use dvs_workloads::{Benchmark, Block, Terminator};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom() -> CacheGeometry {
        CacheGeometry::dsn_l1() // 8192 words
    }

    fn tiny_geom() -> CacheGeometry {
        CacheGeometry::new(128, 2, 32).unwrap() // 32 words
    }

    fn chain_program(sizes: &[u32]) -> Program {
        // Each block jumps to the next; the last jumps to block 0.
        let n = sizes.len();
        let blocks: Vec<Block> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                Block::with_terminator(
                    s - 1,
                    Terminator::Jump {
                        target: (i + 1) % n,
                    },
                )
            })
            .collect();
        Program::new(blocks, vec![0..n], vec![0]).unwrap()
    }

    #[test]
    fn clean_map_packs_sequentially() {
        let p = chain_program(&[4, 4, 4]);
        let fmap = FaultMap::fault_free(&tiny_geom());
        let image = BbrLinker::new(tiny_geom()).link(&p, &fmap).unwrap();
        assert_eq!(image.layout().block_start(0), 0);
        assert_eq!(image.layout().block_start(1), 16);
        assert_eq!(image.layout().block_start(2), 32);
        assert_eq!(image.stats().padding_words, 0);
        assert!(image.verify(&fmap).is_ok());
    }

    #[test]
    fn skips_defective_words() {
        // Fault at word 2: a 4-word block cannot start at 0 or 1 or 2.
        let p = chain_program(&[4]);
        let fmap = FaultMap::from_faulty_indices(&tiny_geom(), [2]);
        let image = BbrLinker::new(tiny_geom()).link(&p, &fmap).unwrap();
        assert_eq!(image.layout().block_start(0), 3 * 4);
        assert_eq!(image.stats().padding_words, 3);
        assert!(image.verify(&fmap).is_ok());
    }

    #[test]
    fn packs_multiple_blocks_into_one_chunk() {
        // Faults at 0 and 20: chunk [1, 20) holds both 8-word blocks.
        let p = chain_program(&[8, 8]);
        let fmap = FaultMap::from_faulty_indices(&tiny_geom(), [0, 20]);
        let image = BbrLinker::new(tiny_geom()).link(&p, &fmap).unwrap();
        assert_eq!(image.layout().block_start(0), 4);
        assert_eq!(image.layout().block_start(1), 9 * 4);
        assert!(image.verify(&fmap).is_ok());
    }

    #[test]
    fn wraps_around_the_cache() {
        // 32-word cache; first block consumes words 0..30; second block (4
        // words) must wrap: it occupies 30, 31, 0, 1 — all fault-free.
        let p = chain_program(&[30, 4]);
        let fmap = FaultMap::fault_free(&tiny_geom());
        let image = BbrLinker::new(tiny_geom()).link(&p, &fmap).unwrap();
        assert_eq!(image.layout().block_start(1), 30 * 4);
        assert!(image.verify(&fmap).is_ok());
        // Wrapped words are shared with nothing, but counted once.
        assert_eq!(image.stats().cache_words_shared, 2); // words 0,1 reused
    }

    #[test]
    fn error_when_no_chunk_fits() {
        // Every second word faulty: no run of 4 exists.
        let fmap = FaultMap::from_faulty_indices(&tiny_geom(), (0..32).step_by(2));
        let p = chain_program(&[4]);
        let err = BbrLinker::new(tiny_geom()).link(&p, &fmap).unwrap_err();
        assert!(matches!(
            err,
            LinkError::NoChunkFits {
                block: 0,
                footprint: 4
            }
        ));
    }

    #[test]
    fn error_when_block_exceeds_cache() {
        let p = chain_program(&[40]);
        let fmap = FaultMap::fault_free(&tiny_geom());
        let err = BbrLinker::new(tiny_geom()).link(&p, &fmap).unwrap_err();
        assert!(matches!(err, LinkError::BlockTooLarge { .. }));
    }

    #[test]
    #[should_panic(expected = "not relocatable")]
    fn rejects_untransformed_program() {
        let blocks = vec![
            Block::body(3),
            Block::with_terminator(1, Terminator::Jump { target: 0 }),
        ];
        let p = Program::new(blocks, vec![0..2], vec![0]).unwrap();
        let fmap = FaultMap::fault_free(&tiny_geom());
        let _ = BbrLinker::new(tiny_geom()).link(&p, &fmap);
    }

    #[test]
    fn links_every_benchmark_at_400mv() {
        // P_fail(word) at 400 mV ≈ 0.275 — the paper's hardest point.
        let model = dvs_sram::PfailModel::dsn45();
        let p_word = model.pfail_word(dvs_sram::MilliVolts::new(400));
        for b in [Benchmark::Crc32, Benchmark::Adpcm, Benchmark::Basicmath] {
            let wl = b.build(3);
            let t = bbr_transform(wl.program(), 6);
            let mut ok = 0;
            for seed in 0..10u64 {
                let fmap = FaultMap::sample(&geom(), p_word, &mut StdRng::seed_from_u64(seed));
                if let Ok(image) = BbrLinker::new(geom()).link(&t, &fmap) {
                    assert!(image.verify(&fmap).is_ok(), "{b} invalid placement");
                    ok += 1;
                }
            }
            assert!(ok >= 8, "{b}: only {ok}/10 fault maps linked at 400 mV");
        }
    }

    #[test]
    fn verify_reports_structured_diagnostics() {
        // Link cleanly, then check against a *different* map in which the
        // placed words are defective: verify must name the lint and block.
        let p = chain_program(&[4]);
        let clean = FaultMap::fault_free(&tiny_geom());
        let image = BbrLinker::new(tiny_geom()).link(&p, &clean).unwrap();
        let hostile = FaultMap::from_faulty_indices(&tiny_geom(), [2]);
        let diag = image.verify(&hostile).unwrap_err();
        assert_eq!(diag.lint, crate::lint_ids::CHUNK_CONTAINMENT);
        assert_eq!(diag.severity, crate::Severity::Deny);
        assert_eq!(
            diag.location,
            crate::Location::Block {
                id: 0,
                word: Some(2)
            }
        );
        assert!(diag.message.contains("defective cache word 2"));
    }

    #[test]
    fn recorded_link_matches_plain_link_and_counts_placement() {
        use dvs_obs::MetricsRegistry;
        let wl = Benchmark::Crc32.build(1);
        let t = bbr_transform(wl.program(), 6);
        let fmap = FaultMap::sample(&geom(), 0.05, &mut StdRng::seed_from_u64(3));
        let linker = BbrLinker::new(geom());
        let plain = linker.link(&t, &fmap).unwrap();
        let reg = MetricsRegistry::new();
        let recorded = linker.link_recorded(&t, &fmap, &reg).unwrap();
        assert_eq!(plain, recorded, "recorder must not change placement");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("linker.links"), 1);
        assert_eq!(
            snap.counter("linker.blocks_placed"),
            recorded.program().num_blocks() as u64
        );
        assert_eq!(
            snap.counter("linker.padding_words"),
            u64::from(recorded.stats().padding_words)
        );
        assert!(snap.counter("linker.jumps_elided") > 0);
        assert!(snap.counter("linker.scan_steps") > 0, "faults force scans");
        assert_eq!(snap.timers["linker.link_nanos"].count, 1);
        assert!(snap.timers["linker.chunk_scan_nanos"].count > 0);
    }

    #[test]
    fn stats_are_consistent() {
        let p = chain_program(&[8, 8, 8]);
        let fmap = FaultMap::from_faulty_indices(&tiny_geom(), [5]);
        let image = BbrLinker::new(tiny_geom()).link(&p, &fmap).unwrap();
        let s = image.stats();
        assert_eq!(s.code_words, 24);
        assert_eq!(s.image_words, s.code_words + s.padding_words);
        assert_eq!(s.fault_free_words, 31);
        assert!(s.cache_words_used <= 31);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn linked_placements_avoid_all_faults(seed in 0u64..1000, p in 0.0f64..0.25) {
            let g = CacheGeometry::new(4096, 4, 32).unwrap(); // 1024 words
            let fmap = FaultMap::sample(&g, p, &mut StdRng::seed_from_u64(seed));
            let wl = Benchmark::Crc32.build(seed);
            let t = bbr_transform(wl.program(), 6);
            if let Ok(image) = BbrLinker::new(g).link(&t, &fmap) {
                prop_assert!(image.verify(&fmap).is_ok());
                // Blocks never overlap in memory (relaxed footprints).
                let relaxed = image.program();
                let mut starts: Vec<(u64, u32)> = (0..relaxed.num_blocks())
                    .map(|id| {
                        (
                            image.layout().block_start(id),
                            relaxed.block(id).footprint_words(),
                        )
                    })
                    .collect();
                starts.sort_unstable();
                for w in starts.windows(2) {
                    prop_assert!(w[0].0 + u64::from(w[0].1) * 4 <= w[1].0);
                }
            }
        }
    }
}
