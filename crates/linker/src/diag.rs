//! Structured diagnostics for static image verification.
//!
//! The BBR pipeline's correctness claims (every placed word fault-free,
//! every fall-through adjacent, every transform semantics-preserving) are
//! checked statically — by [`crate::LinkedImage::verify`] here and by the
//! lint registry in `dvs-analysis`. All checkers report through one
//! [`Diagnostic`] type so callers get a lint id, a severity, a precise
//! location and a human-readable explanation instead of an opaque tuple,
//! and so findings can be emitted as text or JSON uniformly.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not a correctness violation (reported, exit 0).
    Warn,
    /// A violated invariant: the image must not be simulated.
    Deny,
}

impl Severity {
    /// The lowercase name used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where in the image / fault map a finding points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// The image as a whole (no finer location applies).
    Image,
    /// A basic block, optionally narrowed to one word of its footprint.
    Block {
        /// Block id within the program.
        id: usize,
        /// Word offset within the block's footprint, when known.
        word: Option<u32>,
    },
    /// A physical cache frame (set, way).
    Frame {
        /// Set index.
        set: u32,
        /// Way index.
        way: u32,
    },
    /// A linear cache word index (the BBR direct-mapped view).
    Word {
        /// Word index in `0..total_words`.
        index: u32,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Image => f.write_str("image"),
            Location::Block { id, word: None } => write!(f, "block {id}"),
            Location::Block {
                id,
                word: Some(word),
            } => write!(f, "block {id} word {word}"),
            Location::Frame { set, way } => write!(f, "frame ({set}, {way})"),
            Location::Word { index } => write!(f, "cache word {index}"),
        }
    }
}

/// One static-analysis finding.
///
/// # Example
///
/// ```rust
/// use dvs_linker::{Diagnostic, Location, Severity};
///
/// let d = Diagnostic::deny(
///     "chunk-containment",
///     Location::Block { id: 3, word: Some(2) },
///     "placed word maps to defective cache word 17",
/// );
/// assert_eq!(d.to_string(), "deny[chunk-containment] block 3 word 2: \
///     placed word maps to defective cache word 17");
/// assert!(d.to_json().contains("\"lint\":\"chunk-containment\""));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Diagnostic {
    /// Stable lint identifier (see [`lint_ids`]).
    pub lint: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Where the finding points.
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// A deny-level finding.
    pub fn deny(lint: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            lint,
            severity: Severity::Deny,
            location,
            message: message.into(),
        }
    }

    /// A warn-level finding.
    pub fn warn(lint: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            lint,
            severity: Severity::Warn,
            location,
            message: message.into(),
        }
    }

    /// Serializes the finding as one JSON object, e.g.
    /// `{"lint":"chunk-containment","severity":"deny","location":{"kind":"block","id":3,"word":2},"message":"…"}`.
    pub fn to_json(&self) -> String {
        let location = match self.location {
            Location::Image => r#"{"kind":"image"}"#.to_string(),
            Location::Block { id, word: None } => {
                format!(r#"{{"kind":"block","id":{id}}}"#)
            }
            Location::Block {
                id,
                word: Some(word),
            } => format!(r#"{{"kind":"block","id":{id},"word":{word}}}"#),
            Location::Frame { set, way } => {
                format!(r#"{{"kind":"frame","set":{set},"way":{way}}}"#)
            }
            Location::Word { index } => format!(r#"{{"kind":"word","index":{index}}}"#),
        };
        format!(
            r#"{{"lint":"{}","severity":"{}","location":{location},"message":"{}"}}"#,
            json_escape(self.lint),
            self.severity,
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.lint, self.location, self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Stable lint identifiers shared between the linker's own verification
/// and the `dvs-analysis` registry.
pub mod lint_ids {
    /// Every placed word of a block must land on a fault-free cache word
    /// (equivalently: the block's footprint sits inside one fault-free
    /// chunk, possibly wrapping the cache boundary).
    pub const CHUNK_CONTAINMENT: &str = "chunk-containment";
    /// Block placements must not overlap in memory, must stay inside the
    /// image, and every elided fall-through must land exactly on the next
    /// block.
    pub const LAYOUT_SOUNDNESS: &str = "layout-soundness";
    /// Every block should be reachable from the entry under walker edge
    /// semantics (unreachable blocks waste fault-free chunk capacity).
    pub const CFG_REACHABILITY: &str = "cfg-reachability";
    /// After the BBR transform, shared literal pools must be empty and
    /// every referencing block must carry its own literals.
    pub const LITERAL_POOL_PLACEMENT: &str = "literal-pool-placement";
    /// The transformed/linked program must be trace-equivalent to the
    /// original program under walker edge semantics.
    pub const TRANSFORM_EQUIVALENCE: &str = "transform-equivalence";
    /// FFW stored patterns derived from the fault map must be contiguous,
    /// the right size, and remap injectively into fault-free entries.
    pub const FFW_WINDOW_CONSISTENCY: &str = "ffw-window-consistency";
    /// Whole-image dataflow proof: no control-flow path from the entry
    /// reaches an instruction fetch or literal load of a defective cache
    /// word.
    pub const VERIFY_FAULT_REACH: &str = "verify/fault-reach";
    /// Address value-range analysis: every address a reachable block can
    /// generate stays inside its placed extent and the image bounds.
    pub const VERIFY_VALUE_RANGE: &str = "verify/value-range";
    /// Warn-level: faulty frames whose repair capacity no reachable path
    /// touches (wasted FFW windows / BBR chunk fragments).
    pub const VERIFY_REMAP_LIVENESS: &str = "verify/remap-liveness";
    /// Bounded exhaustive checking of scheme state machines over tiny
    /// geometries (LRU-stack, inclusion, clean-map equivalence).
    pub const VERIFY_BOUNDED_MODEL: &str = "verify/bounded-model";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let d = Diagnostic::deny(
            lint_ids::CHUNK_CONTAINMENT,
            Location::Block {
                id: 7,
                word: Some(1),
            },
            "word maps to defective cache word 40",
        );
        assert_eq!(
            d.to_string(),
            "deny[chunk-containment] block 7 word 1: word maps to defective cache word 40"
        );
        let w = Diagnostic::warn(
            lint_ids::CFG_REACHABILITY,
            Location::Block { id: 2, word: None },
            "unreachable",
        );
        assert_eq!(w.to_string(), "warn[cfg-reachability] block 2: unreachable");
    }

    #[test]
    fn json_shape_round_trips_fields() {
        let d = Diagnostic::deny(
            lint_ids::FFW_WINDOW_CONSISTENCY,
            Location::Frame { set: 3, way: 1 },
            "pattern \"bad\"",
        );
        let j = d.to_json();
        assert!(j.contains(r#""lint":"ffw-window-consistency""#));
        assert!(j.contains(r#""severity":"deny""#));
        assert!(j.contains(r#""kind":"frame","set":3,"way":1"#));
        assert!(j.contains(r#"pattern \"bad\""#));
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn severity_orders_warn_below_deny() {
        assert!(Severity::Warn < Severity::Deny);
    }
}
