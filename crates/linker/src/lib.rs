//! Basic Block Relocation (BBR) compiler/linker pipeline.
//!
//! The paper's instruction-cache mechanism (Section IV-B) works in two
//! stages:
//!
//! 1. **Code transformation** (compiler): make every basic block freely
//!    relocatable — insert unconditional jumps on fall-through paths,
//!    break blocks that are too large for plausible fault-free chunks,
//!    and move literal pools next to the blocks that reference them
//!    (Figure 8). See [`bbr_transform`].
//! 2. **Linking** (fault-map-aware linker): place each block at a memory
//!    address whose direct-mapped cache image lands in a *fault-free
//!    chunk*, using the paper's Algorithm 1 first-fit scan with a global
//!    pointer. See [`BbrLinker`].
//!
//! The result is a [`dvs_workloads::Layout`] under which no executed
//! instruction ever touches a defective cache word.
//!
//! # Example
//!
//! ```rust
//! use dvs_linker::{bbr_transform, BbrLinker};
//! use dvs_sram::{CacheGeometry, FaultMap};
//! use dvs_workloads::Benchmark;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), dvs_linker::LinkError> {
//! let wl = Benchmark::Crc32.build(1);
//! let program = bbr_transform(wl.program(), 8);
//! let geom = CacheGeometry::dsn_l1();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2);
//! let fmap = FaultMap::sample(&geom, 0.1, &mut rng);
//! let image = BbrLinker::new(geom).link(&program, &fmap)?;
//! assert!(image.stats().padding_words > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunks;
pub mod diag;
mod link;
mod occupancy;
mod transform;

pub use chunks::{
    chunk_at, chunk_sizes, fault_free_chunks, fault_free_chunks_reference, first_faulty_in_run,
    first_faulty_in_run_reference, Chunk,
};
pub use diag::{json_escape, lint_ids, Diagnostic, Location, Severity};
pub use link::{BbrLinker, LinkError, LinkStats, LinkedImage};
pub use occupancy::{interval_capacities, CacheOccupancy, PAPER_INTERVAL_INSTRS};
pub use transform::{
    adaptive_max_block_words, bbr_transform, break_blocks, insert_jumps, move_literal_pools,
};
