//! Fault-free chunk extraction from a cache fault map.
//!
//! A *fault-free chunk* (paper Section IV-B) is a maximal run of
//! consecutive fault-free words in the direct-mapped cache image. The
//! linker places basic blocks into chunks; the chunk-size distribution is
//! half of the paper's Figure 6(b).

use serde::{Deserialize, Serialize};

use dvs_sram::FaultMap;

/// One maximal run of fault-free words in the linear (direct-mapped) view
/// of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunk {
    /// First word index of the run.
    pub start: u32,
    /// Run length in words.
    pub len: u32,
}

/// Extracts all maximal fault-free chunks of `fmap`'s linear view, in
/// address order.
///
/// A chunk ending at the last word does **not** wrap around to index 0;
/// wrap-around placement is handled by the linker's scan itself (a block
/// may straddle the cache boundary because its *memory* addresses are
/// contiguous while its cache image wraps).
pub fn fault_free_chunks(fmap: &FaultMap) -> Vec<Chunk> {
    let total = fmap.geometry().total_words();
    let mut chunks = Vec::new();
    let mut run_start = 0u32;
    // The chunk list is exactly the gaps between set bits of the packed
    // occupancy mask; iterating ones skips clean words 64 at a time.
    for idx in fmap.word_bits().iter_ones() {
        let idx = idx as u32;
        if idx > run_start {
            chunks.push(Chunk {
                start: run_start,
                len: idx - run_start,
            });
        }
        run_start = idx + 1;
    }
    if run_start < total {
        chunks.push(Chunk {
            start: run_start,
            len: total - run_start,
        });
    }
    chunks
}

/// Reference per-word implementation of [`fault_free_chunks`], retained
/// as the oracle the word-chunked scan is checked against.
pub fn fault_free_chunks_reference(fmap: &FaultMap) -> Vec<Chunk> {
    let total = fmap.geometry().total_words();
    let mut chunks = Vec::new();
    let mut run_start: Option<u32> = None;
    for idx in 0..total {
        if fmap.linear_is_faulty(idx) {
            if let Some(start) = run_start.take() {
                chunks.push(Chunk {
                    start,
                    len: idx - start,
                });
            }
        } else if run_start.is_none() {
            run_start = Some(idx);
        }
    }
    if let Some(start) = run_start {
        chunks.push(Chunk {
            start,
            len: total - start,
        });
    }
    chunks
}

/// Chunk sizes in words — the Figure 6(b) "fault-free chunk size"
/// distribution.
pub fn chunk_sizes(fmap: &FaultMap) -> Vec<u32> {
    fault_free_chunks(fmap).iter().map(|c| c.len).collect()
}

/// The maximal fault-free chunk containing linear `word`, or `None` when
/// the word itself is defective.
///
/// Like [`fault_free_chunks`], the returned chunk does not wrap: a run
/// touching the last word ends there even if word 0 is also fault-free.
///
/// # Panics
///
/// Panics if `word` is outside the map's linear view.
pub fn chunk_at(fmap: &FaultMap, word: u32) -> Option<Chunk> {
    let total = fmap.geometry().total_words();
    assert!(word < total, "word {word} outside cache of {total} words");
    let bits = fmap.word_bits();
    if bits.get(word as usize) {
        return None;
    }
    // The run is delimited by the nearest set bits on either side; both
    // seeks skip clean storage words wholesale.
    let start = match bits.prev_one_at_or_before(word as usize) {
        Some(fault) => fault as u32 + 1,
        None => 0,
    };
    let end = match bits.next_one_at_or_after(word as usize) {
        Some(fault) => fault as u32,
        None => total,
    };
    Some(Chunk {
        start,
        len: end - start,
    })
}

/// Offset of the first defective word in the `len`-word run whose cache
/// image starts at linear word `start`, wrapping past the last word back
/// to word 0 (the linker's placement view, where a block's contiguous
/// memory addresses wrap around the direct-mapped cache). Returns `None`
/// when the whole run is fault-free.
///
/// A `len` of 0 trivially succeeds. A run longer than the cache cannot be
/// fault-free unless the map has no defects at all (it would revisit
/// every word), and is reported against the first defective word it
/// wraps onto.
///
/// # Panics
///
/// Panics if `start` is outside the map's linear view.
pub fn first_faulty_in_run(fmap: &FaultMap, start: u32, len: u32) -> Option<u32> {
    let total = fmap.geometry().total_words();
    assert!(
        start < total,
        "start {start} outside cache of {total} words"
    );
    let bits = fmap.word_bits();
    // The wrapping run decomposes into at most two linear segments:
    // [start, start + head) and, past the wrap, [0, tail). A run longer
    // than the cache revisits words, so the tail never needs to extend
    // beyond `start` — together the segments then cover every word once.
    let head = len.min(total - start);
    if let Some(fault) = bits.next_one_at_or_after(start as usize) {
        let fault = fault as u32;
        if fault < start + head {
            return Some(fault - start);
        }
    }
    let tail = (len - head).min(start);
    if tail > 0 {
        if let Some(fault) = bits.next_one_at_or_after(0) {
            let fault = fault as u32;
            if fault < tail {
                return Some(total - start + fault);
            }
        }
    }
    None
}

/// Reference per-word implementation of [`first_faulty_in_run`], retained
/// as the oracle the two-segment word-chunked scan is checked against.
pub fn first_faulty_in_run_reference(fmap: &FaultMap, start: u32, len: u32) -> Option<u32> {
    let total = fmap.geometry().total_words();
    assert!(
        start < total,
        "start {start} outside cache of {total} words"
    );
    (0..len).find(|&k| fmap.linear_is_faulty((start + k) % total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_sram::CacheGeometry;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_geom() -> CacheGeometry {
        // 2 sets × 2 ways × 32 B = 32 words.
        CacheGeometry::new(128, 2, 32).unwrap()
    }

    #[test]
    fn fault_free_map_is_one_chunk() {
        let fmap = FaultMap::fault_free(&tiny_geom());
        let chunks = fault_free_chunks(&fmap);
        assert_eq!(chunks, vec![Chunk { start: 0, len: 32 }]);
    }

    #[test]
    fn single_fault_splits_in_two() {
        let fmap = FaultMap::from_faulty_indices(&tiny_geom(), [10]);
        let chunks = fault_free_chunks(&fmap);
        assert_eq!(
            chunks,
            vec![Chunk { start: 0, len: 10 }, Chunk { start: 11, len: 21 }]
        );
    }

    #[test]
    fn adjacent_faults_merge_gap() {
        let fmap = FaultMap::from_faulty_indices(&tiny_geom(), [0, 1, 31]);
        let chunks = fault_free_chunks(&fmap);
        assert_eq!(chunks, vec![Chunk { start: 2, len: 29 }]);
    }

    #[test]
    fn all_faulty_has_no_chunks() {
        let fmap = FaultMap::from_faulty_indices(&tiny_geom(), 0..32);
        assert!(fault_free_chunks(&fmap).is_empty());
        assert!(chunk_sizes(&fmap).is_empty());
        assert_eq!(chunk_at(&fmap, 0), None);
        assert_eq!(first_faulty_in_run(&fmap, 5, 1), Some(0));
    }

    // Regression: an empty (defect-free) fault map is one maximal chunk
    // covering the whole cache, and every word resolves to it.
    #[test]
    fn empty_fault_map_is_one_whole_cache_chunk() {
        let fmap = FaultMap::fault_free(&tiny_geom());
        assert_eq!(chunk_sizes(&fmap), vec![32]);
        for w in [0, 15, 31] {
            assert_eq!(chunk_at(&fmap, w), Some(Chunk { start: 0, len: 32 }));
        }
        // Wrapping runs of any length up to the cache size are clean, and
        // even a full-loop run finds no defect on an empty map.
        assert_eq!(first_faulty_in_run(&fmap, 30, 32), None);
    }

    // Regression: a fully-faulty frame (8 words in tiny_geom) must split
    // its neighbours without contributing zero-length chunks.
    #[test]
    fn fully_faulty_frame_splits_cleanly() {
        // Frame words 8..16 all faulty (the linear view of one frame).
        let fmap = FaultMap::from_faulty_indices(&tiny_geom(), 8..16);
        let chunks = fault_free_chunks(&fmap);
        assert_eq!(
            chunks,
            vec![Chunk { start: 0, len: 8 }, Chunk { start: 16, len: 16 }]
        );
        assert!(chunks.iter().all(|c| c.len > 0));
        for w in 8..16 {
            assert_eq!(chunk_at(&fmap, w), None);
        }
        assert_eq!(chunk_at(&fmap, 7), Some(Chunk { start: 0, len: 8 }));
        assert_eq!(chunk_at(&fmap, 16), Some(Chunk { start: 16, len: 16 }));
    }

    // Regression: chunks freely span frame boundaries — the linear view
    // has no seams at multiples of words-per-block.
    #[test]
    fn chunk_spans_frame_boundary() {
        // tiny_geom frames are 8 words; faults at 5 and 19 leave the run
        // 6..19 crossing the frame boundaries at 8 and 16.
        let fmap = FaultMap::from_faulty_indices(&tiny_geom(), [5, 19]);
        let chunks = fault_free_chunks(&fmap);
        assert_eq!(
            chunks,
            vec![
                Chunk { start: 0, len: 5 },
                Chunk { start: 6, len: 13 },
                Chunk { start: 20, len: 12 }
            ]
        );
        assert_eq!(chunk_at(&fmap, 8), Some(Chunk { start: 6, len: 13 }));
        assert_eq!(chunk_at(&fmap, 16), Some(Chunk { start: 6, len: 13 }));
    }

    // Regression: runs that wrap the cache boundary are checked word by
    // word past the wrap, which the non-wrapping chunk list cannot see.
    #[test]
    fn wrapping_runs_check_past_the_boundary() {
        let fmap = FaultMap::from_faulty_indices(&tiny_geom(), [2]);
        // 30, 31, 0, 1 are clean; extending to word 2 trips the fault.
        assert_eq!(first_faulty_in_run(&fmap, 30, 4), None);
        assert_eq!(first_faulty_in_run(&fmap, 30, 5), Some(4));
        // The chunk list itself never wraps: word 30's chunk ends at 31.
        assert_eq!(chunk_at(&fmap, 30), Some(Chunk { start: 3, len: 29 }));
    }

    #[test]
    fn zero_length_run_is_trivially_clean() {
        let fmap = FaultMap::from_faulty_indices(&tiny_geom(), [0]);
        assert_eq!(first_faulty_in_run(&fmap, 1, 0), None);
    }

    #[test]
    #[should_panic(expected = "outside cache")]
    fn chunk_at_rejects_out_of_range_words() {
        let fmap = FaultMap::fault_free(&tiny_geom());
        let _ = chunk_at(&fmap, 32);
    }

    proptest! {
        #[test]
        fn word_chunked_scans_match_reference(
            seed in 0u64..200,
            p in 0.0f64..0.6,
            start in 0u32..256,
            len in 0u32..400,
        ) {
            let geom = CacheGeometry::new(1024, 4, 32).unwrap(); // 256 words
            let fmap = FaultMap::sample(&geom, p, &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(fault_free_chunks(&fmap), fault_free_chunks_reference(&fmap));
            prop_assert_eq!(
                first_faulty_in_run(&fmap, start, len),
                first_faulty_in_run_reference(&fmap, start, len)
            );
        }

        #[test]
        fn chunks_cover_exactly_the_fault_free_words(seed in 0u64..200, p in 0.0f64..0.6) {
            let geom = CacheGeometry::new(1024, 4, 32).unwrap();
            let fmap = FaultMap::sample(&geom, p, &mut StdRng::seed_from_u64(seed));
            let chunks = fault_free_chunks(&fmap);
            // Total chunk length = fault-free word count.
            let covered: u32 = chunks.iter().map(|c| c.len).sum();
            let fault_free = geom.total_words() - fmap.faulty_words() as u32;
            prop_assert_eq!(covered, fault_free);
            // Chunks are disjoint, ordered, maximal.
            for w in chunks.windows(2) {
                prop_assert!(w[0].start + w[0].len < w[1].start);
            }
            for c in &chunks {
                for i in c.start..c.start + c.len {
                    prop_assert!(!fmap.linear_is_faulty(i));
                }
                if c.start > 0 {
                    prop_assert!(fmap.linear_is_faulty(c.start - 1));
                }
            }
        }
    }
}
