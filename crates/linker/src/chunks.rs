//! Fault-free chunk extraction from a cache fault map.
//!
//! A *fault-free chunk* (paper Section IV-B) is a maximal run of
//! consecutive fault-free words in the direct-mapped cache image. The
//! linker places basic blocks into chunks; the chunk-size distribution is
//! half of the paper's Figure 6(b).

use serde::{Deserialize, Serialize};

use dvs_sram::FaultMap;

/// One maximal run of fault-free words in the linear (direct-mapped) view
/// of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunk {
    /// First word index of the run.
    pub start: u32,
    /// Run length in words.
    pub len: u32,
}

/// Extracts all maximal fault-free chunks of `fmap`'s linear view, in
/// address order.
///
/// A chunk ending at the last word does **not** wrap around to index 0;
/// wrap-around placement is handled by the linker's scan itself (a block
/// may straddle the cache boundary because its *memory* addresses are
/// contiguous while its cache image wraps).
pub fn fault_free_chunks(fmap: &FaultMap) -> Vec<Chunk> {
    let total = fmap.geometry().total_words();
    let mut chunks = Vec::new();
    let mut run_start: Option<u32> = None;
    for idx in 0..total {
        if fmap.linear_is_faulty(idx) {
            if let Some(start) = run_start.take() {
                chunks.push(Chunk {
                    start,
                    len: idx - start,
                });
            }
        } else if run_start.is_none() {
            run_start = Some(idx);
        }
    }
    if let Some(start) = run_start {
        chunks.push(Chunk {
            start,
            len: total - start,
        });
    }
    chunks
}

/// Chunk sizes in words — the Figure 6(b) "fault-free chunk size"
/// distribution.
pub fn chunk_sizes(fmap: &FaultMap) -> Vec<u32> {
    fault_free_chunks(fmap).iter().map(|c| c.len).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_sram::CacheGeometry;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_geom() -> CacheGeometry {
        // 2 sets × 2 ways × 32 B = 32 words.
        CacheGeometry::new(128, 2, 32).unwrap()
    }

    #[test]
    fn fault_free_map_is_one_chunk() {
        let fmap = FaultMap::fault_free(&tiny_geom());
        let chunks = fault_free_chunks(&fmap);
        assert_eq!(chunks, vec![Chunk { start: 0, len: 32 }]);
    }

    #[test]
    fn single_fault_splits_in_two() {
        let fmap = FaultMap::from_faulty_indices(&tiny_geom(), [10]);
        let chunks = fault_free_chunks(&fmap);
        assert_eq!(
            chunks,
            vec![Chunk { start: 0, len: 10 }, Chunk { start: 11, len: 21 }]
        );
    }

    #[test]
    fn adjacent_faults_merge_gap() {
        let fmap = FaultMap::from_faulty_indices(&tiny_geom(), [0, 1, 31]);
        let chunks = fault_free_chunks(&fmap);
        assert_eq!(chunks, vec![Chunk { start: 2, len: 29 }]);
    }

    #[test]
    fn all_faulty_has_no_chunks() {
        let fmap = FaultMap::from_faulty_indices(&tiny_geom(), 0..32);
        assert!(fault_free_chunks(&fmap).is_empty());
    }

    proptest! {
        #[test]
        fn chunks_cover_exactly_the_fault_free_words(seed in 0u64..200, p in 0.0f64..0.6) {
            let geom = CacheGeometry::new(1024, 4, 32).unwrap();
            let fmap = FaultMap::sample(&geom, p, &mut StdRng::seed_from_u64(seed));
            let chunks = fault_free_chunks(&fmap);
            // Total chunk length = fault-free word count.
            let covered: u32 = chunks.iter().map(|c| c.len).sum();
            let fault_free = geom.total_words() - fmap.faulty_words() as u32;
            prop_assert_eq!(covered, fault_free);
            // Chunks are disjoint, ordered, maximal.
            for w in chunks.windows(2) {
                prop_assert!(w[0].start + w[0].len < w[1].start);
            }
            for c in &chunks {
                for i in c.start..c.start + c.len {
                    prop_assert!(!fmap.linear_is_faulty(i));
                }
                if c.start > 0 {
                    prop_assert!(fmap.linear_is_faulty(c.start - 1));
                }
            }
        }
    }
}
