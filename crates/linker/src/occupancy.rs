//! Per-interval effective-capacity measurement (paper Figure 6a).
//!
//! The paper examines, for every 1 M-instruction interval, how much of the
//! instruction cache the executed basic blocks occupy when placed by the
//! relocation algorithm. Even with heavy defect densities the embedded
//! benchmarks leave fault-free chunks unused, because their per-interval
//! instruction footprint is small.

use dvs_sram::{BitGrid, CacheGeometry};
use dvs_workloads::{Layout, Program, TraceOp};

/// The paper's Figure 6a interval length in instructions.
pub const PAPER_INTERVAL_INSTRS: usize = 1_000_000;

/// Maps fetch PCs back to basic blocks under a monotone layout.
///
/// Both sequential and BBR layouts place blocks at strictly increasing
/// addresses, so a binary search over block starts resolves any PC.
#[derive(Debug, Clone)]
pub struct CacheOccupancy {
    /// (start byte, footprint words, block id), sorted by start.
    spans: Vec<(u64, u32, usize)>,
    geometry: CacheGeometry,
}

impl CacheOccupancy {
    /// Builds the PC→block index.
    ///
    /// # Panics
    ///
    /// Panics if layout block starts are not strictly increasing (all
    /// layouts produced in this workspace are).
    pub fn new(program: &Program, layout: &Layout, geometry: CacheGeometry) -> Self {
        let mut spans: Vec<(u64, u32, usize)> = (0..program.num_blocks())
            .map(|id| {
                (
                    layout.block_start(id),
                    program.block(id).footprint_words(),
                    id,
                )
            })
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(
                w[0].0 + u64::from(w[0].1) * 4 <= w[1].0,
                "layout block spans overlap"
            );
        }
        CacheOccupancy { spans, geometry }
    }

    /// The block whose span contains `pc`, if any.
    pub fn block_at(&self, pc: u64) -> Option<usize> {
        let idx = self.spans.partition_point(|&(start, _, _)| start <= pc);
        if idx == 0 {
            return None;
        }
        let (start, words, id) = self.spans[idx - 1];
        (pc < start + u64::from(words) * 4).then_some(id)
    }

    /// Fraction of the cache covered by the blocks in `executed`
    /// (an iterator of block ids; duplicates are fine).
    pub fn capacity_fraction(&self, executed: impl Iterator<Item = usize>) -> f64 {
        let csize = self.geometry.total_words();
        let mut covered = BitGrid::new(csize as usize);
        let mut seen = vec![false; self.spans.len()];
        for id in executed {
            if seen[id] {
                continue;
            }
            seen[id] = true;
            let &(start, words, _) = self
                .spans
                .iter()
                .find(|&&(_, _, b)| b == id)
                .expect("block id in range");
            let start_word = start / 4;
            for k in 0..words {
                covered.set(
                    ((start_word + u64::from(k)) % u64::from(csize)) as usize,
                    true,
                );
            }
        }
        covered.count_ones() as f64 / f64::from(csize)
    }
}

/// Measures the effective cache capacity used in each `interval_instrs`
/// window of `trace` — Figure 6a's distribution, one sample per interval.
///
/// # Panics
///
/// Panics if `interval_instrs` is zero.
pub fn interval_capacities(
    program: &Program,
    layout: &Layout,
    trace: impl Iterator<Item = TraceOp>,
    interval_instrs: usize,
    geometry: CacheGeometry,
) -> Vec<f64> {
    assert!(interval_instrs > 0, "interval length must be nonzero");
    let index = CacheOccupancy::new(program, layout, geometry);
    let mut fractions = Vec::new();
    let mut executed: Vec<usize> = Vec::new();
    let mut seen = vec![false; program.num_blocks()];
    let mut count = 0usize;
    for op in trace {
        if let Some(id) = index.block_at(op.pc) {
            if !seen[id] {
                seen[id] = true;
                executed.push(id);
            }
        }
        count += 1;
        if count == interval_instrs {
            fractions.push(index.capacity_fraction(executed.drain(..)));
            seen.iter_mut().for_each(|s| *s = false);
            count = 0;
        }
    }
    if count > 0 {
        fractions.push(index.capacity_fraction(executed.drain(..)));
    }
    fractions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bbr_transform, BbrLinker};
    use dvs_sram::FaultMap;
    use dvs_workloads::Benchmark;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geom() -> CacheGeometry {
        CacheGeometry::dsn_l1()
    }

    #[test]
    fn block_at_resolves_all_trace_pcs() {
        let wl = Benchmark::Basicmath.build(5);
        let layout = Layout::sequential(wl.program());
        let index = CacheOccupancy::new(wl.program(), &layout, geom());
        for op in wl.trace(&layout, 0).take(20_000) {
            assert!(
                index.block_at(op.pc).is_some(),
                "pc {:#x} resolved to no block",
                op.pc
            );
        }
    }

    #[test]
    fn block_at_rejects_out_of_image_pcs() {
        let wl = Benchmark::Crc32.build(5);
        let layout = Layout::sequential(wl.program());
        let index = CacheOccupancy::new(wl.program(), &layout, geom());
        assert_eq!(index.block_at(layout.end() + 400), None);
    }

    #[test]
    fn interval_capacity_below_footprint_bound() {
        let wl = Benchmark::Qsort.build(5);
        let layout = Layout::sequential(wl.program());
        let caps = interval_capacities(
            wl.program(),
            &layout,
            wl.trace(&layout, 0).take(100_000),
            20_000,
            geom(),
        );
        assert!(!caps.is_empty());
        let max_possible =
            f64::from(wl.program().total_footprint_words()) / f64::from(geom().total_words());
        for &c in &caps {
            assert!(c > 0.0 && c <= max_possible + 1e-9, "capacity {c}");
        }
    }

    #[test]
    fn figure6a_property_capacity_leaves_headroom_at_400mv() {
        // basicmath at P_fail(word) ≈ 0.275: executed blocks fit in the
        // fault-free words with room to spare (the paper's claim).
        let model = dvs_sram::PfailModel::dsn45();
        let p_word = model.pfail_word(dvs_sram::MilliVolts::new(400));
        let wl = Benchmark::Basicmath.build(7);
        let t = bbr_transform(wl.program(), 6);
        let fmap = FaultMap::sample(&geom(), p_word, &mut StdRng::seed_from_u64(0));
        let image = BbrLinker::new(geom()).link(&t, &fmap).expect("links");
        let caps = interval_capacities(
            image.program(),
            image.layout(),
            wl.trace_program(image.program(), image.layout(), 0)
                .take(200_000),
            50_000,
            geom(),
        );
        let fault_free_frac =
            f64::from(image.stats().fault_free_words) / f64::from(geom().total_words());
        for &c in &caps {
            assert!(
                c < fault_free_frac,
                "interval capacity {c} exceeds fault-free fraction {fault_free_frac}"
            );
        }
    }

    #[test]
    fn capacity_fraction_counts_shared_words_once() {
        let wl = Benchmark::Crc32.build(1);
        let layout = Layout::sequential(wl.program());
        let index = CacheOccupancy::new(wl.program(), &layout, geom());
        let one = index.capacity_fraction([0usize].into_iter());
        let dup = index.capacity_fraction([0usize, 0, 0].into_iter());
        assert_eq!(one, dup);
    }
}
