//! Trace-driven timing model of the paper's embedded core (Table I).
//!
//! The paper simulates a 2-way superscalar ARM (Cortex-A9-class) in gem5.
//! This crate substitutes a deterministic scoreboard timing model with the
//! same structural parameters:
//!
//! * 2-wide in-order dispatch, 128-entry ROB, 64-entry LSQ;
//! * 2 integer ALUs, 1 integer multiplier, 1 FP ALU, 1 FP multiplier;
//! * 4096-entry bimodal branch predictor + 512-entry 8-way BTB;
//! * instruction fetch through a scheme-aware L1I, loads/stores through a
//!   write-through L1D with a coalescing write buffer, and a shared
//!   write-back L2 ([`MemSystem`]).
//!
//! The model's first-order behaviours — the ones the paper's evaluation
//! hinges on — are (a) run time is highly sensitive to L1 hit latency
//! (taken-branch redirects and load-to-use stalls pay it directly) and
//! (b) every extra L2 access from a defective word stalls the in-order
//! backend.
//!
//! # Example
//!
//! ```rust
//! use dvs_cpu::{simulate, CoreConfig, MemSystem};
//! use dvs_schemes::{L1Cache, SchemeKind};
//! use dvs_sram::{CacheGeometry, FaultMap};
//! use dvs_workloads::{Benchmark, Layout};
//!
//! let geom = CacheGeometry::dsn_l1();
//! let mem = MemSystem::new(
//!     L1Cache::new(SchemeKind::Conventional, FaultMap::fault_free(&geom)),
//!     L1Cache::new(SchemeKind::Conventional, FaultMap::fault_free(&geom)),
//!     1607,
//! );
//! let wl = Benchmark::Crc32.build(1);
//! let layout = Layout::sequential(wl.program());
//! let result = simulate(&CoreConfig::dsn2016(), mem, wl.trace(&layout, 0).take(50_000));
//! assert_eq!(result.instructions, 50_000);
//! assert!(result.ipc() > 0.3 && result.ipc() <= 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bpred;
mod config;
mod engine;
mod memsys;
mod result;

pub use bpred::{BimodalPredictor, Btb};
pub use config::CoreConfig;
pub use engine::simulate;
pub use memsys::MemSystem;
pub use result::SimResult;
