//! The scoreboard timing engine.
//!
//! A timestamp-based model: each instruction's fetch, issue, completion
//! and retire cycles are computed in program order under the structural
//! constraints of [`CoreConfig`]. This resolves to the same first-order
//! behaviour as a cycle-stepped in-order dual-issue core at a fraction of
//! the cost, and it is exactly deterministic.

use std::collections::VecDeque;

use dvs_workloads::{OpClass, TraceOp};

use crate::{BimodalPredictor, Btb, CoreConfig, MemSystem, SimResult};

/// Runs `trace` to exhaustion on a core described by `config` against the
/// memory system `mem`, returning the aggregate result.
///
/// The simulation is a pure function of its inputs: the same trace, memory
/// system and configuration always produce the same cycle count.
pub fn simulate(
    config: &CoreConfig,
    mut mem: MemSystem,
    trace: impl Iterator<Item = TraceOp>,
) -> SimResult {
    config.validate();
    let mut bht = BimodalPredictor::new(config.bht_entries);
    let mut btb = Btb::new(config.btb_entries, config.btb_ways);

    // Hit latency of the L1I including the scheme's extra cycle — the
    // front-end pipeline depth that streaming fetch hides and redirects
    // expose.
    let l1i_hit = u64::from(mem.latency().l1_hit_cycles) + u64::from(mem.l1i().extra_hit_cycles());

    let mut reg_ready = [0u64; 32];
    let mut int_alu = vec![0u64; config.int_alu_units as usize];
    let mut int_mult = vec![0u64; config.int_mult_units as usize];
    let mut fp_alu = vec![0u64; config.fp_alu_units as usize];
    let mut fp_mult = vec![0u64; config.fp_mult_units as usize];

    let mut rob: VecDeque<u64> = VecDeque::with_capacity(config.rob_entries as usize);
    let mut lsq: VecDeque<u64> = VecDeque::with_capacity(config.lsq_entries as usize);

    let mut fetch_cycle = 0u64;
    let mut fetched_in_cycle = 0u32;
    let mut pending_redirect: Option<u64> = None;

    let mut last_issue = 0u64;
    let mut issued_in_cycle = 0u32;
    let mut last_retire = 0u64;

    let mut instructions = 0u64;
    let mut synthetic = 0u64;
    let mut branches = 0u64;
    let mut mispredicts = 0u64;

    for op in trace {
        instructions += 1;
        if op.synthetic {
            synthetic += 1;
        }

        // ---- Fetch ----
        if fetched_in_cycle == config.width {
            fetch_cycle += 1;
            fetched_in_cycle = 0;
        }
        if let Some(t) = pending_redirect.take() {
            fetch_cycle = fetch_cycle.max(t);
            fetched_in_cycle = 0;
        }
        let fetch_lat = mem.fetch(op.pc);
        if fetch_lat > l1i_hit {
            // I-cache miss: the stream stalls by the excess latency (hit
            // latency itself is pipelined away while streaming).
            fetch_cycle += fetch_lat - l1i_hit;
        }
        let fetch_done = fetch_cycle + l1i_hit;
        fetched_in_cycle += 1;

        // ---- Issue (in-order, width per cycle) ----
        let mut t = fetch_done.max(last_issue);
        for r in [op.src1, op.src2].into_iter().flatten() {
            t = t.max(reg_ready[r as usize]);
        }
        if rob.len() == config.rob_entries as usize {
            let oldest = rob.pop_front().expect("rob nonempty");
            t = t.max(oldest);
        }
        let is_mem = matches!(op.class, OpClass::Load | OpClass::Store);
        if is_mem && lsq.len() == config.lsq_entries as usize {
            let oldest = lsq.pop_front().expect("lsq nonempty");
            t = t.max(oldest);
        }
        // Functional unit: loads, stores and branches use an integer ALU
        // slot (address generation / condition resolution).
        let pool: &mut Vec<u64> = match op.class {
            OpClass::IntMult => &mut int_mult,
            OpClass::FpAlu => &mut fp_alu,
            OpClass::FpMult => &mut fp_mult,
            _ => &mut int_alu,
        };
        let (unit_idx, unit_free) = pool
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(_, free)| free)
            .expect("unit pools are nonempty");
        t = t.max(unit_free);
        if t == last_issue && issued_in_cycle == config.width {
            t += 1;
        }
        if t > last_issue {
            last_issue = t;
            issued_in_cycle = 0;
        }
        issued_in_cycle += 1;
        pool[unit_idx] = t + 1; // fully pipelined units

        // ---- Execute ----
        let exec_lat = match op.class {
            OpClass::IntAlu | OpClass::Branch => 1,
            OpClass::IntMult => u64::from(config.int_mult_latency),
            OpClass::FpAlu => u64::from(config.fp_alu_latency),
            OpClass::FpMult => u64::from(config.fp_mult_latency),
            OpClass::Load => mem.load(op.mem_addr.expect("loads carry addresses")),
            OpClass::Store => {
                mem.store(op.mem_addr.expect("stores carry addresses"));
                1
            }
        };
        let complete = t + exec_lat;
        if let Some(d) = op.dest {
            reg_ready[d as usize] = complete;
        }

        // ---- Retire (in order) ----
        let retire = complete.max(last_retire);
        last_retire = retire;
        rob.push_back(retire);
        if is_mem {
            lsq.push_back(retire);
        }

        // ---- Control flow ----
        if let Some(info) = op.branch {
            branches += 1;
            let pred_taken = bht.predict(op.pc);
            let pred_target = btb.lookup(op.pc);
            let correct =
                pred_taken == info.taken && (!info.taken || pred_target == Some(info.target));
            bht.update(op.pc, info.taken);
            if info.taken {
                btb.update(op.pc, info.target);
            }
            if correct {
                if info.taken {
                    // Predicted-taken redirect: the target fetch starts only
                    // once the taken prediction emerges from the fetch
                    // pipeline — a full I-cache-depth bubble, so deeper
                    // (slower) I-caches pay more per taken branch. This is
                    // the front-end half of the paper's L1-latency
                    // sensitivity (Figure 10).
                    pending_redirect = Some(fetch_cycle + l1i_hit);
                }
            } else {
                mispredicts += 1;
                // The front end restarts after resolution plus the refill
                // penalty.
                pending_redirect = Some(complete + u64::from(config.mispredict_penalty));
            }
        }
    }

    let recorder = mem.recorder().cloned();
    let result = SimResult {
        instructions,
        synthetic,
        cycles: last_retire.max(1),
        mem: mem.finish(),
        branches,
        mispredicts,
    };
    if let Some(rec) = recorder {
        rec.add("cpu.instructions", result.instructions);
        rec.add("cpu.synthetic_instructions", result.synthetic);
        rec.add("cpu.cycles", result.cycles);
        rec.add("cpu.branches", result.branches);
        rec.add("cpu.mispredicts", result.mispredicts);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_schemes::{L1Cache, SchemeKind};
    use dvs_sram::{CacheGeometry, FaultMap, MilliVolts, PfailModel};
    use dvs_workloads::{Benchmark, BranchInfo, Layout};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clean_mem(kind: SchemeKind) -> MemSystem {
        let geom = CacheGeometry::dsn_l1();
        MemSystem::new(
            L1Cache::new(kind, FaultMap::fault_free(&geom)),
            L1Cache::new(kind, FaultMap::fault_free(&geom)),
            1607,
        )
    }

    fn run_benchmark(b: Benchmark, kind: SchemeKind, n: usize) -> SimResult {
        let wl = b.build(1);
        let layout = Layout::sequential(wl.program());
        simulate(
            &CoreConfig::dsn2016(),
            clean_mem(kind),
            wl.trace(&layout, 0).take(n),
        )
    }

    fn alu(pc: u64, dest: Option<u8>, src1: Option<u8>) -> TraceOp {
        TraceOp {
            pc,
            class: OpClass::IntAlu,
            mem_addr: None,
            dest,
            src1,
            src2: None,
            branch: None,
            synthetic: false,
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run_benchmark(Benchmark::Qsort, SchemeKind::Conventional, 30_000);
        let b = run_benchmark(Benchmark::Qsort, SchemeKind::Conventional, 30_000);
        assert_eq!(a, b);
    }

    #[test]
    fn ipc_is_plausible_for_a_2_wide_core() {
        for b in [Benchmark::Crc32, Benchmark::Basicmath, Benchmark::Mcf] {
            let r = run_benchmark(b, SchemeKind::Conventional, 50_000);
            let ipc = r.ipc();
            assert!((0.2..=2.0).contains(&ipc), "{b}: ipc {ipc}");
        }
    }

    #[test]
    fn independent_alus_dual_issue() {
        // 4000 independent 1-cycle ALU ops in a 2-block loop (warm
        // I-cache): ~half as many cycles on a 2-wide core.
        let ops = (0..4000).map(|i| alu((i % 16) * 4, Some((i % 14) as u8 + 2), None));
        let r = simulate(
            &CoreConfig::dsn2016(),
            clean_mem(SchemeKind::Conventional),
            ops,
        );
        assert!(r.ipc() > 1.6, "ipc {}", r.ipc());
    }

    #[test]
    fn dependent_chain_serializes() {
        // Each op reads the previous op's destination: 1 IPC ceiling.
        let ops = (0..100).map(|i| alu(i * 4, Some(5), Some(5)));
        let r = simulate(
            &CoreConfig::dsn2016(),
            clean_mem(SchemeKind::Conventional),
            ops,
        );
        assert!(r.cycles >= 100, "cycles {}", r.cycles);
    }

    #[test]
    fn load_to_use_stall_is_visible() {
        // load → dependent ALU, repeated on the same (warm) address.
        let mk = |dep: bool| {
            let ops: Vec<TraceOp> = (0..2000u64)
                .flat_map(|i| {
                    let pc = (i % 4) * 8; // warm, single-block code footprint
                    let load = TraceOp {
                        pc,
                        class: OpClass::Load,
                        mem_addr: Some(0x4000_0000),
                        dest: Some(4),
                        src1: None,
                        src2: None,
                        branch: None,
                        synthetic: false,
                    };
                    let use_op = alu(pc + 4, Some(5), if dep { Some(4) } else { None });
                    [load, use_op]
                })
                .collect();
            simulate(
                &CoreConfig::dsn2016(),
                clean_mem(SchemeKind::Conventional),
                ops.into_iter(),
            )
        };
        let dependent = mk(true);
        let independent = mk(false);
        assert!(
            dependent.cycles > independent.cycles + 1000,
            "dep {} vs indep {}",
            dependent.cycles,
            independent.cycles
        );
    }

    #[test]
    fn one_extra_l1_cycle_costs_double_digit_percent() {
        // The paper's central observation (Figure 10): at 560 mV the
        // +1-cycle schemes lose heavily even with zero defects.
        for b in [Benchmark::Mcf, Benchmark::Basicmath] {
            let base = run_benchmark(b, SchemeKind::Conventional, 60_000);
            let slow = run_benchmark(b, SchemeKind::EightT, 60_000);
            let ratio = slow.cycles as f64 / base.cycles as f64;
            assert!(
                ratio > 1.06,
                "{b}: +1 cycle only cost {:.1}%",
                (ratio - 1.0) * 100.0
            );
            assert!(ratio < 2.0, "{b}: implausibly slow ({ratio})");
        }
    }

    #[test]
    fn defective_words_increase_l2_traffic_and_runtime() {
        let geom = CacheGeometry::dsn_l1();
        let model = PfailModel::dsn45();
        let p_word = model.pfail_word(MilliVolts::new(400));
        let fmap = FaultMap::sample(&geom, p_word, &mut StdRng::seed_from_u64(7));
        let wl = Benchmark::Dijkstra.build(1);
        let layout = Layout::sequential(wl.program());

        let clean = simulate(
            &CoreConfig::dsn2016(),
            clean_mem(SchemeKind::Conventional),
            wl.trace(&layout, 0).take(60_000),
        );
        let faulty_mem = MemSystem::new(
            L1Cache::new(SchemeKind::SimpleWordDisable, fmap.clone()),
            L1Cache::new(SchemeKind::SimpleWordDisable, fmap),
            1607,
        );
        let wdis = simulate(
            &CoreConfig::dsn2016(),
            faulty_mem,
            wl.trace(&layout, 0).take(60_000),
        );
        assert!(wdis.l2_per_kilo_instr() > 2.0 * clean.l2_per_kilo_instr());
        assert!(wdis.cycles as f64 > 1.3 * clean.cycles as f64);
    }

    #[test]
    fn mispredicts_are_counted_and_penalized() {
        // A branch whose outcome alternates defeats the bimodal predictor.
        let mk = |alternating: bool| {
            let ops: Vec<TraceOp> = (0..400)
                .map(|i| TraceOp {
                    pc: 0x100,
                    class: OpClass::Branch,
                    mem_addr: None,
                    dest: None,
                    src1: None,
                    src2: None,
                    branch: Some(BranchInfo {
                        taken: if alternating { i % 2 == 0 } else { true },
                        target: 0x100,
                    }),
                    synthetic: false,
                })
                .collect();
            simulate(
                &CoreConfig::dsn2016(),
                clean_mem(SchemeKind::Conventional),
                ops.into_iter(),
            )
        };
        let flaky = mk(true);
        let steady = mk(false);
        assert!(flaky.mispredicts > 100);
        assert!(steady.mispredicts < 10);
        assert!(flaky.cycles > steady.cycles);
        assert!(flaky.mispredict_rate() > 0.4);
    }

    #[test]
    fn rob_bounds_inflight_instructions() {
        // A DRAM-latency load followed by thousands of independent ALU ops:
        // with a 128-entry ROB the core cannot run arbitrarily far ahead.
        let tiny_rob = CoreConfig {
            rob_entries: 4,
            ..CoreConfig::dsn2016()
        };
        let mk = |cfg: &CoreConfig| {
            let mut ops = vec![TraceOp {
                pc: 0,
                class: OpClass::Load,
                mem_addr: Some(0x7000_0000),
                dest: Some(4),
                src1: None,
                src2: None,
                branch: None,
                synthetic: false,
            }];
            ops.extend((1..500).map(|i| alu(i * 4, Some((i % 10) as u8 + 2), None)));
            simulate(cfg, clean_mem(SchemeKind::Conventional), ops.into_iter())
        };
        let big = mk(&CoreConfig::dsn2016());
        let small = mk(&tiny_rob);
        assert!(small.cycles >= big.cycles);
    }

    #[test]
    fn branch_heavy_code_pays_more_with_slow_icache() {
        // Taken-branch redirects expose the I-cache pipeline depth.
        let r_fast = run_benchmark(Benchmark::Patricia, SchemeKind::Conventional, 50_000);
        let r_slow = run_benchmark(Benchmark::Patricia, SchemeKind::EightT, 50_000);
        assert!(r_slow.cycles > r_fast.cycles);
    }

    #[test]
    fn stats_conserve_instruction_count() {
        let r = run_benchmark(Benchmark::Adpcm, SchemeKind::Conventional, 40_000);
        assert_eq!(r.instructions, 40_000);
        assert_eq!(r.mem.l1i_accesses, 40_000);
        let mem_ops = r.mem.l1d_loads + r.mem.l1d_stores;
        assert!(mem_ops > 10_000 && mem_ops < 25_000, "mem ops {mem_ops}");
        assert!(r.branches > 3_000);
    }
}
