//! Branch prediction: bimodal BHT + set-associative BTB (Table I).

use serde::{Deserialize, Serialize};

/// A bimodal predictor: one 2-bit saturating counter per table entry,
/// indexed by the branch PC.
///
/// # Example
///
/// ```rust
/// use dvs_cpu::BimodalPredictor;
///
/// let mut p = BimodalPredictor::new(4096);
/// let pc = 0x1000;
/// p.update(pc, true);
/// p.update(pc, true);
/// assert!(p.predict(pc));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BimodalPredictor {
    /// 2-bit counters; ≥ 2 predicts taken. Initialized weakly taken.
    counters: Vec<u8>,
}

impl BimodalPredictor {
    /// Creates a predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a nonzero power of two.
    pub fn new(entries: u32) -> Self {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "BHT entries must be a nonzero power of two"
        );
        BimodalPredictor {
            counters: vec![2; entries as usize],
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & (self.counters.len() as u64 - 1)) as usize
    }

    /// Predicted direction for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Trains the counter with the actual direction.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// A set-associative branch target buffer with LRU replacement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Btb {
    /// Per-set entries `(pc, target)`, most recently used at the back.
    sets: Vec<Vec<(u64, u64)>>,
    ways: usize,
}

impl Btb {
    /// Creates a BTB with `entries` total entries in sets of `ways`.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or does not divide `entries`.
    pub fn new(entries: u32, ways: u32) -> Self {
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "BTB entries must split into whole sets"
        );
        Btb {
            sets: vec![Vec::with_capacity(ways as usize); (entries / ways) as usize],
            ways: ways as usize,
        }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) % self.sets.len() as u64) as usize
    }

    /// The predicted target of the branch at `pc`, if cached.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        let set = &self.sets[self.set_of(pc)];
        set.iter().rev().find(|&&(p, _)| p == pc).map(|&(_, t)| t)
    }

    /// Installs or refreshes the target for `pc` (call on taken branches).
    pub fn update(&mut self, pc: u64, target: u64) {
        let ways = self.ways;
        let set_idx = self.set_of(pc);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&(p, _)| p == pc) {
            set.remove(pos);
        } else if set.len() == ways {
            set.remove(0);
        }
        set.push((pc, target));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_direction() {
        let mut p = BimodalPredictor::new(16);
        let pc = 0x40;
        // Initialized weakly taken.
        assert!(p.predict(pc));
        p.update(pc, false);
        assert!(!p.predict(pc));
        p.update(pc, true);
        p.update(pc, true);
        assert!(p.predict(pc));
    }

    #[test]
    fn bimodal_counters_saturate() {
        let mut p = BimodalPredictor::new(16);
        let pc = 0x40;
        for _ in 0..10 {
            p.update(pc, true);
        }
        // One not-taken does not flip a saturated counter.
        p.update(pc, false);
        assert!(p.predict(pc));
    }

    #[test]
    fn bimodal_aliasing_by_index() {
        let mut p = BimodalPredictor::new(4);
        // pcs 0x0 and 0x40 alias ((pc>>2) & 3): 0 and 0.
        p.update(0x0, false);
        p.update(0x0, false);
        assert!(!p.predict(0x40));
    }

    #[test]
    fn btb_lookup_and_replacement() {
        let mut b = Btb::new(4, 2); // 2 sets × 2 ways
        b.update(0x4, 0x100);
        assert_eq!(b.lookup(0x4), Some(0x100));
        assert_eq!(b.lookup(0x8), None);
        // Fill set of 0x4 ((pc>>2) % 2): pcs 0x4, 0xC, 0x14 share set 1.
        b.update(0xC, 0x200);
        b.update(0x14, 0x300);
        assert_eq!(b.lookup(0x4), None, "LRU entry evicted");
        assert_eq!(b.lookup(0x14), Some(0x300));
    }

    #[test]
    fn btb_update_refreshes_target() {
        let mut b = Btb::new(8, 4);
        b.update(0x4, 0x100);
        b.update(0x4, 0x500);
        assert_eq!(b.lookup(0x4), Some(0x500));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bht_rejects_non_power_of_two() {
        let _ = BimodalPredictor::new(12);
    }
}
