//! The memory system: scheme-aware L1s, write buffer, shared L2.

use std::sync::Arc;

use dvs_cache::{Addr, HierarchyObs, L2Cache, LatencyConfig, MemStats, ServiceLevel, WriteBuffer};
use dvs_obs::Recorder;
use dvs_schemes::{L1Cache, ReadOutcome, ServedFrom};

/// Write-buffer depth in block entries (a typical embedded store buffer).
const WRITE_BUFFER_ENTRIES: usize = 8;

/// The full memory hierarchy a simulation runs against.
///
/// Owns the two scheme-aware L1s, the coalescing write buffer in front of
/// the write-through L1D, the unified write-back L2 and all traffic
/// counters. Latencies follow Table I; the DRAM penalty depends on the
/// core frequency (fixed wall-clock latency).
#[derive(Debug, Clone)]
pub struct MemSystem {
    l1i: L1Cache,
    l1d: L1Cache,
    l2: L2Cache,
    write_buffer: WriteBuffer,
    latency: LatencyConfig,
    freq_mhz: u32,
    stats: MemStats,
    obs: Option<(Arc<dyn Recorder>, HierarchyObs)>,
}

/// The observability level an access was served from.
fn service_level(source: ServedFrom) -> ServiceLevel {
    match source {
        ServedFrom::L1 => ServiceLevel::L1,
        ServedFrom::L2 => ServiceLevel::L2,
        ServedFrom::Memory => ServiceLevel::Dram,
    }
}

impl MemSystem {
    /// Builds a hierarchy from the two L1 instances and the core clock.
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` is zero.
    pub fn new(l1i: L1Cache, l1d: L1Cache, freq_mhz: u32) -> Self {
        assert!(freq_mhz > 0, "frequency must be nonzero");
        MemSystem {
            l1i,
            l1d,
            l2: L2Cache::dsn(),
            write_buffer: WriteBuffer::new(WRITE_BUFFER_ENTRIES),
            latency: LatencyConfig::dsn(),
            freq_mhz,
            stats: MemStats::default(),
            obs: None,
        }
    }

    /// Replaces the default latency configuration.
    pub fn with_latency(mut self, latency: LatencyConfig) -> Self {
        self.latency = latency;
        self
    }

    /// Attaches a recorder: per-access latencies are collected into local
    /// histograms and flushed (with the per-level counters) once by
    /// [`MemSystem::finish`]. A disabled recorder is not attached at all,
    /// keeping the per-access paths free of instrumentation.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        if recorder.enabled() {
            self.obs = Some((recorder, HierarchyObs::new()));
        }
        self
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<dyn Recorder>> {
        self.obs.as_ref().map(|(r, _)| r)
    }

    /// The latency configuration in force.
    pub fn latency(&self) -> &LatencyConfig {
        &self.latency
    }

    /// The core clock this hierarchy is timed against.
    pub fn freq_mhz(&self) -> u32 {
        self.freq_mhz
    }

    fn read_latency(&self, out: ReadOutcome, extra: u32) -> u64 {
        // Replay cycles are per-access (TS Cache checker reissues on
        // marginal words), unlike `extra`, which every access pays.
        let base =
            u64::from(self.latency.l1_hit_cycles) + u64::from(extra) + u64::from(out.replay_cycles);
        match out.source {
            ServedFrom::L1 => base,
            ServedFrom::L2 => base + u64::from(self.latency.l2_hit_cycles),
            ServedFrom::Memory => {
                base + u64::from(self.latency.l2_hit_cycles)
                    + self.latency.dram_cycles(self.freq_mhz)
            }
        }
    }

    fn account_read(&mut self, out: ReadOutcome) {
        self.stats.l2_accesses += u64::from(out.l2_reads);
        if out.l2_reads > 0 && out.source == ServedFrom::Memory {
            self.stats.l2_misses += 1;
        }
    }

    /// Fetches the instruction at `pc`; returns the access latency in
    /// cycles.
    pub fn fetch(&mut self, pc: u64) -> u64 {
        let out = self.l1i.read(Addr::new(pc), &mut self.l2);
        self.stats.l1i_accesses += 1;
        if out.source != ServedFrom::L1 {
            self.stats.l1i_misses += 1;
        }
        self.account_read(out);
        let cycles = self.read_latency(out, self.l1i.extra_hit_cycles());
        if let Some((_, obs)) = &mut self.obs {
            obs.record_fetch(service_level(out.source), cycles);
        }
        cycles
    }

    /// Performs a load; returns the load-to-use latency in cycles.
    pub fn load(&mut self, addr: u64) -> u64 {
        let out = self.l1d.read(Addr::new(addr), &mut self.l2);
        self.stats.l1d_loads += 1;
        match out.source {
            ServedFrom::L1 => {}
            _ => {
                // Distinguish block misses from word misses for Figure 11
                // analysis; the L1 tracks both, mirror the totals here.
                if out.l2_reads > 0 {
                    self.stats.l1d_load_misses += 1;
                }
            }
        }
        self.account_read(out);
        let cycles = self.read_latency(out, self.l1d.extra_hit_cycles());
        if let Some((_, obs)) = &mut self.obs {
            obs.record_load(service_level(out.source), cycles);
        }
        cycles
    }

    /// Performs a store through the write buffer. Stores retire without
    /// stalling; drained blocks cost L2 write accesses.
    pub fn store(&mut self, addr: u64) {
        let a = Addr::new(addr);
        self.stats.l1d_stores += 1;
        let _ = self.l1d.write(a);
        let block = a.get() >> 5; // 32 B blocks at every level (Table I)
        if let Some(drained) = self.write_buffer.store(block) {
            self.l2_write(drained);
        }
    }

    fn l2_write(&mut self, block: u64) {
        let out = self.l2.write(Addr::new(block << 5));
        self.stats.l2_accesses += 1;
        if !out.hit {
            self.stats.l2_misses += 1;
        }
    }

    /// Drains the write buffer and finalizes counters. Call once at the
    /// end of a simulation; returns the completed statistics.
    pub fn finish(mut self) -> MemStats {
        for block in self.write_buffer.flush() {
            self.l2_write(block);
        }
        self.stats.l1d_word_misses = self.l1d.stats().word_misses;
        self.stats.l1i_word_misses = self.l1i.stats().word_misses;
        self.stats.l2_writebacks = self.l2.writebacks();
        if let Some((recorder, obs)) = &self.obs {
            obs.flush(&self.stats, recorder.as_ref());
        }
        self.stats
    }

    /// Current statistics snapshot (write buffer not yet drained).
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The instruction-side L1.
    pub fn l1i(&self) -> &L1Cache {
        &self.l1i
    }

    /// The data-side L1.
    pub fn l1d(&self) -> &L1Cache {
        &self.l1d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_schemes::SchemeKind;
    use dvs_sram::{CacheGeometry, FaultMap};

    fn mem(kind: SchemeKind) -> MemSystem {
        let geom = CacheGeometry::dsn_l1();
        MemSystem::new(
            L1Cache::new(kind, FaultMap::fault_free(&geom)),
            L1Cache::new(kind, FaultMap::fault_free(&geom)),
            1607,
        )
    }

    #[test]
    fn cold_fetch_pays_dram_then_hits() {
        let mut m = mem(SchemeKind::Conventional);
        let cold = m.fetch(0x100);
        let warm = m.fetch(0x100);
        assert_eq!(warm, 2);
        assert!(cold > warm + 10);
        assert_eq!(m.stats().l1i_accesses, 2);
        assert_eq!(m.stats().l1i_misses, 1);
        assert_eq!(m.stats().l2_accesses, 1);
        assert_eq!(m.stats().l2_misses, 1);
    }

    #[test]
    fn extra_cycle_schemes_pay_it_on_every_access() {
        let mut m = mem(SchemeKind::EightT);
        m.fetch(0x100);
        assert_eq!(m.fetch(0x100), 3); // 2 + 1 extra
        m.load(0x9000);
        assert_eq!(m.load(0x9000), 3);
    }

    #[test]
    fn l2_hit_latency_between_l1_and_dram() {
        let mut m = mem(SchemeKind::Conventional);
        // Prime L2 with the block, then evict from L1 by filling 4 ways + 1.
        m.load(0x0);
        for way in 1..=4u64 {
            m.load(way << 13); // same set (index bits 5..13), distinct tags
        }
        let lat = m.load(0x0); // L1 miss, L2 hit
        assert_eq!(lat, 2 + 10);
    }

    #[test]
    fn stores_coalesce_in_write_buffer() {
        let mut m = mem(SchemeKind::Conventional);
        for _ in 0..100 {
            m.store(0x5000);
        }
        assert_eq!(m.stats().l1d_stores, 100);
        // All stores hit one block: nothing drained yet.
        assert_eq!(m.stats().l2_accesses, 0);
        let stats = m.finish();
        assert_eq!(stats.l2_accesses, 1);
    }

    #[test]
    fn write_buffer_overflow_drains_to_l2() {
        let mut m = mem(SchemeKind::Conventional);
        for i in 0..20u64 {
            m.store(i * 0x1000);
        }
        assert!(m.stats().l2_accesses >= 12, "20 blocks - 8 entries drained");
        let stats = m.finish();
        assert_eq!(stats.l2_accesses, 20);
    }

    #[test]
    fn dram_cycles_shrink_at_lower_frequency() {
        let geom = CacheGeometry::dsn_l1();
        let mut fast = MemSystem::new(
            L1Cache::new(SchemeKind::Conventional, FaultMap::fault_free(&geom)),
            L1Cache::new(SchemeKind::Conventional, FaultMap::fault_free(&geom)),
            1607,
        );
        let mut slow = MemSystem::new(
            L1Cache::new(SchemeKind::Conventional, FaultMap::fault_free(&geom)),
            L1Cache::new(SchemeKind::Conventional, FaultMap::fault_free(&geom)),
            475,
        );
        assert!(fast.load(0x0) > slow.load(0x0));
    }

    #[test]
    fn recorder_sees_per_level_counters_and_latencies() {
        use dvs_obs::MetricsRegistry;
        let reg = Arc::new(MetricsRegistry::new());
        let mut m = mem(SchemeKind::Conventional).with_recorder(reg.clone());
        m.fetch(0x100); // cold: DRAM
        m.fetch(0x100); // warm: L1
        m.load(0x9000); // cold: DRAM
        m.store(0x9000);
        let _ = m.finish();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cache.l1i.accesses"), 2);
        assert_eq!(snap.counter("cache.l1i.misses"), 1);
        assert_eq!(snap.counter("cache.l1d.accesses"), 2);
        assert_eq!(snap.counter("cache.l2.accesses"), 3); // 2 refills + 1 drain
        assert_eq!(snap.values["cache.l1i.access_cycles"].count, 2);
        assert_eq!(snap.values["cache.l1d.access_cycles"].count, 1);
        assert_eq!(snap.values["cache.dram.access_cycles"].count, 2);
        assert_eq!(snap.values["cache.l1i.access_cycles"].min, 2);
        assert!(snap.values["cache.dram.access_cycles"].min > 10);
    }

    #[test]
    fn disabled_recorder_is_not_attached() {
        use dvs_obs::NullRecorder;
        let m = mem(SchemeKind::Conventional).with_recorder(Arc::new(NullRecorder));
        assert!(m.recorder().is_none());
    }

    #[test]
    fn finish_reports_word_misses() {
        use dvs_sram::FrameId;
        let geom = CacheGeometry::dsn_l1();
        let mut fmap = FaultMap::fault_free(&geom);
        for set in 0..geom.sets() {
            for way in 0..geom.ways() {
                fmap.set_faulty(FrameId::new(set, way), 0, true);
            }
        }
        let mut m = MemSystem::new(
            L1Cache::new(SchemeKind::Conventional, FaultMap::fault_free(&geom)),
            L1Cache::new(SchemeKind::SimpleWordDisable, fmap),
            1607,
        );
        m.load(0x0); // block miss (word 0 faulty → served from L2)
        m.load(0x0); // word miss every time
        let stats = m.finish();
        assert_eq!(stats.l1d_word_misses, 1);
        assert_eq!(stats.l2_accesses, 2);
    }
}
